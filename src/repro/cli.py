"""Command-line interface.

Usage::

    python -m repro table1                # reproduce the paper's Table 1
    python -m repro scene 18              # explain one scene's ruling
    python -m repro assess watermark      # Section IV advisor verdict
    python -m repro storyline ip          # run a full storyline
    python -m repro authorities           # list the citation registry
    python -m repro lint                  # AST-lint the repo's invariants
    python -m repro analyze-plan table1   # static plan analysis
    python -m repro chaos --seed 7        # paper invariants under faults
    python -m repro bench --quick         # engine benchmarks -> BENCH_engine.json
    python -m repro serve                 # sharded ruling server + /metrics
    python -m repro serve-bench --quick   # server load test -> BENCH_serve.json
    python -m repro metrics               # Prometheus text from a traced replay
    python -m repro trace --audit         # spans + authorizing instruments
    python -m repro workflow run photo-recovery --seed 7
    python -m repro workflow verify-resume   # crash/resume determinism gate
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence

from repro.core import ComplianceEngine, ResearchAdvisor, build_table1
from repro.investigation import format_assessment, format_table1


def _cmd_table1(args: argparse.Namespace) -> int:
    engine = ComplianceEngine()
    print(format_table1(build_table1(), engine))
    return 0


def _cmd_scene(args: argparse.Namespace) -> int:
    engine = ComplianceEngine()
    scenes = {scene.number: scene for scene in build_table1()}
    scene = scenes.get(args.number)
    if scene is None:
        print(f"no scene {args.number}; Table 1 has scenes 1-20")
        return 1
    ruling = engine.evaluate(scene.action)
    if args.json:
        import json

        payload = {
            "scene": scene.number,
            "description": scene.action.description,
            "paper_answer": scene.paper_answer,
            "ruling": ruling.to_dict(),
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"Scene {scene.number}: {scene.action.description}")
    print(f"Paper's answer: {scene.paper_answer}")
    print(ruling.explain())
    return 0


_TECHNIQUES: dict[str, Callable[[], object]] = {}


def _technique_factories() -> dict[str, Callable[[], object]]:
    if _TECHNIQUES:
        return _TECHNIQUES
    from repro.storage import KnownFileSet
    from repro.techniques import (
        CredentialedAccessTechnique,
        Credential,
        DataMiningTechnique,
        DsssWatermarkTechnique,
        HashSearchTechnique,
        OneSwarmTimingAttack,
        PacketCountingCorrelator,
    )
    from repro.techniques.interval_watermark import SquareWaveTechnique

    _TECHNIQUES.update(
        {
            "timing": OneSwarmTimingAttack,
            "watermark": DsssWatermarkTechnique,
            "square-wave": SquareWaveTechnique,
            "correlation": PacketCountingCorrelator,
            "hash-search": lambda: HashSearchTechnique(KnownFileSet()),
            "mining": lambda: DataMiningTechnique(fields=["ip"]),
            "credentials": lambda: CredentialedAccessTechnique(
                Credential("defendant", "password")
            ),
        }
    )
    return _TECHNIQUES


def _cmd_assess(args: argparse.Namespace) -> int:
    factories = _technique_factories()
    factory = factories.get(args.technique)
    if factory is None:
        print(f"unknown technique; choose from: {', '.join(sorted(factories))}")
        return 1
    technique = factory()
    assessment = technique.assess(ResearchAdvisor())
    print(format_assessment(assessment))
    return 0


def _cmd_storyline(args: argparse.Namespace) -> int:
    from repro.investigation.storylines import (
        ip_traceback_storyline,
        watermark_situation_one,
        watermark_situation_two,
    )

    runners = {
        "ip": lambda: ip_traceback_storyline(comply=True),
        "ip-crist": lambda: ip_traceback_storyline(comply=False),
        "wm1": watermark_situation_one,
        "wm2": watermark_situation_two,
    }
    runner = runners.get(args.name)
    if runner is None:
        print(f"unknown storyline; choose from: {', '.join(sorted(runners))}")
        return 1
    report = runner()
    print(f"=== {report.title} ===")
    for index, step in enumerate(report.steps, 1):
        print(f"  {index}. {step}")
    print(f"outcome: {'SUCCESS' if report.succeeded else 'FAILED'}")
    return 0


def _cmd_reference(args: argparse.Namespace) -> int:
    from repro.investigation import format_quick_reference

    print(format_quick_reference(build_table1(), ComplianceEngine()))
    return 0


def _cmd_curve(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.investigation.campaign import compliance_curve

    collector = obs.enable(obs.TraceCollector()) if args.trace_out else None
    probabilities = [0.0, 0.25, 0.5, 0.75, 1.0]
    try:
        curve = compliance_curve(
            probabilities,
            n_cases=args.cases,
            seed=args.seed,
            max_workers=args.workers,
        )
    finally:
        if collector is not None:
            obs.disable()
    print("prosecution success rate vs compliance probability:")
    for p in probabilities:
        bar = "#" * int(curve[p] * 40)
        print(f"  p={p:4.2f}: {curve[p]:6.1%} {bar}")
    if collector is not None:
        obs.export.write_trace(args.trace_out, collector.spans)
        print(f"wrote {len(collector.spans)} span(s) to {args.trace_out}")
    return 0


def _traced_table1_run(comply: bool = True) -> list:
    """Run every Table 1 scene end to end with telemetry on.

    Returns the finished span records.  The module-level registry is
    left populated (cache gauges bound, engine counters incremented) so
    callers can render metrics after the run; tracing is switched off
    again before returning.
    """
    from repro import obs
    from repro.core import RulingCache
    from repro.investigation.pipeline import InvestigationPipeline

    obs.reset()
    cache = RulingCache()
    engine = ComplianceEngine(cache=cache)
    obs.bind_ruling_cache(cache.stats)
    collector = obs.enable()
    try:
        InvestigationPipeline(engine).run_all(
            build_table1(), obtain_process=comply
        )
    finally:
        obs.disable()
    return collector.spans


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro import obs

    _traced_table1_run(comply=not args.no_comply)
    text = obs.OBS.registry.render_text()
    if not text.strip():
        print("metrics registry is empty after a traced Table 1 replay")
        return 1
    print(text, end="")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs

    records = _traced_table1_run(comply=not args.no_comply)
    if args.out:
        obs.export.write_trace(args.out, records, chrome=args.chrome)
        print(f"wrote {len(records)} span(s) to {args.out}")
    if args.audit:
        print(obs.render_audit_report(records))
        if not obs.acquisition_spans(records):
            return 1
        return 1 if obs.unauthorized_acquisitions(records) else 0
    if not args.out:
        payload = (
            obs.export.to_chrome_trace(records)
            if args.chrome
            else obs.export.to_jsonl(records)
        )
        print(payload, end="" if payload.endswith("\n") else "\n")
    return 0


def _cmd_authorities(args: argparse.Namespace) -> int:
    engine = ComplianceEngine()
    for authority in sorted(engine.registry, key=lambda a: a.key):
        print(f"{authority.key:28s} {authority.citation}")
        if args.verbose:
            print(f"{'':28s}   {authority.holding}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        filter_baselined,
        has_errors,
        load_baseline,
        render_report,
        run_lint,
        write_baseline,
        write_sarif,
    )
    from repro.analysis.pylint_rules import all_rules

    if args.rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:28s} {rule.description}")
        return 0
    paths = [Path(p) for p in args.paths] if args.paths else None
    run = run_lint(paths)
    diagnostics = run.diagnostics

    if args.write_baseline:
        count = write_baseline(Path(args.write_baseline), diagnostics)
        print(f"baseline written: {count} finding(s) adopted")
        return 0
    baselined = 0
    if args.baseline:
        accepted = load_baseline(Path(args.baseline))
        diagnostics, baselined = filter_baselined(diagnostics, accepted)
    if args.sarif:
        write_sarif(Path(args.sarif), diagnostics, all_rules())

    print(render_report(diagnostics))
    extras = []
    if run.suppressed:
        extras.append(f"{run.suppressed} suppressed inline")
    if baselined:
        extras.append(f"{baselined} baselined")
    if extras:
        print(f"({', '.join(extras)})")
    if args.timings:
        for code, seconds in sorted(
            run.timings.items(), key=lambda item: -item[1]
        ):
            print(f"{code:12s} {seconds * 1000:8.1f} ms")
        print(f"{run.files} file(s) linted")
    return 1 if has_errors(diagnostics) else 0


_PROCESS_FLAGS = {
    "subpoena": "SUBPOENA",
    "court-order": "COURT_ORDER",
    "warrant": "SEARCH_WARRANT",
    "wiretap": "WIRETAP_ORDER",
}


def _cmd_analyze_plan(args: argparse.Namespace) -> int:
    from repro.analysis import (
        DEMO_PLANS,
        PlanAnalyzer,
        plan_from_scenario,
        plan_from_scene_number,
        plan_from_technique,
    )
    from repro.core.enums import ProcessKind

    analyzer = PlanAnalyzer(ComplianceEngine())
    instruments: tuple[ProcessKind, ...] = tuple(
        ProcessKind[_PROCESS_FLAGS[flag]] for flag in args.with_process
    )

    if args.target == "table1":
        mismatches = 0
        for scenario in build_table1():
            report = analyzer.analyze(plan_from_scenario(scenario))
            engine_answer = (
                "Need" if report.required_process is not ProcessKind.NONE
                else "No need"
            )
            agrees = engine_answer in scenario.paper_answer
            mismatches += not agrees
            mark = "ok" if agrees else "MISMATCH"
            print(
                f"scene {scenario.number:2d}: requires "
                f"{report.required_process.display_name:24s} "
                f"paper: {scenario.paper_answer:12s} {mark}"
            )
        print(
            f"{20 - mismatches}/20 scenes reproduce the paper's answer "
            "statically"
        )
        return 1 if mismatches else 0

    if args.target.isdigit():
        try:
            plan = plan_from_scene_number(int(args.target), instruments)
        except KeyError:
            print(f"no Table 1 scene {args.target}; scenes are 1-20")
            return 1
    elif args.target in DEMO_PLANS:
        plan = DEMO_PLANS[args.target]()
        if instruments:
            import dataclasses

            plan = dataclasses.replace(plan, instruments=instruments)
    else:
        factories = _technique_factories()
        factory = factories.get(args.target)
        if factory is None:
            choices = (
                ["table1", "<scene number 1-20>"]
                + sorted(DEMO_PLANS)
                + sorted(factories)
            )
            print(
                "unknown plan target; choose from: "
                + ", ".join(choices)
            )
            return 1
        plan = plan_from_technique(factory(), instruments)

    report = analyzer.analyze(plan)
    print(report.render())
    return 0 if report.ok else 1


_CHAOS_BUDGETS = {"small": 5, "medium": 25, "large": 100}


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.faults.chaos import run_chaos

    ledger = None
    if args.ledger:
        from repro.ledger import Ledger

        ledger = Ledger(args.ledger)
    collector = obs.enable(obs.TraceCollector()) if args.trace_out else None
    try:
        report = run_chaos(
            seed=args.seed,
            n_plans=_CHAOS_BUDGETS[args.budget],
            scenes=args.scenes,
            intensity=args.intensity,
            max_workers=args.workers,
            ledger=ledger,
        )
    except ValueError as error:
        print(error)
        return 1
    finally:
        if collector is not None:
            obs.disable()
        if ledger is not None:
            counts = ledger.counts()
            ledger.close()
    print(report.render())
    if ledger is not None:
        print(
            f"ledger {args.ledger}: {counts['rulings']} ruling(s), "
            f"{counts['suppression_outcomes']} suppression outcome(s), "
            f"{counts['custody_chains']} custody chain(s)"
        )
    if collector is not None:
        obs.export.write_trace(args.trace_out, collector.spans)
        print(f"wrote {len(collector.spans)} span(s) to {args.trace_out}")
    return 0 if report.ok else 1


def _open_ledger(path: str, must_exist: bool = True):
    """Open a ledger file, or print why it cannot be opened."""
    from pathlib import Path

    from repro.ledger import Ledger, LedgerError

    if must_exist and path != ":memory:" and not Path(path).exists():
        print(f"no ledger at {path}; create one with 'repro ledger populate'")
        return None
    try:
        return Ledger(path)
    except LedgerError as error:
        print(error)
        return None


def _cmd_ledger_populate(args: argparse.Namespace) -> int:
    from repro.core import RulingCache
    from repro.investigation.pipeline import InvestigationPipeline
    from repro.workloads import action_corpus

    ledger = _open_ledger(args.path, must_exist=False)
    if ledger is None:
        return 2
    with ledger:
        engine = ComplianceEngine(cache=RulingCache(), ledger=ledger)
        pipeline = InvestigationPipeline(
            engine=engine, ledger=ledger, run_label=args.label
        )
        scenarios = build_table1()
        pipeline.run_all(scenarios, obtain_process=True)
        pipeline.run_all(scenarios, obtain_process=False)
        if args.corpus:
            engine.evaluate_many(action_corpus(args.corpus, seed=args.seed))
        counts = ledger.counts()
    print(f"populated {args.path}:")
    for table, n in counts.items():
        print(f"  {table:22s} {n}")
    return 0


def _cmd_ledger_query(args: argparse.Namespace) -> int:
    import json

    from repro.core.enums import ProcessKind
    from repro.ledger import rulings_citing, search_reasoning

    ledger = _open_ledger(args.path)
    if ledger is None:
        return 2
    with ledger:
        if args.fts:
            rows = search_reasoning(ledger, args.fts, limit=args.limit)
            if args.citing:
                rows = [r for r in rows if args.citing in r.citations]
            if args.suppressed:
                rows = [
                    r
                    for r in rows
                    if any(o != "admissible" for o in r.suppression_outcomes)
                ]
        else:
            process = None
            if args.process:
                name = args.process.upper().replace("-", "_")
                if name not in ProcessKind.__members__:
                    print(
                        "unknown process kind; choose from: "
                        + ", ".join(k.name.lower() for k in ProcessKind)
                    )
                    return 2
                process = ProcessKind[name]
            rows = rulings_citing(
                ledger,
                authority_key=args.citing or None,
                required_process=process,
                suppressed=True if args.suppressed else None,
                limit=args.limit,
            )
    if args.json:
        print(json.dumps([row.to_dict() for row in rows], indent=2))
    else:
        for row in rows:
            outcomes = ",".join(row.suppression_outcomes) or "-"
            print(
                f"{row.fingerprint_digest[:16]}  "
                f"{row.required_process:22s} "
                f"outcomes={outcomes:24s} "
                f"cites={','.join(row.citations)}"
            )
        print(f"{len(rows)} ruling(s) matched")
    if args.expect_rows and not rows:
        return 1
    return 0


def _cmd_ledger_stats(args: argparse.Namespace) -> int:
    import json

    from repro.ledger import (
        citation_histogram,
        process_histogram,
        suppression_histogram,
    )

    ledger = _open_ledger(args.path)
    if ledger is None:
        return 2
    with ledger:
        info = ledger.describe()
        info["process_histogram"] = process_histogram(ledger)
        info["citation_histogram"] = citation_histogram(ledger, limit=10)
        info["suppression_histogram"] = suppression_histogram(ledger)
    if args.json:
        print(json.dumps(info, indent=2))
        return 0
    print(f"ledger {info['path']}")
    print(
        f"  schema v{info['schema_version']} "
        f"(digest {info['schema_digest'][:12]}…) "
        f"fts={'on' if info['fts_enabled'] else 'off'} "
        f"size={info['size_bytes']} bytes"
    )
    for table, n in info["counts"].items():
        print(f"  {table:22s} {n}")
    print("  rulings by required process:")
    for name, n in info["process_histogram"].items():
        if n:
            print(f"    {name:22s} {n}")
    print("  most-cited authorities:")
    for key, n in info["citation_histogram"].items():
        print(f"    {key:28s} {n}")
    if info["suppression_histogram"]:
        print("  suppression outcomes:")
        for outcome, n in info["suppression_histogram"].items():
            print(f"    {outcome:22s} {n}")
    return 0


def _cmd_ledger_prime(args: argparse.Namespace) -> int:
    from repro.core import RulingCache
    from repro.workloads import action_corpus

    ledger = _open_ledger(args.path)
    if ledger is None:
        return 2
    with ledger:
        cache = RulingCache(maxsize=2 * max(args.corpus, 1))
        primed = ComplianceEngine(cache=cache, ledger=ledger)
        n_primed = primed.prime_from_ledger()
        print(f"primed {n_primed} ruling(s) from {args.path}")
        if not args.verify:
            return 0
        corpus = action_corpus(args.corpus, seed=args.seed)
        fresh = ComplianceEngine()
        fresh_rulings = fresh.evaluate_many(corpus)
        primed_rulings = primed.evaluate_many(corpus)
        mismatches = sum(
            f.to_dict() != p.to_dict() or f.explain() != p.explain()
            for f, p in zip(fresh_rulings, primed_rulings)
        )
        hits = primed.cache_stats.hits
    print(
        f"differential over {len(corpus)} action(s) (seed {args.seed}): "
        f"{mismatches} mismatch(es), {hits} served from the primed cache"
    )
    if mismatches:
        print("LEDGER DIVERGENCE: primed rulings differ from fresh rulings")
        return 1
    return 0


def _cmd_ledger_vacuum(args: argparse.Namespace) -> int:
    ledger = _open_ledger(args.path)
    if ledger is None:
        return 2
    with ledger:
        before = ledger.describe()["size_bytes"]
        after = ledger.vacuum()
    print(f"vacuumed {args.path}: {before} -> {after} bytes")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.techniques:
        from repro.bench_techniques import (
            render_techniques_report,
            run_techniques_bench,
        )

        out = (
            args.out if args.out != "BENCH_engine.json"
            else "BENCH_techniques.json"
        )
        report, ok = run_techniques_bench(
            quick=args.quick, seed=args.seed, out=out
        )
        print(render_techniques_report(report))
        print(f"wrote {out}")
        _write_bench_trace(args)
        return 0 if ok else 1

    from repro.bench import render_report, run_bench

    try:
        report, ok = run_bench(
            quick=args.quick,
            seed=args.seed,
            corpus_size=args.corpus,
            out=args.out,
        )
    except ValueError as error:
        print(error)
        return 1
    print(render_report(report))
    print(f"wrote {args.out}")
    _write_bench_trace(args)
    return 0 if ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serve.server import RulingServer, ServerConfig

    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            metrics_port=args.metrics_port,
            n_shards=args.shards,
            cache_size=args.cache_size,
            max_pending_batches=args.max_pending,
            policy=args.policy,
            ledger_path=args.ledger,
            prime=args.prime,
        )
    except ValueError as error:
        print(error)
        return 1

    async def _serve() -> None:
        server = RulingServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(server.stop()),
                )
            except NotImplementedError:  # pragma: no cover - non-Unix
                pass
        host, port = server.address
        metrics_host, metrics_port = server.metrics_address
        print(f"repro serve: NDJSON on {host}:{port}")
        print(
            f"repro serve: metrics on "
            f"http://{metrics_host}:{metrics_port}/metrics"
        )
        print(
            f"repro serve: {config.n_shards} shards x "
            f"{config.cache_size} cache entries, policy {config.policy}"
            + (f", ledger {config.ledger_path}" if config.ledger_path else "")
            + (
                f", primed {server.primed_rulings} rulings"
                if config.prime
                else ""
            ),
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve.bench import render_serve_report, run_serve_bench

    try:
        report, ok = run_serve_bench(
            quick=args.quick,
            connect=args.connect,
            n_shards=args.shards,
            policy=args.policy,
            batch_size=args.batch_size,
            depth=args.depth,
            target_rps=args.rps,
            out=args.out,
        )
    except (OSError, RuntimeError, ValueError) as error:
        print(f"serve-bench failed: {error}")
        return 1
    print(render_serve_report(report))
    print(f"wrote {args.out}")
    return 0 if ok else 1


def _write_bench_trace(args: argparse.Namespace) -> None:
    """Honor ``bench --trace-out``: a traced Table 1 replay, run *after*
    the benchmark so tracing cannot taint any measurement."""
    if not args.trace_out:
        return
    from repro import obs

    records = _traced_table1_run()
    obs.export.write_trace(args.trace_out, records)
    print(f"wrote {len(records)} span(s) to {args.trace_out}")


def _workflow_fault_plan(args: argparse.Namespace):
    from repro.workflow import WorkflowFaultPlan, parse_fault_plan

    if not args.fault_plan:
        return WorkflowFaultPlan()
    return parse_fault_plan(args.fault_plan)


def _workflow_pack(name: str):
    from repro.workflow.packs import get_pack, pack_names

    try:
        return get_pack(name)
    except KeyError:
        print(f"unknown pack {name!r}; available: {', '.join(pack_names())}")
        return None


def _print_workflow_result(result, verbose: bool) -> int:
    if verbose:
        print(result.report_text, end="")
    print(
        f"workflow {result.workflow}: status={result.status} "
        f"report={result.report_sha256[:12]} "
        f"artifacts={len(result.artifacts)} "
        f"custody={len(result.custody.entries)}"
        + (" RESUMED" if result.resumed else "")
        + (" SUPPRESSED" if result.suppressed else "")
    )
    if result.suppressed:
        print(f"suppression reason: {result.suppression_reason}")
    return 1 if result.status != "completed" else 0


def _cmd_workflow_run(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.workflow import (
        FaultPlanSyntaxError,
        WorkflowCrash,
        WorkflowEngine,
        WorkflowLegalityError,
    )

    try:
        plan = _workflow_fault_plan(args)
    except FaultPlanSyntaxError as error:
        print(error)
        return 2
    pack = _workflow_pack(args.pack)
    if pack is None:
        return 2

    if args.items > 1:
        from repro.workflow.parallel import run_batch

        batch = run_batch(
            args.pack,
            n_items=args.items,
            seed=args.seed,
            journal_dir=Path(args.journal_dir),
            max_workers=args.workers,
            fault_plan=plan,
        )
        print(batch.render(), end="")
        bad = [s for s in batch.summaries if s.status != "completed"]
        return 1 if bad else 0

    injector = plan.build_injector()
    subject = pack.build_subject(args.seed, injector)
    engine = WorkflowEngine(pack.build_spec())
    journal_path = Path(args.journal) if args.journal else None
    if journal_path is not None:
        journal_path.parent.mkdir(parents=True, exist_ok=True)
    try:
        result = engine.run(
            subject,
            seed=args.seed,
            journal_path=journal_path,
            injector=injector,
            crash_after=plan.crash_after_record,
        )
    except WorkflowLegalityError as error:
        print("workflow rejected by the static legality gate:")
        print(error.report.render())
        return 2
    except WorkflowCrash as crash:
        print(f"workflow crashed: {crash}")
        if journal_path is not None:
            print(
                f"journal survives at {journal_path}; resume with: "
                f"repro workflow resume {args.pack} --seed {args.seed} "
                f"--journal {journal_path}"
                + (f" --fault-plan '{args.fault_plan}'" if args.fault_plan else "")
            )
        return 3
    return _print_workflow_result(result, not args.quiet)


def _cmd_workflow_resume(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.workflow import (
        FaultPlanSyntaxError,
        JournalError,
        WorkflowCrash,
        WorkflowEngine,
    )

    try:
        plan = _workflow_fault_plan(args)
    except FaultPlanSyntaxError as error:
        print(error)
        return 2
    pack = _workflow_pack(args.pack)
    if pack is None:
        return 2
    injector = plan.build_injector()
    subject = pack.build_subject(args.seed, injector)
    engine = WorkflowEngine(pack.build_spec())
    try:
        result = engine.resume(
            subject,
            seed=args.seed,
            journal_path=Path(args.journal),
            injector=injector,
        )
    except (JournalError, FileNotFoundError) as error:
        print(f"cannot resume: {error}")
        return 2
    except WorkflowCrash as crash:
        print(f"workflow crashed again during resume: {crash}")
        return 3
    return _print_workflow_result(result, not args.quiet)


def _cmd_workflow_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import has_errors, render_report, run_lint
    from repro.workflow.packs import get_pack, pack_names

    names = [args.pack] if args.pack else list(pack_names())
    paths = []
    for name in names:
        try:
            paths.extend(get_pack(name).source_paths())
        except KeyError:
            print(
                f"unknown pack {name!r}; available: {', '.join(pack_names())}"
            )
            return 2
    paths.extend(Path(extra) for extra in args.paths)
    run = run_lint(paths)
    print(render_report(run.diagnostics))
    print(f"({len(paths)} step-body module(s) checked)")
    return 1 if has_errors(run.diagnostics) else 0


def _cmd_workflow_verify(args: argparse.Namespace) -> int:
    import tempfile
    from pathlib import Path

    from repro.workflow import FaultPlanSyntaxError
    from repro.workflow.packs import pack_names
    from repro.workflow.verify import chaos_sample, resume_sweep

    try:
        plan = _workflow_fault_plan(args)
    except FaultPlanSyntaxError as error:
        print(error)
        return 2
    names = [args.pack] if args.pack else list(pack_names())
    reports = []
    with tempfile.TemporaryDirectory(prefix="wf-verify-") as tmp:
        base = Path(args.workdir) if args.workdir else Path(tmp)
        for name in names:
            workdir = base / name
            workdir.mkdir(parents=True, exist_ok=True)
            reports.append(
                resume_sweep(
                    name,
                    seed=args.seed,
                    workdir=workdir,
                    fault_plan=plan if plan.has_injector else None,
                )
            )
            if args.chaos:
                chaos_dir = base / f"{name}-chaos"
                chaos_dir.mkdir(parents=True, exist_ok=True)
                reports.append(
                    chaos_sample(name, chaos_dir, n_plans=args.chaos)
                )
    for report in reports:
        print(report.render(), end="")
    ok = all(report.ok for report in reports)
    total = sum(len(report.boundaries) for report in reports)
    print(
        f"verify-resume: {total} boundary check(s) across "
        f"{len(names)} pack(s): {'OK' if ok else 'DIVERGED'}"
    )
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Compliance-aware digital forensics framework reproducing "
            "'When Digital Forensic Research Meets Laws' (ICDCS 2012)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1 = subparsers.add_parser(
        "table1", help="reproduce the paper's Table 1"
    )
    table1.set_defaults(func=_cmd_table1)

    scene = subparsers.add_parser(
        "scene", help="explain one Table 1 scene's ruling"
    )
    scene.add_argument("number", type=int, help="scene number (1-20)")
    scene.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    scene.set_defaults(func=_cmd_scene)

    assess = subparsers.add_parser(
        "assess", help="Section IV advisor verdict for a technique"
    )
    assess.add_argument(
        "technique",
        help=(
            "timing | watermark | square-wave | correlation | "
            "hash-search | mining | credentials"
        ),
    )
    assess.set_defaults(func=_cmd_assess)

    storyline = subparsers.add_parser(
        "storyline", help="run a full investigation storyline"
    )
    storyline.add_argument("name", help="ip | ip-crist | wm1 | wm2")
    storyline.set_defaults(func=_cmd_storyline)

    reference = subparsers.add_parser(
        "reference",
        help="the paper's quick-reference table, with citations",
    )
    reference.set_defaults(func=_cmd_reference)

    curve = subparsers.add_parser(
        "curve", help="prosecution success vs compliance probability"
    )
    curve.add_argument(
        "--cases", type=int, default=200, help="cases per probability"
    )
    curve.add_argument("--seed", type=int, default=9, help="RNG seed")
    curve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="campaign worker processes (default 1 = serial; 0 or a "
        "negative value also runs serially)",
    )
    curve.add_argument(
        "--trace-out",
        default=None,
        help="collect a span trace of the sweep and write it (JSONL) here",
    )
    curve.set_defaults(func=_cmd_curve)

    lint = subparsers.add_parser(
        "lint",
        help="run the AST invariant linter over the codebase",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--rules",
        action="store_true",
        help="list the registered lint rules and exit",
    )
    lint.add_argument(
        "--sarif",
        default=None,
        metavar="FILE",
        help="also write the findings as SARIF 2.1.0 to FILE",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="report only findings not recorded in this baseline file",
    )
    lint.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="adopt every current finding into FILE and exit 0",
    )
    lint.add_argument(
        "--timings",
        action="store_true",
        help="print per-rule wall-clock timings after the report",
    )
    lint.set_defaults(func=_cmd_lint)

    analyze_plan = subparsers.add_parser(
        "analyze-plan",
        help="statically analyze an investigation plan (no netsim)",
    )
    analyze_plan.add_argument(
        "target",
        help=(
            "table1 | a scene number (1-20) | a technique name | "
            "tainted-downstream | forfeited-consent"
        ),
    )
    analyze_plan.add_argument(
        "--with-process",
        action="append",
        default=[],
        choices=sorted(_PROCESS_FLAGS),
        help="declare an instrument the plan will hold (repeatable)",
    )
    analyze_plan.set_defaults(func=_cmd_analyze_plan)

    chaos = subparsers.add_parser(
        "chaos",
        help="run the paper's invariants under randomized fault plans",
    )
    chaos.add_argument(
        "--seed", type=int, default=7, help="first fault-plan seed"
    )
    chaos.add_argument(
        "--scenes",
        default="all",
        help="'all' or comma-separated Table 1 scene numbers",
    )
    chaos.add_argument(
        "--budget",
        default="medium",
        choices=sorted(_CHAOS_BUDGETS),
        help="fault plans to run: small=5, medium=25, large=100",
    )
    chaos.add_argument(
        "--intensity",
        type=float,
        default=0.15,
        help="upper bound on per-fault probabilities",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "process-pool workers for the plan sweep "
            "(default: one per CPU; 1 forces the serial path)"
        ),
    )
    chaos.add_argument(
        "--trace-out",
        default=None,
        help=(
            "collect a span trace of the sweep (including fault.injection "
            "events) and write it (JSONL) here"
        ),
    )
    chaos.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help=(
            "persist every plan's rulings, dockets, custody, and "
            "suppression outcomes to this ledger file (forces the "
            "serial sweep path)"
        ),
    )
    chaos.set_defaults(func=_cmd_chaos)

    ledger = subparsers.add_parser(
        "ledger",
        help="persistent legal ledger: populate, query, prime, maintain",
    )
    ledger_sub = ledger.add_subparsers(dest="ledger_command", required=True)

    led_populate = ledger_sub.add_parser(
        "populate",
        help="run Table 1 both ways into a ledger (plus an optional corpus)",
    )
    led_populate.add_argument("path", help="ledger file (created if absent)")
    led_populate.add_argument(
        "--label",
        default="populate",
        help="run label namespacing this run's ledger keys",
    )
    led_populate.add_argument(
        "--corpus",
        type=int,
        default=0,
        metavar="N",
        help="also persist rulings for N random workload actions",
    )
    led_populate.add_argument(
        "--seed", type=int, default=7, help="corpus seed for --corpus"
    )
    led_populate.set_defaults(func=_cmd_ledger_populate)

    led_query = ledger_sub.add_parser(
        "query", help="indexed/FTS queries over persisted rulings"
    )
    led_query.add_argument("path", help="ledger file")
    led_query.add_argument(
        "--citing",
        default=None,
        metavar="KEY",
        help="only rulings citing this authority (e.g. sca_2703)",
    )
    led_query.add_argument(
        "--process",
        default=None,
        metavar="KIND",
        help="only rulings requiring this process (e.g. search-warrant)",
    )
    led_query.add_argument(
        "--suppressed",
        action="store_true",
        help="only rulings with a granted-suppression outcome on file",
    )
    led_query.add_argument(
        "--fts",
        default=None,
        metavar="QUERY",
        help="full-text search over reasoning traces",
    )
    led_query.add_argument(
        "--limit", type=int, default=None, help="cap returned rows"
    )
    led_query.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    led_query.add_argument(
        "--expect-rows",
        action="store_true",
        help="exit 1 if the query matches nothing (CI gate)",
    )
    led_query.set_defaults(func=_cmd_ledger_query)

    led_stats = ledger_sub.add_parser(
        "stats", help="schema, table counts, and histograms"
    )
    led_stats.add_argument("path", help="ledger file")
    led_stats.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    led_stats.set_defaults(func=_cmd_ledger_stats)

    led_prime = ledger_sub.add_parser(
        "prime",
        help="warm a fresh engine's cache from the ledger; optionally "
        "verify primed rulings against fresh ones",
    )
    led_prime.add_argument("path", help="ledger file")
    led_prime.add_argument(
        "--verify",
        action="store_true",
        help=(
            "re-rule a random corpus fresh vs primed and exit 1 on any "
            "payload or explain() divergence"
        ),
    )
    led_prime.add_argument(
        "--corpus",
        type=int,
        default=2000,
        metavar="N",
        help="differential corpus size for --verify",
    )
    led_prime.add_argument(
        "--seed", type=int, default=7, help="differential corpus seed"
    )
    led_prime.set_defaults(func=_cmd_ledger_prime)

    led_vacuum = ledger_sub.add_parser(
        "vacuum", help="reclaim free pages; prints size before and after"
    )
    led_vacuum.add_argument("path", help="ledger file")
    led_vacuum.set_defaults(func=_cmd_ledger_vacuum)

    bench = subparsers.add_parser(
        "bench",
        help="engine benchmarks + cache differential -> BENCH_engine.json",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="smaller corpus and chaos sweep, for CI smoke runs",
    )
    bench.add_argument(
        "--seed", type=int, default=99, help="benchmark corpus seed"
    )
    bench.add_argument(
        "--corpus",
        type=int,
        default=None,
        help="override the benchmark corpus size",
    )
    bench.add_argument(
        "--out",
        default="BENCH_engine.json",
        help=(
            "where to write the JSON report (with --techniques the "
            "default becomes BENCH_techniques.json)"
        ),
    )
    bench.add_argument(
        "--techniques",
        action="store_true",
        help=(
            "benchmark the vectorized detection kernels and the parallel "
            "campaign against their scalar references instead "
            "-> BENCH_techniques.json"
        ),
    )
    bench.add_argument(
        "--trace-out",
        default=None,
        help=(
            "after the benchmark, run a traced Table 1 replay and write "
            "its span trace (JSONL) here"
        ),
    )
    bench.set_defaults(func=_cmd_bench)

    serve = subparsers.add_parser(
        "serve",
        help="long-running sharded ruling server (NDJSON + /metrics)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address for both listeners"
    )
    serve.add_argument(
        "--port", type=int, default=7341, help="NDJSON port (0 = ephemeral)"
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=7342,
        help="HTTP /metrics port (0 = ephemeral)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=4,
        help="number of private cache+engine shards",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="per-shard LRU ruling-cache capacity",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="per-connection bound on in-flight rule batches",
    )
    serve.add_argument(
        "--policy",
        choices=["queue", "shed"],
        default="queue",
        help=(
            "backpressure when a connection is full: queue (pause socket "
            "reads) or shed (answer with an overload error)"
        ),
    )
    serve.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="persist fresh rulings to this SQLite ledger",
    )
    serve.add_argument(
        "--prime",
        action="store_true",
        help="warm every shard's cache from the ledger at startup",
    )
    serve.set_defaults(func=_cmd_serve)

    serve_bench = subparsers.add_parser(
        "serve-bench",
        help=(
            "load-generate the ruling server + byte-differential gate "
            "-> BENCH_serve.json"
        ),
    )
    serve_bench.add_argument(
        "--quick",
        action="store_true",
        help="5k-action golden corpus instead of the 10k differential one",
    )
    serve_bench.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help=(
            "bench an already-running server instead of spawning one "
            "in-process on an ephemeral port"
        ),
    )
    serve_bench.add_argument(
        "--shards",
        type=int,
        default=4,
        help="shards for the spawned in-process server",
    )
    serve_bench.add_argument(
        "--policy",
        choices=["queue", "shed"],
        default="queue",
        help="backpressure policy for the spawned in-process server",
    )
    serve_bench.add_argument(
        "--batch-size",
        type=int,
        default=250,
        help="actions per rule request",
    )
    serve_bench.add_argument(
        "--depth",
        type=int,
        default=8,
        help="pipelined requests kept in flight",
    )
    serve_bench.add_argument(
        "--rps",
        type=float,
        default=None,
        help="target offered load in rulings/second (default: closed loop)",
    )
    serve_bench.add_argument(
        "--out",
        default="BENCH_serve.json",
        help="where to write the JSON report",
    )
    serve_bench.set_defaults(func=_cmd_serve_bench)

    metrics = subparsers.add_parser(
        "metrics",
        help="Prometheus text exposition from a traced Table 1 replay",
    )
    metrics.add_argument(
        "--no-comply",
        action="store_true",
        help="replay without obtaining process first",
    )
    metrics.set_defaults(func=_cmd_metrics)

    trace = subparsers.add_parser(
        "trace",
        help="span trace of a Table 1 replay (JSONL, Chrome, or audit)",
    )
    trace.add_argument(
        "--audit",
        action="store_true",
        help=(
            "report every acquisition span with its authorizing "
            "instrument; exit 1 on any unauthorized gated acquisition"
        ),
    )
    trace.add_argument(
        "--chrome",
        action="store_true",
        help="emit Chrome trace-event JSON instead of JSONL",
    )
    trace.add_argument(
        "--out",
        default=None,
        help="write the trace here instead of printing it",
    )
    trace.add_argument(
        "--no-comply",
        action="store_true",
        help="replay without obtaining process first (audit holes appear)",
    )
    trace.set_defaults(func=_cmd_trace)

    authorities = subparsers.add_parser(
        "authorities", help="list the citation registry"
    )
    authorities.add_argument(
        "-v", "--verbose", action="store_true", help="include holdings"
    )
    authorities.set_defaults(func=_cmd_authorities)

    workflow = subparsers.add_parser(
        "workflow",
        help="crash-resumable evidence workflows with journaled checkpoints",
    )
    workflow_sub = workflow.add_subparsers(
        dest="workflow_command", required=True
    )

    def _fault_plan_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--fault-plan",
            default="",
            help=(
                "fault plan, e.g. 'crash-after-record=3,storage-read=0.05,"
                "storage-bitrot=0.01,fault-seed=11'"
            ),
        )

    wf_run = workflow_sub.add_parser(
        "run", help="run a scenario pack, journaling every step boundary"
    )
    wf_run.add_argument("pack", help="pack name (photo-recovery, ...)")
    wf_run.add_argument("--seed", type=int, default=7, help="evidence seed")
    wf_run.add_argument(
        "--journal", default=None, help="journal file (JSONL, append-only)"
    )
    _fault_plan_flag(wf_run)
    wf_run.add_argument(
        "--items",
        type=int,
        default=1,
        help="run this many independent evidence items (seed, seed+1, ...)",
    )
    wf_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for --items > 1 (default: one per CPU)",
    )
    wf_run.add_argument(
        "--journal-dir",
        default=".workflow-journals",
        help="per-item journal directory for --items > 1",
    )
    wf_run.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the run report"
    )
    wf_run.set_defaults(func=_cmd_workflow_run)

    wf_resume = workflow_sub.add_parser(
        "resume", help="resume an interrupted run from its journal"
    )
    wf_resume.add_argument("pack", help="pack name the journal came from")
    wf_resume.add_argument(
        "--seed", type=int, default=7, help="the original run's seed"
    )
    wf_resume.add_argument(
        "--journal", required=True, help="the interrupted run's journal"
    )
    _fault_plan_flag(wf_resume)
    wf_resume.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the run report"
    )
    wf_resume.set_defaults(func=_cmd_workflow_resume)

    wf_lint = workflow_sub.add_parser(
        "lint", help="AST-lint pack step bodies (REPRO110/REPRO113, ...)"
    )
    wf_lint.add_argument(
        "--pack", default=None, help="limit to one pack (default: all)"
    )
    wf_lint.add_argument(
        "paths",
        nargs="*",
        help="extra step-body modules to lint alongside the packs",
    )
    wf_lint.set_defaults(func=_cmd_workflow_lint)

    wf_verify = workflow_sub.add_parser(
        "verify-resume",
        help=(
            "CI gate: crash at every journal boundary, resume, and fail "
            "on any byte divergence"
        ),
    )
    wf_verify.add_argument(
        "--pack", default=None, help="limit to one pack (default: all)"
    )
    wf_verify.add_argument(
        "--seed", type=int, default=7, help="evidence seed for the sweep"
    )
    _fault_plan_flag(wf_verify)
    wf_verify.add_argument(
        "--chaos",
        type=int,
        default=0,
        metavar="N",
        help="also kill-and-resume under N sampled storage fault plans",
    )
    wf_verify.add_argument(
        "--workdir",
        default=None,
        help="keep journals here instead of a temp directory",
    )
    wf_verify.set_defaults(func=_cmd_workflow_verify)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
