"""Command-line interface.

Usage::

    python -m repro table1                # reproduce the paper's Table 1
    python -m repro scene 18              # explain one scene's ruling
    python -m repro assess watermark      # Section IV advisor verdict
    python -m repro storyline ip          # run a full storyline
    python -m repro authorities           # list the citation registry
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence

from repro.core import ComplianceEngine, ResearchAdvisor, build_table1
from repro.investigation import format_assessment, format_table1


def _cmd_table1(args: argparse.Namespace) -> int:
    engine = ComplianceEngine()
    print(format_table1(build_table1(), engine))
    return 0


def _cmd_scene(args: argparse.Namespace) -> int:
    engine = ComplianceEngine()
    scenes = {scene.number: scene for scene in build_table1()}
    scene = scenes.get(args.number)
    if scene is None:
        print(f"no scene {args.number}; Table 1 has scenes 1-20")
        return 1
    ruling = engine.evaluate(scene.action)
    if args.json:
        import json

        payload = {
            "scene": scene.number,
            "description": scene.action.description,
            "paper_answer": scene.paper_answer,
            "ruling": ruling.to_dict(),
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"Scene {scene.number}: {scene.action.description}")
    print(f"Paper's answer: {scene.paper_answer}")
    print(ruling.explain())
    return 0


_TECHNIQUES: dict[str, Callable[[], object]] = {}


def _technique_factories() -> dict[str, Callable[[], object]]:
    if _TECHNIQUES:
        return _TECHNIQUES
    from repro.storage import KnownFileSet
    from repro.techniques import (
        CredentialedAccessTechnique,
        Credential,
        DataMiningTechnique,
        DsssWatermarkTechnique,
        HashSearchTechnique,
        OneSwarmTimingAttack,
        PacketCountingCorrelator,
    )
    from repro.techniques.interval_watermark import SquareWaveTechnique

    _TECHNIQUES.update(
        {
            "timing": OneSwarmTimingAttack,
            "watermark": DsssWatermarkTechnique,
            "square-wave": SquareWaveTechnique,
            "correlation": PacketCountingCorrelator,
            "hash-search": lambda: HashSearchTechnique(KnownFileSet()),
            "mining": lambda: DataMiningTechnique(fields=["ip"]),
            "credentials": lambda: CredentialedAccessTechnique(
                Credential("defendant", "password")
            ),
        }
    )
    return _TECHNIQUES


def _cmd_assess(args: argparse.Namespace) -> int:
    factories = _technique_factories()
    factory = factories.get(args.technique)
    if factory is None:
        print(f"unknown technique; choose from: {', '.join(sorted(factories))}")
        return 1
    technique = factory()
    assessment = technique.assess(ResearchAdvisor())
    print(format_assessment(assessment))
    return 0


def _cmd_storyline(args: argparse.Namespace) -> int:
    from repro.investigation.storylines import (
        ip_traceback_storyline,
        watermark_situation_one,
        watermark_situation_two,
    )

    runners = {
        "ip": lambda: ip_traceback_storyline(comply=True),
        "ip-crist": lambda: ip_traceback_storyline(comply=False),
        "wm1": watermark_situation_one,
        "wm2": watermark_situation_two,
    }
    runner = runners.get(args.name)
    if runner is None:
        print(f"unknown storyline; choose from: {', '.join(sorted(runners))}")
        return 1
    report = runner()
    print(f"=== {report.title} ===")
    for index, step in enumerate(report.steps, 1):
        print(f"  {index}. {step}")
    print(f"outcome: {'SUCCESS' if report.succeeded else 'FAILED'}")
    return 0


def _cmd_reference(args: argparse.Namespace) -> int:
    from repro.investigation import format_quick_reference

    print(format_quick_reference(build_table1(), ComplianceEngine()))
    return 0


def _cmd_curve(args: argparse.Namespace) -> int:
    from repro.investigation.campaign import compliance_curve

    probabilities = [0.0, 0.25, 0.5, 0.75, 1.0]
    curve = compliance_curve(
        probabilities, n_cases=args.cases, seed=args.seed
    )
    print("prosecution success rate vs compliance probability:")
    for p in probabilities:
        bar = "#" * int(curve[p] * 40)
        print(f"  p={p:4.2f}: {curve[p]:6.1%} {bar}")
    return 0


def _cmd_authorities(args: argparse.Namespace) -> int:
    engine = ComplianceEngine()
    for authority in sorted(engine.registry, key=lambda a: a.key):
        print(f"{authority.key:28s} {authority.citation}")
        if args.verbose:
            print(f"{'':28s}   {authority.holding}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Compliance-aware digital forensics framework reproducing "
            "'When Digital Forensic Research Meets Laws' (ICDCS 2012)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1 = subparsers.add_parser(
        "table1", help="reproduce the paper's Table 1"
    )
    table1.set_defaults(func=_cmd_table1)

    scene = subparsers.add_parser(
        "scene", help="explain one Table 1 scene's ruling"
    )
    scene.add_argument("number", type=int, help="scene number (1-20)")
    scene.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    scene.set_defaults(func=_cmd_scene)

    assess = subparsers.add_parser(
        "assess", help="Section IV advisor verdict for a technique"
    )
    assess.add_argument(
        "technique",
        help=(
            "timing | watermark | square-wave | correlation | "
            "hash-search | mining | credentials"
        ),
    )
    assess.set_defaults(func=_cmd_assess)

    storyline = subparsers.add_parser(
        "storyline", help="run a full investigation storyline"
    )
    storyline.add_argument("name", help="ip | ip-crist | wm1 | wm2")
    storyline.set_defaults(func=_cmd_storyline)

    reference = subparsers.add_parser(
        "reference",
        help="the paper's quick-reference table, with citations",
    )
    reference.set_defaults(func=_cmd_reference)

    curve = subparsers.add_parser(
        "curve", help="prosecution success vs compliance probability"
    )
    curve.add_argument(
        "--cases", type=int, default=200, help="cases per probability"
    )
    curve.add_argument("--seed", type=int, default=9, help="RNG seed")
    curve.set_defaults(func=_cmd_curve)

    authorities = subparsers.add_parser(
        "authorities", help="list the citation registry"
    )
    authorities.add_argument(
        "-v", "--verbose", action="store_true", help="include holdings"
    )
    authorities.set_defaults(func=_cmd_authorities)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
