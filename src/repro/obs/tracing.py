"""Span collection: nested, sim-time aware, worker-mergeable.

A :class:`TraceCollector` hands out :class:`Span` context managers; the
collector keeps an explicit parent stack, so nesting falls out of
``with`` scoping with no thread-locals or global interpreter state.
Finished spans become immutable :class:`SpanRecord`\\ s in *finish*
order (a child always precedes its parent), which is also the order
JSONL export emits.

Two clocks coexist on every record: wall time from
``time.perf_counter`` (for flame views and overhead math) and optional
*sim time* — the simulation's own clock, which is what the
investigation pipeline and chaos harness reason in.

Worker processes can't share a collector, so a worker serialises its
records with :meth:`TraceCollector.export_records` (plain dicts, cheap
to pickle) and the parent re-ingests them with
:meth:`TraceCollector.adopt`, which renumbers span ids into the
parent's id space while preserving the parent/child shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import Callable


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (or zero-duration instant event)."""

    span_id: int
    parent_id: int | None
    name: str
    t0: float
    t1: float
    sim_time: float | None = None
    attrs: dict[str, object] = field(default_factory=dict)
    audit: dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall-clock duration in seconds (0.0 for instant events)."""
        return self.t1 - self.t0

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (one JSONL line)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "dur": self.duration,
            "sim_time": self.sim_time,
            "attrs": self.attrs,
            "audit": self.audit,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> SpanRecord:
        """Inverse of :meth:`to_dict` (used by :meth:`TraceCollector.adopt`)."""
        parent = payload["parent_id"]
        sim_time = payload["sim_time"]
        attrs = payload.get("attrs") or {}
        audit = payload.get("audit") or {}
        assert isinstance(attrs, dict) and isinstance(audit, dict)
        return cls(
            span_id=int(payload["span_id"]),  # type: ignore[call-overload]
            parent_id=None if parent is None else int(parent),  # type: ignore[call-overload]
            name=str(payload["name"]),
            t0=float(payload["t0"]),  # type: ignore[arg-type]
            t1=float(payload["t1"]),  # type: ignore[arg-type]
            sim_time=None if sim_time is None else float(sim_time),  # type: ignore[arg-type]
            attrs=dict(attrs),
            audit=dict(audit),
        )


class NoopSpan:
    """Shared do-nothing span returned whenever telemetry is disabled.

    A single module-level instance (:data:`NOOP_SPAN`) serves every
    disabled call site: entering, exiting, and :meth:`set` all return
    immediately, so the disabled path allocates nothing per call.
    """

    __slots__ = ()

    def __enter__(self) -> NoopSpan:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None

    def set(self, **attrs: object) -> NoopSpan:
        """Ignore attributes; chainable like the live span."""
        return self

    @property
    def duration(self) -> float:
        """Always 0.0; mirrors :attr:`Span.duration`."""
        return 0.0


NOOP_SPAN = NoopSpan()

#: The telemetry layer's wall clock.  Library code that needs a raw
#: duration (the lint runner's per-rule timings) reads it from here so
#: the clock stays owned by ``repro.obs`` — a bare ``time.perf_counter``
#: elsewhere is a REPRO109 finding.
clock: Callable[[], float] = time.perf_counter


class Span:
    """A live span; use as a context manager.

    The span is inert until ``__enter__`` (creating one and discarding
    it records nothing).  Attributes set via :meth:`set` while open are
    attached to the finished record.
    """

    __slots__ = (
        "_collector", "name", "sim_time", "attrs",
        "span_id", "parent_id", "t0", "t1",
    )

    def __init__(
        self,
        collector: TraceCollector,
        name: str,
        sim_time: float | None,
        attrs: dict[str, object],
    ) -> None:
        self._collector = collector
        self.name = name
        self.sim_time = sim_time
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: int | None = None
        self.t0 = 0.0
        self.t1 = 0.0

    def set(self, **attrs: object) -> Span:
        """Attach attributes to the span; chainable."""
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        """Wall-clock duration; valid once the span has closed."""
        return self.t1 - self.t0

    def __enter__(self) -> Span:
        self._collector._open(self)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._collector._close(self)
        return None


class TraceCollector:
    """Accumulates finished spans and instant events.

    Args:
        clock: Wall-clock source; injectable for deterministic tests.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._next_id = 1
        self._stack: list[Span] = []
        self._audit_stack: list[dict[str, object]] = []
        self.spans: list[SpanRecord] = []

    # -- span lifecycle -------------------------------------------------

    def span(
        self,
        name: str,
        sim_time: float | None = None,
        **attrs: object,
    ) -> Span:
        """A new span context manager, child of the innermost open span."""
        return Span(self, name, sim_time, attrs)

    def event(
        self,
        name: str,
        sim_time: float | None = None,
        **attrs: object,
    ) -> SpanRecord:
        """Record a zero-duration instant event under the open span."""
        now = self._clock()
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            t0=now,
            t1=now,
            sim_time=sim_time,
            attrs=attrs,
            audit=self.current_audit(),
        )
        self._next_id += 1
        self.spans.append(record)
        return record

    def _open(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1].span_id if self._stack else None
        self._stack.append(span)
        span.t0 = self._clock()

    def _close(self, span: Span) -> None:
        span.t1 = self._clock()
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order; spans must nest"
            )
        self._stack.pop()
        self.spans.append(
            SpanRecord(
                span_id=span.span_id,
                parent_id=span.parent_id,
                name=span.name,
                t0=span.t0,
                t1=span.t1,
                sim_time=span.sim_time,
                attrs=span.attrs,
                audit=self.current_audit(),
            )
        )

    # -- audit frames ---------------------------------------------------

    def push_audit(self, frame: dict[str, object]) -> None:
        """Push an audit frame; spans finished under it are stamped."""
        merged = dict(self._audit_stack[-1]) if self._audit_stack else {}
        merged.update(frame)
        self._audit_stack.append(merged)

    def pop_audit(self) -> None:
        self._audit_stack.pop()

    def current_audit(self) -> dict[str, object]:
        """The audit fields in scope right now (a copy; {} outside any)."""
        return dict(self._audit_stack[-1]) if self._audit_stack else {}

    # -- merge / export -------------------------------------------------

    def export_records(self) -> list[dict[str, object]]:
        """Finished spans as plain dicts — picklable, JSON-ready."""
        return [record.to_dict() for record in self.spans]

    def adopt(
        self,
        records: list[dict[str, object]],
        parent_id: int | None = None,
    ) -> None:
        """Re-ingest records exported by another collector.

        Span ids are renumbered into this collector's id space; the
        relative parent/child shape is preserved.  Root spans of the
        adopted batch are re-parented under ``parent_id`` (or the
        currently open span when ``None`` and one is open).
        """
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        parsed = [SpanRecord.from_dict(payload) for payload in records]
        # Records arrive in finish order (children before parents), so
        # assign every new id before resolving any parent reference.
        id_map: dict[int, int] = {}
        for record in parsed:
            id_map[record.span_id] = self._next_id
            self._next_id += 1
        for record in parsed:
            new_parent = (
                id_map.get(record.parent_id, parent_id)
                if record.parent_id is not None
                else parent_id
            )
            self.spans.append(
                SpanRecord(
                    span_id=id_map[record.span_id],
                    parent_id=new_parent,
                    name=record.name,
                    t0=record.t0,
                    t1=record.t1,
                    sim_time=record.sim_time,
                    attrs=record.attrs,
                    audit=record.audit,
                )
            )
