"""Zero-dependency telemetry for the reproduction.

Disabled by default, with a guaranteed near-zero cost when off:

* Hot paths (the compliance engine) guard on the module-level
  ``OBS.enabled`` flag before building any span arguments, so the
  disabled cost is one attribute load and a branch — no dict, no call.
* Warm paths call :func:`span` / :func:`audit` directly; when disabled
  these return module-level no-op singletons without touching a
  collector.

Enable around a workload to collect::

    from repro import obs

    collector = obs.enable()
    ...                         # instrumented code records spans
    obs.disable()
    print(obs.export.to_jsonl(collector.spans))

The package imports nothing from the rest of ``repro`` — any module
(including :mod:`repro.core`) can import it without cycles.  Cache
counters are absorbed through the duck-typed :func:`bind_ruling_cache`
rather than an import of :mod:`repro.core.cache`.
"""

from __future__ import annotations

from types import TracebackType
from typing import Protocol

from repro.obs import export
from repro.obs.audit import (
    ACQUISITION_SPAN,
    acquisition_spans,
    render_audit_report,
    unauthorized_acquisitions,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    CallbackGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import (
    NOOP_SPAN,
    NoopSpan,
    Span,
    SpanRecord,
    TraceCollector,
    clock,
)


class ObsState:
    """The process-wide telemetry switch and its attached sinks."""

    __slots__ = ("enabled", "collector", "registry")

    def __init__(self) -> None:
        self.enabled = False
        self.collector: TraceCollector | None = None
        self.registry = MetricsRegistry()


#: Module-level state; instrumented code reads ``OBS.enabled`` directly.
OBS = ObsState()


def enable(collector: TraceCollector | None = None) -> TraceCollector:
    """Turn telemetry on; returns the active collector.

    Passing a collector adopts it; otherwise the current one is kept if
    present, or a fresh one created.
    """
    if collector is not None:
        OBS.collector = collector
    elif OBS.collector is None:
        OBS.collector = TraceCollector()
    OBS.enabled = True
    return OBS.collector


def disable() -> TraceCollector | None:
    """Turn telemetry off; returns the collector with what it gathered."""
    OBS.enabled = False
    collector, OBS.collector = OBS.collector, None
    return collector


def reset() -> None:
    """Disable and discard all collected spans and metrics."""
    OBS.enabled = False
    OBS.collector = None
    OBS.registry = MetricsRegistry()


def span(
    name: str, sim_time: float | None = None, **attrs: object
) -> Span | NoopSpan:
    """A span context manager, or the shared no-op when disabled."""
    if not OBS.enabled or OBS.collector is None:
        return NOOP_SPAN
    return OBS.collector.span(name, sim_time, **attrs)


def event(
    name: str, sim_time: float | None = None, **attrs: object
) -> SpanRecord | None:
    """Record an instant event; no-op (returns None) when disabled."""
    if not OBS.enabled or OBS.collector is None:
        return None
    return OBS.collector.event(name, sim_time, **attrs)


class _AuditScope:
    """Context manager pushing one audit frame on the active collector."""

    __slots__ = ("_frame",)

    def __init__(self, frame: dict[str, object]) -> None:
        self._frame = frame

    def __enter__(self) -> _AuditScope:
        collector = OBS.collector
        if collector is not None:
            collector.push_audit(self._frame)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        collector = OBS.collector
        if collector is not None:
            collector.pop_audit()
        return None


class _NoopAuditScope:
    __slots__ = ()

    def __enter__(self) -> _NoopAuditScope:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


_NOOP_AUDIT = _NoopAuditScope()


def audit(**fields: object) -> _AuditScope | _NoopAuditScope:
    """Stamp spans finished inside the scope with the given audit fields.

    ``None``-valued fields are dropped; nested scopes merge, inner wins.
    """
    if not OBS.enabled or OBS.collector is None:
        return _NOOP_AUDIT
    return _AuditScope(
        {key: value for key, value in fields.items() if value is not None}
    )


class CacheStatsLike(Protocol):
    """What :func:`bind_ruling_cache` needs from a stats object."""

    hits: int
    misses: int
    evictions: int


def bind_ruling_cache(
    stats: CacheStatsLike, name: str = "engine"
) -> None:
    """Absorb ruling-cache counters into the registry as callback gauges.

    Duck-typed on the stats object so :mod:`repro.obs` never imports
    :mod:`repro.core`; the cache pays nothing per operation — values are
    read only when the registry renders.
    """
    labels: dict[str, object] = {"cache": name}
    OBS.registry.gauge_fn(
        "repro_ruling_cache_hits",
        lambda: float(stats.hits),
        "Ruling cache hits since cache creation.",
        labels,
    )
    OBS.registry.gauge_fn(
        "repro_ruling_cache_misses",
        lambda: float(stats.misses),
        "Ruling cache misses since cache creation.",
        labels,
    )
    OBS.registry.gauge_fn(
        "repro_ruling_cache_evictions",
        lambda: float(stats.evictions),
        "Ruling cache LRU evictions since cache creation.",
        labels,
    )


class LedgerStatsLike(Protocol):
    """What :func:`bind_ledger` needs from a ledger stats object."""

    ruling_writes: int
    ruling_duplicates: int
    primed_rulings: int


def bind_ledger(stats: LedgerStatsLike, name: str = "ledger") -> None:
    """Absorb ledger session counters into the registry as gauges.

    Duck-typed on the stats object so :mod:`repro.obs` never imports
    :mod:`repro.ledger`; like :func:`bind_ruling_cache`, the ledger pays
    nothing per write — values are read only when the registry renders.
    """
    labels: dict[str, object] = {"ledger": name}
    OBS.registry.gauge_fn(
        "repro_ledger_ruling_writes",
        lambda: float(stats.ruling_writes),
        "Fresh rulings this ledger handle inserted.",
        labels,
    )
    OBS.registry.gauge_fn(
        "repro_ledger_ruling_duplicates",
        lambda: float(stats.ruling_duplicates),
        "Ruling writes skipped as already present.",
        labels,
    )
    OBS.registry.gauge_fn(
        "repro_ledger_primed_rulings",
        lambda: float(stats.primed_rulings),
        "Rulings streamed out of the ledger to warm a cache.",
        labels,
    )


__all__ = [
    "ACQUISITION_SPAN",
    "DEFAULT_BUCKETS",
    "CallbackGauge",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NoopSpan",
    "OBS",
    "ObsState",
    "Span",
    "SpanRecord",
    "TraceCollector",
    "acquisition_spans",
    "audit",
    "bind_ledger",
    "bind_ruling_cache",
    "clock",
    "disable",
    "enable",
    "event",
    "export",
    "render_audit_report",
    "reset",
    "span",
    "unauthorized_acquisitions",
]
