"""Trace serialisation: JSONL lines and Chrome trace-event JSON.

JSONL is the archival format (one :meth:`SpanRecord.to_dict` per line,
append-friendly, greppable); the Chrome trace-event format is for flame
views — load the file at ``chrome://tracing`` or https://ui.perfetto.dev.
Spans become complete (``ph: "X"``) events; zero-duration records become
instants (``ph: "i"``).  Timestamps are microseconds as the format
requires, rebased so the first record starts at 0.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.obs.tracing import SpanRecord


def to_jsonl(records: Sequence[SpanRecord]) -> str:
    """One JSON object per line, in finish order; '' for no records."""
    if not records:
        return ""
    return "\n".join(
        json.dumps(record.to_dict(), sort_keys=True) for record in records
    ) + "\n"


def to_chrome_trace(records: Sequence[SpanRecord]) -> str:
    """The records as a Chrome trace-event JSON document."""
    base = min((record.t0 for record in records), default=0.0)
    events: list[dict[str, object]] = []
    for record in records:
        args: dict[str, object] = dict(record.attrs)
        if record.sim_time is not None:
            args["sim_time"] = record.sim_time
        if record.audit:
            args["audit"] = record.audit
        event: dict[str, object] = {
            "name": record.name,
            "pid": 1,
            "tid": 1,
            "ts": (record.t0 - base) * 1e6,
            "args": args,
        }
        if record.t1 > record.t0:
            event["ph"] = "X"
            event["dur"] = record.duration * 1e6
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    return json.dumps({"traceEvents": events}, sort_keys=True)


def write_trace(path: str, records: Sequence[SpanRecord], chrome: bool = False) -> None:
    """Write records to ``path`` as JSONL (default) or Chrome trace JSON."""
    payload = to_chrome_trace(records) if chrome else to_jsonl(records)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
