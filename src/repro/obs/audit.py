"""Audit correlation: from spans back to the legal process behind them.

The paper's accountability argument is that every acquisition must be
traceable to the instrument that authorized it.  The tracing layer
makes that mechanical: the investigation pipeline pushes an *audit
frame* (docket entry, instrument id, instrument kind) around each
acquisition, every span finished inside the frame carries those fields
in ``SpanRecord.audit``, and this module answers the resulting query —
"show every acquisition span and the instrument that authorized it".
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.obs.tracing import SpanRecord

#: Span name the pipeline uses for the evidence-acquisition step.
ACQUISITION_SPAN = "pipeline.acquisition"


def acquisition_spans(records: Sequence[SpanRecord]) -> list[SpanRecord]:
    """All acquisition spans, in finish order."""
    return [record for record in records if record.name == ACQUISITION_SPAN]


def unauthorized_acquisitions(
    records: Sequence[SpanRecord],
) -> list[SpanRecord]:
    """Acquisition spans of process-gated steps missing an instrument id.

    A span is *gated* when the ruling said legal process was required
    (``attrs["needs_process"]`` is true); a gated span without an
    ``instrument_id`` in its audit frame is an accountability hole.
    """
    return [
        record
        for record in acquisition_spans(records)
        if record.attrs.get("needs_process")
        and record.audit.get("instrument_id") is None
    ]


def render_audit_report(records: Sequence[SpanRecord]) -> str:
    """Human-readable acquisition/authorization correlation table."""
    lines = ["acquisition spans and their authorizing instruments:"]
    spans = acquisition_spans(records)
    if not spans:
        lines.append("  (no acquisition spans in trace)")
        return "\n".join(lines)
    for record in spans:
        scene = record.attrs.get("scene", "?")
        evidence = record.attrs.get("evidence_id")
        evidence_part = (
            f"evidence #{evidence}" if evidence is not None else "no evidence"
        )
        instrument_id = record.audit.get("instrument_id")
        if instrument_id is not None:
            kind = record.audit.get("instrument_kind", "process")
            docket = record.audit.get("docket_id")
            docket_part = f", docket #{docket}" if docket is not None else ""
            authority = (
                f"authorized by {kind} (instrument #{instrument_id}"
                f"{docket_part})"
            )
        elif record.attrs.get("needs_process"):
            authority = "UNAUTHORIZED: process required but no instrument"
        else:
            authority = "no process required"
        lines.append(f"  scene {scene}: {evidence_part} — {authority}")
    holes = unauthorized_acquisitions(records)
    lines.append(
        f"{len(spans)} acquisition span(s), "
        f"{len(holes)} unauthorized"
    )
    return "\n".join(lines)
