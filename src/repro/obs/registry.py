"""Metric instruments and the registry that renders them.

Three instrument kinds cover everything the reproduction needs to
expose: monotonically increasing :class:`Counter`\\ s, free-moving
:class:`Gauge`\\ s (including callback gauges evaluated lazily at render
time, which is how the :class:`~repro.core.cache.RulingCache` counters
are absorbed without touching the cache's hot path), and fixed-bucket
:class:`Histogram`\\ s with p50/p95/p99 extraction.

The registry renders Prometheus-style text exposition
(``# HELP`` / ``# TYPE`` headers, ``{label="value"}`` sample lines,
cumulative ``_bucket{le=...}`` series) so a future ``repro serve``
``/metrics`` endpoint can return :meth:`MetricsRegistry.render_text`
verbatim.  Everything here is pure stdlib — the package imports nothing
from the rest of ``repro`` so any module can import it without cycles.
"""

from __future__ import annotations

import math
import re
from collections.abc import Callable, Iterator, Sequence

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

#: Default histogram bucket upper bounds (seconds): 100 ns .. 10 s in a
#: 1-2.5-5 ladder.  The sub-microsecond decade exists because cached
#: rulings complete in ~2 µs and cached *lookups* in well under 1 µs —
#: without it every hot-path observation lands in the lowest bucket and
#: p50 collapses to the bucket edge instead of interpolating.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-7, 2.5e-7, 5e-7,
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(labels: dict[str, object]) -> LabelKey:
    """Canonical hashable key for a label set (sorted by label name)."""
    for label in labels:
        if not _LABEL_RE.match(label):
            raise ValueError(f"invalid label name {label!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_sample(
    name: str, labels: LabelKey, value: float, extra: str = ""
) -> str:
    rendered = [f'{k}="{_escape_label_value(v)}"' for k, v in labels]
    if extra:
        rendered.append(extra)
    label_part = "{" + ",".join(rendered) + "}" if rendered else ""
    if value == math.inf:
        text = "+Inf"
    elif value == int(value) and abs(value) < 1e15:
        text = str(int(value))
    else:
        text = repr(value)
    return f"{name}{label_part} {text}"


class Counter:
    """A monotonically increasing counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = _check_name(name)
        self.help_text = help_text
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Increase the counter; ``amount`` must be non-negative."""
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value for a label set (0.0 if never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[str]:
        for key in sorted(self._values):
            yield _format_sample(self.name, key, self._values[key])


class Gauge:
    """A value that can go up and down, optionally labelled."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = _check_name(name)
        self.help_text = help_text
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[str]:
        for key in sorted(self._values):
            yield _format_sample(self.name, key, self._values[key])


class CallbackGauge:
    """A gauge whose values are read from callables at render time.

    This is the zero-hot-path-cost absorption mechanism: binding the
    ruling cache's hit counter costs one closure here and nothing per
    cache operation.  One instrument holds one callback *per label set*,
    so N server shards can each bind their private cache under the same
    metric name with a distinguishing ``shard`` label — re-binding an
    existing label set replaces that callback only.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        fn: Callable[[], float],
        help_text: str = "",
        labels: dict[str, object] | None = None,
    ) -> None:
        self.name = _check_name(name)
        self.help_text = help_text
        self._callbacks: dict[LabelKey, Callable[[], float]] = {
            _label_key(labels or {}): fn
        }

    def add_callback(
        self,
        fn: Callable[[], float],
        labels: dict[str, object] | None = None,
    ) -> None:
        """Bind ``fn`` under ``labels``, replacing any same-labelled one."""
        self._callbacks[_label_key(labels or {})] = fn

    def value(self, **labels: object) -> float:
        """The live value for a label set (the sole one when unlabelled)."""
        key = _label_key(labels)
        if key not in self._callbacks and not labels:
            if len(self._callbacks) != 1:
                raise KeyError(
                    f"callback gauge {self.name!r} has "
                    f"{len(self._callbacks)} label sets; specify one"
                )
            key = next(iter(self._callbacks))
        return float(self._callbacks[key]())

    def samples(self) -> Iterator[str]:
        for key in sorted(self._callbacks):
            yield _format_sample(
                self.name, key, float(self._callbacks[key]())
            )


class Histogram:
    """A fixed-bucket histogram with quantile extraction.

    Observations are counted into cumulative-style buckets keyed by
    upper bound; quantiles are recovered by linear interpolation inside
    the bucket containing the target rank, so the error of
    :meth:`quantile` against an exact per-sample quantile is bounded by
    the width of that bucket.  Min and max are tracked exactly, which
    pins the interpolation at both tails.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] | None = None,
    ) -> None:
        self.name = _check_name(name)
        self.help_text = help_text
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        self._bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # + overflow
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        lo, hi = 0, len(self._bounds)
        while lo < hi:  # bisect over bounds: first bound >= value
            mid = (lo + hi) // 2
            if self._bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self._bucket_counts[lo] += 1
        self._sum += value
        self._count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (q in [0, 1]) by in-bucket interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return math.nan
        if q == 0.0:
            return self._min
        target = q * self._count
        cumulative = 0
        previous_bound = self._min
        for index, bucket_count in enumerate(self._bucket_counts):
            if bucket_count:
                upper = (
                    self._bounds[index]
                    if index < len(self._bounds)
                    else self._max
                )
                lower = max(previous_bound, self._min)
                upper = min(upper, self._max)
                if cumulative + bucket_count >= target:
                    fraction = (target - cumulative) / bucket_count
                    return lower + (upper - lower) * fraction
                cumulative += bucket_count
            if index < len(self._bounds):
                previous_bound = self._bounds[index]
        return self._max

    def percentiles(self) -> dict[str, float]:
        """The conventional p50/p95/p99 summary."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def samples(self) -> Iterator[str]:
        cumulative = 0
        for bound, bucket_count in zip(self._bounds, self._bucket_counts):
            cumulative += bucket_count
            yield _format_sample(
                f"{self.name}_bucket", (), float(cumulative),
                extra=f'le="{bound!r}"',
            )
        yield _format_sample(
            f"{self.name}_bucket", (), float(self._count), extra='le="+Inf"'
        )
        yield _format_sample(f"{self.name}_sum", (), self._sum)
        yield _format_sample(f"{self.name}_count", (), float(self._count))


Metric = Counter | Gauge | CallbackGauge | Histogram


class MetricsRegistry:
    """Named home for instruments plus the text exposition renderer.

    Instruments are created on first use (``registry.counter(name)``
    returns the existing counter on later calls), so instrumented code
    never has to coordinate declaration order.  Re-requesting a name as
    a different instrument kind raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(
        self, name: str, factory: Callable[[], Metric], kind: type
    ) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        metric = self._get_or_create(
            name, lambda: Counter(name, help_text), Counter
        )
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        metric = self._get_or_create(
            name, lambda: Gauge(name, help_text), Gauge
        )
        assert isinstance(metric, Gauge)
        return metric

    def gauge_fn(
        self,
        name: str,
        fn: Callable[[], float],
        help_text: str = "",
        labels: dict[str, object] | None = None,
    ) -> CallbackGauge:
        """Register a callback gauge series read at render time.

        A repeat call with the same name and a *new* label set adds a
        series to the existing instrument; the same label set replaces
        that series' callback.  This is what lets every server shard
        export its private cache counters under one metric name.
        """
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, CallbackGauge):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not CallbackGauge"
                )
            existing.add_callback(fn, labels)
            if help_text and not existing.help_text:
                existing.help_text = help_text
            return existing
        gauge = CallbackGauge(name, fn, help_text, labels)
        self._metrics[name] = gauge
        return gauge

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        metric = self._get_or_create(
            name, lambda: Histogram(name, help_text, buckets), Histogram
        )
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Metric | None:
        """The registered instrument under ``name``, if any."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def render_text(self) -> str:
        """Prometheus text exposition of every registered instrument."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            help_text = getattr(metric, "help_text", "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.samples())
        return "\n".join(lines) + ("\n" if lines else "")
