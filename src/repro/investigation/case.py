"""Cases: the facts an investigation accumulates.

A case collects :class:`~repro.court.application.Fact` records as the
investigation progresses; its current showing is the *maximum* standard
any fact supports (facts do not stack — ten suspicions are still
suspicion).  The paper's probable-cause scenarios map to fact helpers:
an IP address tied to criminal traffic supports probable cause
(III.A.1(a)), account membership alone supports only suspicion unless
intent is shown (III.A.1(b), Gourde vs Coreas).
"""

from __future__ import annotations

import dataclasses

from repro.core.enums import ProcessKind, Standard
from repro.court.application import Fact, ProcessApplication


@dataclasses.dataclass
class Case:
    """One criminal investigation's accumulated state."""

    name: str
    description: str = ""
    facts: list[Fact] = dataclasses.field(default_factory=list)
    suspects: list[str] = dataclasses.field(default_factory=list)

    def add_fact(self, fact: Fact) -> None:
        """Add a fact to the case."""
        self.facts.append(fact)

    def add_suspect(self, name: str) -> None:
        """Name a suspect (idempotent)."""
        if name not in self.suspects:
            self.suspects.append(name)

    def showing(self) -> Standard:
        """The strongest standard the case's facts currently support."""
        if not self.facts:
            return Standard.NOTHING
        return max(fact.supports for fact in self.facts)

    def can_apply_for(self, kind: ProcessKind) -> bool:
        """Whether the case's showing could support this process."""
        from repro.core.enums import REQUIRED_SHOWING

        return self.showing().satisfies(REQUIRED_SHOWING[kind])

    def to_application(
        self,
        kind: ProcessKind,
        applicant: str,
        applied_at: float,
        target_place: str = "",
        target_items: tuple[str, ...] = (),
        necessity_statement: str = "",
    ) -> ProcessApplication:
        """Package the case's facts into a process application."""
        return ProcessApplication(
            kind=kind,
            applicant=applicant,
            facts=tuple(self.facts),
            target_place=target_place,
            target_items=target_items,
            applied_at=applied_at,
            necessity_statement=necessity_statement,
        )


# -- fact helpers for the paper's probable-cause scenarios ---------------------


def ip_address_fact(
    ip: str, crime: str, observed_at: float = 0.0
) -> Fact:
    """Probable cause via an IP address (paper section III.A.1(a)).

    An IP address observed in criminal traffic, traced to a subscriber,
    supports probable cause for a warrant on the subscriber's premises —
    "no matter the suspect uses an unsecure wireless connection".
    """
    return Fact(
        description=f"IP address {ip} observed in {crime} traffic",
        supports=Standard.PROBABLE_CAUSE,
        observed_at=observed_at,
    )


def membership_fact(
    account: str, service: str, observed_at: float = 0.0
) -> Fact:
    """Membership alone (Coreas): supports only suspicion."""
    return Fact(
        description=f"account {account!r} is a member of {service}",
        supports=Standard.MERE_SUSPICION,
        observed_at=observed_at,
    )


def membership_with_intent_fact(
    account: str, service: str, intent_evidence: str, observed_at: float = 0.0
) -> Fact:
    """Membership plus intent (Gourde): supports probable cause.

    The paper: "If law enforcement has a technique to identify the
    suspect's intent along with the membership, this is a probable cause."
    """
    return Fact(
        description=(
            f"account {account!r} is a member of {service} and "
            f"{intent_evidence}"
        ),
        supports=Standard.PROBABLE_CAUSE,
        observed_at=observed_at,
    )


def articulable_facts(
    description: str, observed_at: float = 0.0
) -> Fact:
    """Specific and articulable facts — the 2703(d) court-order showing."""
    return Fact(
        description=description,
        supports=Standard.SPECIFIC_AND_ARTICULABLE_FACTS,
        observed_at=observed_at,
    )


def suspicion_fact(description: str, observed_at: float = 0.0) -> Fact:
    """A bare suspicion — enough for a subpoena only."""
    return Fact(
        description=description,
        supports=Standard.MERE_SUSPICION,
        observed_at=observed_at,
    )
