"""Campaign simulation: prosecution success as a function of compliance.

The paper's thesis, aggregated: techniques used without the required
process produce suppressed evidence and failed prosecutions.  A campaign
runs many randomized cases — each drawing a Table 1 scene — with the
officer obtaining the required process with a configurable probability,
and measures the prosecution success rate.  The success curve is monotone
in the compliance probability, saturating at 100% under full compliance.
"""

from __future__ import annotations

import dataclasses
import random

from repro.core.engine import ComplianceEngine
from repro.core.scenarios import Scenario, build_table1
from repro.investigation.pipeline import InvestigationPipeline, SceneOutcome


@dataclasses.dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one campaign.

    Attributes:
        n_cases: Number of randomized cases to run.
        comply_probability: Per-case probability the officer seeks the
            required process before acting.
        seed: RNG seed for scene selection and compliance draws.
    """

    n_cases: int = 100
    comply_probability: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_cases < 1:
            raise ValueError("n_cases must be positive")
        if not 0.0 <= self.comply_probability <= 1.0:
            raise ValueError("comply_probability must be a probability")


@dataclasses.dataclass(frozen=True)
class CampaignResult:
    """Aggregate outcome of a campaign.

    Attributes:
        config: The campaign's parameters.
        outcomes: Every case's scene outcome, in order.
        successes: Cases whose evidence was admitted.
        suppressed: Cases whose evidence was excluded.
    """

    config: CampaignConfig
    outcomes: tuple[SceneOutcome, ...]
    successes: int
    suppressed: int

    @property
    def success_rate(self) -> float:
        """Fraction of cases ending with admissible evidence."""
        return self.successes / len(self.outcomes) if self.outcomes else 0.0

    def success_rate_for(self, needs_process: bool) -> float:
        """Success rate restricted to scenes (not) needing process."""
        relevant = [
            outcome
            for outcome in self.outcomes
            if outcome.ruling.needs_process == needs_process
        ]
        if not relevant:
            return 0.0
        return sum(not o.suppressed for o in relevant) / len(relevant)


def run_campaign(
    config: CampaignConfig,
    scenarios: tuple[Scenario, ...] | None = None,
    engine: ComplianceEngine | None = None,
) -> CampaignResult:
    """Run one campaign of randomized cases.

    Args:
        config: Campaign parameters.
        scenarios: Scene pool to draw from (defaults to Table 1).
        engine: Compliance engine to share across cases.
    """
    scenarios = scenarios or build_table1()
    pipeline = InvestigationPipeline(engine)
    rng = random.Random(config.seed)

    outcomes: list[SceneOutcome] = []
    successes = 0
    for __ in range(config.n_cases):
        scenario = rng.choice(scenarios)
        complies = rng.random() < config.comply_probability
        outcome = pipeline.run_scene(scenario, obtain_process=complies)
        outcomes.append(outcome)
        successes += not outcome.suppressed

    return CampaignResult(
        config=config,
        outcomes=tuple(outcomes),
        successes=successes,
        suppressed=config.n_cases - successes,
    )


def compliance_curve(
    probabilities: list[float],
    n_cases: int = 100,
    seed: int = 0,
) -> dict[float, float]:
    """Success rate at each compliance probability (the thesis curve)."""
    return {
        p: run_campaign(
            CampaignConfig(
                n_cases=n_cases, comply_probability=p, seed=seed
            )
        ).success_rate
        for p in probabilities
    }
