"""Campaign simulation: prosecution success as a function of compliance.

The paper's thesis, aggregated: techniques used without the required
process produce suppressed evidence and failed prosecutions.  A campaign
runs many randomized cases — each drawing a Table 1 scene — with the
officer obtaining the required process with a configurable probability,
and measures the prosecution success rate.  The success curve is monotone
in the compliance probability, saturating at 100% under full compliance.
"""

from __future__ import annotations

import dataclasses
import os
import random
from concurrent.futures import ProcessPoolExecutor

from repro import obs
from repro.core.cache import RulingCache
from repro.core.engine import ComplianceEngine
from repro.core.scenarios import Scenario, build_table1
from repro.investigation.pipeline import InvestigationPipeline, SceneOutcome


@dataclasses.dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one campaign.

    Attributes:
        n_cases: Number of randomized cases to run.
        comply_probability: Per-case probability the officer seeks the
            required process before acting.
        seed: RNG seed for scene selection and compliance draws.
    """

    n_cases: int = 100
    comply_probability: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_cases < 1:
            raise ValueError("n_cases must be positive")
        if not 0.0 <= self.comply_probability <= 1.0:
            raise ValueError("comply_probability must be a probability")


@dataclasses.dataclass(frozen=True)
class CampaignResult:
    """Aggregate outcome of a campaign.

    Attributes:
        config: The campaign's parameters.
        outcomes: Every case's scene outcome, in order.
        successes: Cases whose evidence was admitted.
        suppressed: Cases whose evidence was excluded.
    """

    config: CampaignConfig
    outcomes: tuple[SceneOutcome, ...]
    successes: int
    suppressed: int

    @property
    def success_rate(self) -> float:
        """Fraction of cases ending with admissible evidence."""
        return self.successes / len(self.outcomes) if self.outcomes else 0.0

    def success_rate_for(self, needs_process: bool) -> float:
        """Success rate restricted to scenes (not) needing process."""
        relevant = [
            outcome
            for outcome in self.outcomes
            if outcome.ruling.needs_process == needs_process
        ]
        if not relevant:
            return 0.0
        return sum(not o.suppressed for o in relevant) / len(relevant)


def draw_cases(
    config: CampaignConfig, scenarios: tuple[Scenario, ...]
) -> list[tuple[Scenario, bool]]:
    """Materialize every case's ``(scenario, complies)`` draw up front.

    The draws consume the campaign RNG in exactly the order the original
    serial loop did — ``choice`` then ``random`` per case — so a given
    seed produces the same case sequence whether the cases then run
    serially or across a worker pool.
    """
    rng = random.Random(config.seed)
    draws = []
    for __ in range(config.n_cases):
        scenario = rng.choice(scenarios)
        complies = rng.random() < config.comply_probability
        draws.append((scenario, complies))
    return draws


def case_signature(outcome: SceneOutcome) -> tuple:
    """A canonical, order-stable digest of one case's outcome.

    Evidence items carry process-global serial ids
    (:mod:`repro.evidence.items` counts acquisitions per *process*), so
    outcomes produced in pool workers differ from serial ones in those
    ids while agreeing in everything the paper's thesis depends on.  The
    signature captures that legally meaningful content — scene, ruling,
    process, suppression, custody/interruption shape — and is what the
    parallel-equivalence tests and ``repro bench --techniques`` compare.
    """
    evidence = outcome.evidence
    return (
        outcome.scenario.number,
        outcome.ruling.needs_process,
        outcome.ruling.required_process.name,
        outcome.process_obtained.name,
        evidence.process_held.name if evidence is not None else None,
        outcome.suppressed,
        outcome.admissibility.name,
        tuple(outcome.interruptions),
        outcome.application_attempts,
        (
            tuple(entry.event for entry in outcome.custody.entries)
            if outcome.custody is not None
            else None
        ),
    )


#: Per-worker-process pipeline with a cached engine, built lazily on the
#: first case a worker executes and reused for every later case — the
#: same warm-cache behaviour the serial loop gets from its one pipeline.
_WORKER_PIPELINE: InvestigationPipeline | None = None


def _case_worker(task: tuple[Scenario, bool]) -> SceneOutcome:
    """Run one pre-drawn case inside a pool worker.

    Cases are draw-isolated — the parent materialized every
    ``(scenario, complies)`` pair before the fan-out — so workers share
    nothing and the outcome sequence is independent of worker count and
    scheduling.
    """
    global _WORKER_PIPELINE
    if _WORKER_PIPELINE is None:
        _WORKER_PIPELINE = InvestigationPipeline(
            ComplianceEngine(cache=RulingCache())
        )
    scenario, complies = task
    return _WORKER_PIPELINE.run_scene(scenario, obtain_process=complies)


def _run_case(
    pipeline: InvestigationPipeline,
    index: int,
    scenario: Scenario,
    complies: bool,
) -> SceneOutcome:
    """One case under a ``campaign.case`` span (shared serial/worker)."""
    with obs.span(
        "campaign.case", case=index, scene=scenario.number, comply=complies
    ) as sp:
        outcome = pipeline.run_scene(scenario, obtain_process=complies)
        sp.set(suppressed=outcome.suppressed)
    return outcome


def _case_worker_traced(
    task: tuple[int, Scenario, bool],
) -> tuple[SceneOutcome, list[dict[str, object]]]:
    """Traced variant of :func:`_case_worker`.

    Telemetry is process-global and off in a fresh worker, so each case
    runs under a private collector whose records ship back with the
    outcome; the parent re-ingests them (in case order) with
    :meth:`~repro.obs.TraceCollector.adopt`, so the merged trace equals
    the serial one modulo span ids.
    """
    global _WORKER_PIPELINE
    if _WORKER_PIPELINE is None:
        _WORKER_PIPELINE = InvestigationPipeline(
            ComplianceEngine(cache=RulingCache())
        )
    index, scenario, complies = task
    collector = obs.enable(obs.TraceCollector())
    try:
        outcome = _run_case(_WORKER_PIPELINE, index, scenario, complies)
    finally:
        obs.disable()
    return outcome, collector.export_records()


def resolve_workers(max_workers: int | None, n_cases: int) -> int:
    """Resolve a ``max_workers`` argument to an effective worker count.

    Mirrors :func:`repro.faults.chaos.resolve_workers` (not imported to
    keep the investigation package free of a faults dependency): ``None``
    means one worker per CPU, capped at the case count; anything below 2
    means run serially in-process.
    """
    if max_workers is None:
        return min(n_cases, os.cpu_count() or 1)
    return max(1, max_workers)


def run_campaign(
    config: CampaignConfig,
    scenarios: tuple[Scenario, ...] | None = None,
    engine: ComplianceEngine | None = None,
    max_workers: int | None = 1,
) -> CampaignResult:
    """Run one campaign of randomized cases.

    Args:
        config: Campaign parameters.
        scenarios: Scene pool to draw from (defaults to Table 1).
        engine: Compliance engine to share across cases (serial path
            only; pool workers build their own cached engine).
        max_workers: Anything below 2 runs the cases serially in-process;
            ``None`` fans out across one worker per CPU (capped at the
            case count), mirroring ``repro chaos --workers``.  Outcomes
            come back in case order either way, and their
            :func:`case_signature` sequences are identical.
    """
    scenarios = scenarios or build_table1()
    draws = draw_cases(config, scenarios)
    workers = resolve_workers(max_workers, config.n_cases)

    if workers > 1:
        # Cases are ~100 microseconds each on a warm engine cache, so
        # ship them in chunks: per-case IPC would otherwise swamp the
        # fan-out.  Order is still preserved by pool.map.
        chunksize = max(1, len(draws) // (workers * 8))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if obs.OBS.enabled and obs.OBS.collector is not None:
                tasks = [
                    (index, scenario, complies)
                    for index, (scenario, complies) in enumerate(draws)
                ]
                traced = list(
                    pool.map(
                        _case_worker_traced, tasks, chunksize=chunksize
                    )
                )
                outcomes = [outcome for outcome, __ in traced]
                for __, records in traced:
                    obs.OBS.collector.adopt(records)
            else:
                outcomes = list(
                    pool.map(_case_worker, draws, chunksize=chunksize)
                )
    else:
        pipeline = InvestigationPipeline(engine)
        outcomes = [
            _run_case(pipeline, index, scenario, complies)
            for index, (scenario, complies) in enumerate(draws)
        ]
    successes = sum(not outcome.suppressed for outcome in outcomes)
    if obs.OBS.enabled:
        obs.OBS.registry.counter(
            "repro_campaign_cases_total",
            "Campaign cases executed.",
        ).inc(len(outcomes))

    return CampaignResult(
        config=config,
        outcomes=tuple(outcomes),
        successes=successes,
        suppressed=config.n_cases - successes,
    )


def compliance_curve(
    probabilities: list[float],
    n_cases: int = 100,
    seed: int = 0,
    max_workers: int | None = 1,
) -> dict[float, float]:
    """Success rate at each compliance probability (the thesis curve)."""
    return {
        p: run_campaign(
            CampaignConfig(
                n_cases=n_cases, comply_probability=p, seed=seed
            ),
            max_workers=max_workers,
        ).success_rate
        for p in probabilities
    }
