"""End-to-end investigation pipelines.

Closes the paper's loop for any scene: rule on the acquisition, optionally
obtain the required process from a magistrate, perform the acquisition,
and take the resulting evidence to a suppression hearing.  The suppression
benchmark drives this pipeline across all twenty Table 1 scenes both ways
(complying and not) and checks the 100%/0% suppression split.

The pipeline is *resilient*: with a fault injector attached (hostile
courts, expiring instruments) it re-applies under a bounded
:class:`~repro.faults.retry.RetryPolicy`, checks instrument validity at
**acquisition** time rather than issuance time, and records every
interruption in the evidence's chain of custody so the suppression
hearing rules on what actually happened.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro import obs
from repro.core.engine import ComplianceEngine
from repro.core.enums import Admissibility, ProcessKind, Standard
from repro.core.ruling import Ruling
from repro.core.scenarios import Scenario
from repro.court.application import Fact
from repro.court.docket import IssuedProcess
from repro.court.magistrate import Magistrate
from repro.court.suppression import SuppressionHearing
from repro.evidence.custody import ChainOfCustody
from repro.evidence.items import EvidenceItem
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryPolicy
from repro.investigation.case import Case
from repro.investigation.investigator import Investigator

if TYPE_CHECKING:  # annotation-only; repro.core must not import repro.ledger
    from repro.ledger import Ledger


@dataclasses.dataclass(frozen=True)
class SceneOutcome:
    """Everything that happened running one scene through the pipeline.

    Attributes:
        scenario: The Table 1 scene run.
        ruling: The engine's ruling on the scene's action.
        process_obtained: The instrument kind obtained (NONE if none was
            sought or granted).
        evidence: The evidence item the acquisition produced.
        admissibility: The suppression hearing's outcome for it.
        custody: The chain of custody taken to the hearing.
        application_attempts: Court applications made (0 when none was
            sought; more than 1 means the retry policy re-applied).
        interruptions: Human-readable fault interruptions recorded
            against this scene's evidence.
    """

    scenario: Scenario
    ruling: Ruling
    process_obtained: ProcessKind
    evidence: EvidenceItem
    admissibility: Admissibility
    custody: ChainOfCustody | None = None
    application_attempts: int = 0
    interruptions: tuple[str, ...] = ()

    @property
    def suppressed(self) -> bool:
        """Whether the evidence was excluded."""
        return self.admissibility is not Admissibility.ADMISSIBLE


class InvestigationPipeline:
    """Runs Table 1 scenes end to end, complying or not.

    One :class:`~repro.court.magistrate.Magistrate` serves the whole
    pipeline, so the docket accumulates applications and instruments
    across scenes instead of being re-allocated per scene.

    Args:
        engine: The compliance engine ruling on acquisitions.
        magistrate: The issuing court (given the pipeline's injector if
            it has none of its own, so court faults reach it).
        injector: Optional fault injector; scene runs then experience
            court denial/latency and instrument expiry, and the custody
            log of affected evidence records the interruption.
        retry_policy: Backoff schedule for re-applying after a denial or
            an expiry; defaults to three attempts, 15 simulated minutes
            base delay.
        acquisition_lag: Simulated seconds between obtaining process and
            executing the acquisition (warrants are not executed the
            second they issue); this is the window an injected
            short-validity instrument expires in.
        ledger: Optional :class:`repro.ledger.Ledger`; every scene then
            persists its issued instrument, chain of custody, and
            suppression outcome at the same boundaries telemetry spans
            them, and the docket's counters are upserted per scene.
        run_label: Namespace prefix for the ledger keys this pipeline
            writes (lets several runs share one ledger file without
            colliding); defaults to ``"pipeline"``.
    """

    def __init__(
        self,
        engine: ComplianceEngine | None = None,
        magistrate: Magistrate | None = None,
        injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        acquisition_lag: float = 0.0,
        ledger: "Ledger | None" = None,
        run_label: str = "pipeline",
    ) -> None:
        if acquisition_lag < 0:
            raise ValueError(f"negative acquisition_lag: {acquisition_lag}")
        self.engine = engine or ComplianceEngine()
        self.ledger = ledger
        self.run_label = run_label
        self.injector = injector
        if magistrate is None:
            magistrate = Magistrate(injector=injector)
        self.magistrate = magistrate
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay=900.0
        )
        self.acquisition_lag = acquisition_lag
        self.hearing = SuppressionHearing(self.engine)

    def run_scene(
        self,
        scenario: Scenario,
        obtain_process: bool,
        time: float = 0.0,
    ) -> SceneOutcome:
        """Run one scene.

        Args:
            scenario: The scene to run.
            obtain_process: If ``True``, the investigator first applies
                for (and, with probable cause on file, receives) whatever
                process the engine says the scene needs; if ``False`` the
                officer barges ahead with nothing.
            time: Simulation time the scene starts.

        Returns:
            The complete :class:`SceneOutcome`.
        """
        if not obs.OBS.enabled:
            return self._run_scene_impl(scenario, obtain_process, time)
        with obs.span(
            "pipeline.scene",
            sim_time=time,
            scene=scenario.number,
            comply=obtain_process,
        ) as sp:
            outcome = self._run_scene_impl(scenario, obtain_process, time)
            sp.set(
                process=outcome.process_obtained.name,
                admissibility=outcome.admissibility.name,
            )
        return outcome

    def _run_scene_impl(
        self,
        scenario: Scenario,
        obtain_process: bool,
        time: float,
    ) -> SceneOutcome:
        """The scene body; spans inside it no-op when telemetry is off."""
        ruling = self.engine.evaluate(scenario.action)
        investigator = Investigator(
            f"officer-scene-{scenario.number}",
            magistrate=self.magistrate,
            engine=self.engine,
        )

        obtained = ProcessKind.NONE
        attempts = 0
        acquire_time = time
        instrument: IssuedProcess | None = None
        interruptions: list[str] = []
        if obtain_process and ruling.required_process is not ProcessKind.NONE:
            case = self._case_with_full_showing(scenario)
            with obs.span(
                "pipeline.obtain_process",
                sim_time=time,
                scene=scenario.number,
                required=ruling.required_process.name,
            ) as sp:
                obtained, attempts, acquire_time, instrument = (
                    self._obtain_process(
                        investigator, ruling, case, scenario, time,
                        interruptions,
                    )
                )
                sp.set(obtained=obtained.name, attempts=attempts)

        # The audit frame correlates everything recorded during the
        # acquisition with the legal process (if any) authorizing it.
        with obs.audit(
            docket_id=self.magistrate.docket.docket_id,
            instrument_id=(
                instrument.instrument_id if instrument is not None else None
            ),
            instrument_kind=(
                instrument.kind.display_name if instrument is not None else None
            ),
        ):
            with obs.span(
                "pipeline.acquisition",
                sim_time=acquire_time,
                scene=scenario.number,
                needs_process=ruling.needs_process,
            ) as sp:
                evidence = investigator.act(
                    scenario.action,
                    time=acquire_time,
                    content=f"data acquired in scene {scenario.number}",
                    comply=False,  # the hearing, not the officer, is the check
                )
                custody = ChainOfCustody(
                    evidence, custodian=investigator.name, time=acquire_time
                )
                for interruption in interruptions:
                    custody.record_event(
                        f"acquisition interrupted: {interruption}",
                        time=acquire_time,
                    )
                sp.set(evidence_id=evidence.evidence_id)
        with obs.span(
            "pipeline.suppression",
            sim_time=acquire_time,
            scene=scenario.number,
            evidence_id=evidence.evidence_id,
        ) as sp:
            outcome = self.hearing.hear(
                [evidence], custody={evidence.evidence_id: custody}
            )
            sp.set(admissibility=outcome.outcome_for(evidence).name)
        scene_outcome = SceneOutcome(
            scenario=scenario,
            ruling=ruling,
            process_obtained=obtained,
            evidence=evidence,
            admissibility=outcome.outcome_for(evidence),
            custody=custody,
            application_attempts=attempts,
            interruptions=tuple(interruptions),
        )
        if self.ledger is not None:
            self._persist_scene(scene_outcome, obtain_process, instrument)
        return scene_outcome

    def _persist_scene(
        self,
        outcome: SceneOutcome,
        obtain_process: bool,
        instrument: IssuedProcess | None,
    ) -> None:
        """Write one scene's records to the attached ledger.

        Runs at the same boundary the suppression span closes, so what
        is persisted is exactly what the hearing ruled on.  Keys are
        deterministic (`run_label`/scene/mode), making re-runs of the
        same configuration idempotent upserts.
        """
        ledger = self.ledger
        assert ledger is not None
        mode = "comply" if obtain_process else "no-process"
        scene_key = (
            f"{self.run_label}/scene-{outcome.scenario.number}/{mode}"
        )
        fingerprint = outcome.scenario.action.fingerprint()
        ledger.record_ruling(fingerprint, outcome.ruling)
        docket = self.magistrate.docket
        docket_key = f"{self.run_label}/docket-{docket.docket_id}"
        ledger.record_docket(docket_key, docket)
        if instrument is not None:
            ledger.record_instrument(
                f"{scene_key}/instrument", instrument, docket_key=docket_key
            )
        if outcome.custody is not None:
            ledger.record_custody(f"{scene_key}/custody", outcome.custody)
        ledger.record_suppression(
            evidence_key=f"{scene_key}/evidence",
            fingerprint=fingerprint,
            outcome=outcome.admissibility.value,
            reason="; ".join(outcome.interruptions),
            run_label=self.run_label,
        )
        if obs.OBS.enabled:
            obs.OBS.registry.counter(
                "repro_ledger_scene_writes_total",
                "Scene outcomes persisted to a ledger by the pipeline.",
            ).inc()

    def _obtain_process(
        self,
        investigator: Investigator,
        ruling: Ruling,
        case: Case,
        scenario: Scenario,
        time: float,
        interruptions: list[str],
    ) -> tuple[ProcessKind, int, float, IssuedProcess | None]:
        """Apply (with retries) and schedule the acquisition.

        Returns ``(kind obtained, application attempts, acquisition
        time, instrument relied on)``; the instrument is ``None``
        whenever no valid process was held at acquisition time.
        The instrument's validity is checked at the
        *acquisition* time — an instrument that expired or was revoked in
        the lag between issuance and execution does not authorize the
        acquisition, and the officer re-applies once more under the retry
        policy before proceeding (lawfully or not).
        """
        decision, attempts, decide_time = investigator.apply_with_retry(
            ruling.required_process,
            case,
            time,
            self.retry_policy,
            target_place=f"scene {scenario.number} target",
            target_items=("records described in the application",),
            necessity_statement=(
                "conventional techniques cannot reach the anonymized "
                "or encrypted traffic at issue (stipulated)"
            ),
        )
        if not decision.granted or decision.instrument is None:
            interruptions.append(
                f"process application denied after {attempts} attempt(s): "
                f"{decision.reason}"
            )
            return ProcessKind.NONE, attempts, decide_time, None

        instrument = decision.instrument
        acquire_time = instrument.issued_at + self.acquisition_lag
        if instrument.is_valid(acquire_time):
            return instrument.kind, attempts, acquire_time, instrument

        # Expired (or revoked) before execution: record it, re-apply once
        # more through the policy, and execute with whatever is then held.
        # Interruption text names the instrument by kind, not by its
        # process-global id, so identical seeds yield identical outcomes.
        interruptions.append(
            f"instrument ({instrument.kind.display_name}) no longer "
            f"valid at acquisition time t={acquire_time}"
        )
        redecision, more, redecide_time = investigator.apply_with_retry(
            ruling.required_process,
            case,
            acquire_time,
            self.retry_policy,
            target_place=f"scene {scenario.number} target",
            target_items=("records described in the application",),
            necessity_statement=(
                "conventional techniques cannot reach the anonymized "
                "or encrypted traffic at issue (stipulated)"
            ),
        )
        attempts += more
        if redecision.granted and redecision.instrument is not None:
            fresh = redecision.instrument
            acquire_time = fresh.issued_at + self.acquisition_lag
            if fresh.is_valid(acquire_time):
                return fresh.kind, attempts, acquire_time, fresh
            interruptions.append(
                f"re-issued instrument ({fresh.kind.display_name}) also "
                f"expired before acquisition at t={acquire_time}"
            )
            return ProcessKind.NONE, attempts, acquire_time, None
        interruptions.append(
            f"re-application denied after {more} attempt(s): "
            f"{redecision.reason}"
        )
        return ProcessKind.NONE, attempts, redecide_time, None

    @staticmethod
    def _case_with_full_showing(scenario: Scenario) -> Case:
        """A case whose facts support any process up to a Title III order."""
        case = Case(
            name=f"scene-{scenario.number}",
            description=scenario.action.description,
        )
        case.add_fact(
            Fact(
                description=(
                    "wiretap-grade showing: probable cause plus necessity "
                    "(stipulated for the pipeline experiment)"
                ),
                supports=Standard.SUPER_WARRANT_SHOWING,
            )
        )
        return case

    def run_all(
        self, scenarios: tuple[Scenario, ...], obtain_process: bool
    ) -> list[SceneOutcome]:
        """Run every scene one way and return the outcomes."""
        return [
            self.run_scene(scenario, obtain_process=obtain_process)
            for scenario in scenarios
        ]


def suppression_split(
    outcomes: list[SceneOutcome],
) -> tuple[float, float]:
    """Suppression rates for (process-requiring, no-process) scenes.

    The paper's implied result: without process, every scene that needs
    process is suppressed (rate 1.0) and every scene that needs none is
    admitted (rate 0.0).
    """
    need = [o for o in outcomes if o.ruling.needs_process]
    no_need = [o for o in outcomes if not o.ruling.needs_process]
    need_rate = (
        sum(o.suppressed for o in need) / len(need) if need else 0.0
    )
    no_need_rate = (
        sum(o.suppressed for o in no_need) / len(no_need)
        if no_need
        else 0.0
    )
    return need_rate, no_need_rate
