"""End-to-end investigation pipelines.

Closes the paper's loop for any scene: rule on the acquisition, optionally
obtain the required process from a magistrate, perform the acquisition,
and take the resulting evidence to a suppression hearing.  The suppression
benchmark drives this pipeline across all twenty Table 1 scenes both ways
(complying and not) and checks the 100%/0% suppression split.
"""

from __future__ import annotations

import dataclasses

from repro.core.engine import ComplianceEngine
from repro.core.enums import Admissibility, ProcessKind, Standard
from repro.core.ruling import Ruling
from repro.core.scenarios import Scenario
from repro.court.application import Fact
from repro.court.magistrate import Magistrate
from repro.court.suppression import SuppressionHearing
from repro.evidence.items import EvidenceItem
from repro.investigation.case import Case
from repro.investigation.investigator import Investigator


@dataclasses.dataclass(frozen=True)
class SceneOutcome:
    """Everything that happened running one scene through the pipeline.

    Attributes:
        scenario: The Table 1 scene run.
        ruling: The engine's ruling on the scene's action.
        process_obtained: The instrument kind obtained (NONE if none was
            sought or granted).
        evidence: The evidence item the acquisition produced.
        admissibility: The suppression hearing's outcome for it.
    """

    scenario: Scenario
    ruling: Ruling
    process_obtained: ProcessKind
    evidence: EvidenceItem
    admissibility: Admissibility

    @property
    def suppressed(self) -> bool:
        """Whether the evidence was excluded."""
        return self.admissibility is not Admissibility.ADMISSIBLE


class InvestigationPipeline:
    """Runs Table 1 scenes end to end, complying or not.

    One :class:`~repro.court.magistrate.Magistrate` serves the whole
    pipeline, so the docket accumulates applications and instruments
    across scenes instead of being re-allocated per scene.
    """

    def __init__(
        self,
        engine: ComplianceEngine | None = None,
        magistrate: Magistrate | None = None,
    ) -> None:
        self.engine = engine or ComplianceEngine()
        self.magistrate = magistrate or Magistrate()
        self.hearing = SuppressionHearing(self.engine)

    def run_scene(
        self,
        scenario: Scenario,
        obtain_process: bool,
        time: float = 0.0,
    ) -> SceneOutcome:
        """Run one scene.

        Args:
            scenario: The scene to run.
            obtain_process: If ``True``, the investigator first applies
                for (and, with probable cause on file, receives) whatever
                process the engine says the scene needs; if ``False`` the
                officer barges ahead with nothing.
            time: Simulation time of the acquisition.

        Returns:
            The complete :class:`SceneOutcome`.
        """
        ruling = self.engine.evaluate(scenario.action)
        investigator = Investigator(
            f"officer-scene-{scenario.number}",
            magistrate=self.magistrate,
            engine=self.engine,
        )

        obtained = ProcessKind.NONE
        if obtain_process and ruling.required_process is not ProcessKind.NONE:
            case = self._case_with_full_showing(scenario)
            decision = investigator.apply_for(
                ruling.required_process,
                case,
                time=time,
                target_place=f"scene {scenario.number} target",
                target_items=("records described in the application",),
                necessity_statement=(
                    "conventional techniques cannot reach the anonymized "
                    "or encrypted traffic at issue (stipulated)"
                ),
            )
            if decision.granted and decision.instrument is not None:
                obtained = decision.instrument.kind

        evidence = investigator.act(
            scenario.action,
            time=time,
            content=f"data acquired in scene {scenario.number}",
            comply=False,  # the hearing, not the officer, is the check here
        )
        outcome = self.hearing.hear([evidence])
        return SceneOutcome(
            scenario=scenario,
            ruling=ruling,
            process_obtained=obtained,
            evidence=evidence,
            admissibility=outcome.outcome_for(evidence),
        )

    @staticmethod
    def _case_with_full_showing(scenario: Scenario) -> Case:
        """A case whose facts support any process up to a Title III order."""
        case = Case(
            name=f"scene-{scenario.number}",
            description=scenario.action.description,
        )
        case.add_fact(
            Fact(
                description=(
                    "wiretap-grade showing: probable cause plus necessity "
                    "(stipulated for the pipeline experiment)"
                ),
                supports=Standard.SUPER_WARRANT_SHOWING,
            )
        )
        return case

    def run_all(
        self, scenarios: tuple[Scenario, ...], obtain_process: bool
    ) -> list[SceneOutcome]:
        """Run every scene one way and return the outcomes."""
        return [
            self.run_scene(scenario, obtain_process=obtain_process)
            for scenario in scenarios
        ]


def suppression_split(
    outcomes: list[SceneOutcome],
) -> tuple[float, float]:
    """Suppression rates for (process-requiring, no-process) scenes.

    The paper's implied result: without process, every scene that needs
    process is suppressed (rate 1.0) and every scene that needs none is
    admitted (rate 0.0).
    """
    need = [o for o in outcomes if o.ruling.needs_process]
    no_need = [o for o in outcomes if not o.ruling.needs_process]
    need_rate = (
        sum(o.suppressed for o in need) / len(need) if need else 0.0
    )
    no_need_rate = (
        sum(o.suppressed for o in no_need) / len(no_need)
        if no_need
        else 0.0
    )
    return need_rate, no_need_rate
