"""Tabular reports: regenerate the paper's Table 1 and experiment summaries."""

from __future__ import annotations

from repro.core.advisor import TechniqueAssessment
from repro.core.engine import ComplianceEngine
from repro.core.scenarios import Scenario
from repro.investigation.pipeline import SceneOutcome


def format_table1(
    scenarios: tuple[Scenario, ...],
    engine: ComplianceEngine | None = None,
    max_description: int = 58,
) -> str:
    """Render the paper's Table 1 with the engine's answers alongside.

    Returns:
        A fixed-width table: scene number, truncated description, the
        paper's published answer, the engine's answer, and a match mark.
    """
    engine = engine or ComplianceEngine()
    lines = [
        f"{'#':>2}  {'Scene':<{max_description}}  "
        f"{'Paper':<12} {'Engine':<28} Match",
        "-" * (max_description + 52),
    ]
    matches = 0
    for scenario in scenarios:
        ruling = engine.evaluate(scenario.action)
        engine_answer = (
            "Need" if ruling.needs_process else "No need"
        ) + f" ({ruling.required_process.display_name})"
        match = ruling.needs_process == scenario.paper_needs_process
        matches += match
        description = scenario.action.description
        if len(description) > max_description:
            description = description[: max_description - 3] + "..."
        lines.append(
            f"{scenario.number:>2}  {description:<{max_description}}  "
            f"{scenario.paper_answer:<12} {engine_answer:<28} "
            f"{'yes' if match else 'NO'}"
        )
    lines.append("-" * (max_description + 52))
    lines.append(f"agreement: {matches}/{len(scenarios)}")
    return "\n".join(lines)


def format_assessment(assessment: TechniqueAssessment) -> str:
    """Render a research-advisor verdict (paper section IV style)."""
    lines = [
        f"Technique: {assessment.name}",
        f"  Feasibility: {assessment.feasibility.value}",
        f"  Required process: {assessment.required_process.display_name}",
        f"  Private search viable: "
        f"{'yes' if assessment.private_search_viable else 'no'}",
        f"  Recommendation: {assessment.recommendation}",
    ]
    return "\n".join(lines)


def format_quick_reference(
    scenarios: tuple[Scenario, ...],
    engine: ComplianceEngine | None = None,
) -> str:
    """The paper's closing 'quick reference', enriched.

    For every scene: the answer, the process level, the exceptions that
    applied, and the citation keys behind the ruling — everything a
    researcher needs to check their own technique against the table.
    """
    engine = engine or ComplianceEngine()
    blocks = []
    for scenario in scenarios:
        ruling = engine.evaluate(scenario.action)
        answer = (
            "no process needed"
            if not ruling.needs_process
            else f"requires {ruling.required_process.display_name}"
        )
        lines = [
            f"Scene {scenario.number}: {scenario.action.description}",
            f"  paper: {scenario.paper_answer}; engine: {answer}",
        ]
        if ruling.exceptions:
            names = ", ".join(e.kind.value for e in ruling.exceptions)
            lines.append(f"  exceptions applied: {names}")
        cited = sorted(
            {key for step in ruling.steps for key in step.authorities}
        )
        lines.append(f"  authorities: {', '.join(cited)}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def format_suppression_outcomes(outcomes: list[SceneOutcome]) -> str:
    """Render per-scene suppression results."""
    lines = [
        f"{'#':>2}  {'Needs process':<14} {'Obtained':<28} Outcome",
        "-" * 70,
    ]
    for outcome in outcomes:
        lines.append(
            f"{outcome.scenario.number:>2}  "
            f"{'yes' if outcome.ruling.needs_process else 'no':<14} "
            f"{outcome.process_obtained.display_name:<28} "
            f"{outcome.admissibility.value}"
        )
    return "\n".join(lines)
