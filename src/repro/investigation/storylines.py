"""Complete investigation storylines from the paper, runnable end to end.

Three narratives the paper walks through in prose, each implemented
against the real substrates:

* :func:`ip_traceback_storyline` — section III.A.1(a): victim reports an
  attacking IP, a subpoena turns it into a subscriber identity, the
  identity supports probable cause, a warrant issues, the seized drive is
  imaged and hash-searched, and a suppression hearing closes the loop
  (with the *Crist* error available as the non-compliant branch);
* :func:`watermark_situation_one` — section IV.B situation one: law
  enforcement controls a seized server, obtains a pen/trap court order,
  watermarks the server's flow to the suspect through an anonymity
  network, and identifies the subscriber from rate observations;
* :func:`watermark_situation_two` — section IV.B situation two: two
  campus administrators run the same watermark privately between their
  own gateways and hand law enforcement a report that supports a court
  order.
"""

from __future__ import annotations

import dataclasses

from repro.anonymity.onion import OnionNetwork
from repro.core.advisor import ResearchAdvisor
from repro.core.engine import ComplianceEngine
from repro.core.enums import Actor, ProcessKind, Standard
from repro.court.application import Fact
from repro.court.suppression import SuppressionHearing, SuppressionOutcome
from repro.evidence.custody import ChainOfCustody
from repro.evidence.items import EvidenceItem, derive
from repro.investigation.case import Case, articulable_facts, ip_address_fact
from repro.investigation.investigator import Investigator
from repro.netsim.engine import Simulator
from repro.storage.blockdev import BlockDevice, image_device
from repro.storage.filesystem import SimpleFilesystem
from repro.storage.hashing import KnownFileSet
from repro.techniques.hash_search import HashSearchTechnique
from repro.techniques.traffic import PoissonFlow
from repro.techniques.watermark import DsssWatermarkTechnique


@dataclasses.dataclass(frozen=True)
class StorylineReport:
    """Outcome of one storyline run.

    Attributes:
        title: Which storyline ran.
        steps: Narrated steps, in order.
        evidence: Every evidence item produced.
        suppression: The closing hearing's outcome (``None`` if the
            storyline ends before court).
        succeeded: Whether the investigation achieved its goal *with
            admissible evidence*.
    """

    title: str
    steps: tuple[str, ...]
    evidence: tuple[EvidenceItem, ...]
    suppression: SuppressionOutcome | None
    succeeded: bool


def ip_traceback_storyline(
    comply: bool = True, engine: ComplianceEngine | None = None
) -> StorylineReport:
    """Section III.A.1(a): IP -> subpoena -> warrant -> hash search.

    Args:
        comply: ``True`` runs by the book; ``False`` skips the warrant
            before the hash search (the *Crist* error) so the hits and
            their fruits are suppressed.
    """
    engine = engine or ComplianceEngine()
    steps: list[str] = []
    officer = Investigator("det. okafor", engine=engine)
    case = Case("op-driftnet", "intrusion into the victim's server")

    case.add_fact(ip_address_fact("10.0.3.77", "intrusion"))
    steps.append("victim reports attacking IP 10.0.3.77")

    assert officer.apply_for(ProcessKind.SUBPOENA, case, time=1.0).granted
    from repro.core.action import InvestigativeAction
    from repro.core.context import EnvironmentContext
    from repro.core.enums import DataKind, Place, Timing

    identity = officer.act(
        InvestigativeAction(
            description="compel subscriber identity behind 10.0.3.77",
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.SUBSCRIBER_INFO,
            timing=Timing.STORED,
            context=EnvironmentContext(place=Place.THIRD_PARTY_PROVIDER),
        ),
        time=2.0,
        content="subscriber: R. Mallory, 5 Elm St",
    )
    steps.append("subpoena to the ISP identifies R. Mallory")
    case.add_suspect("R. Mallory")

    if comply:
        decision = officer.apply_for(
            ProcessKind.SEARCH_WARRANT,
            case,
            time=3.0,
            target_place="5 Elm St, Mallory residence",
            target_items=("computers", "storage media"),
        )
        assert decision.granted
        steps.append("search warrant issued on probable cause")
    else:
        steps.append("officer skips the warrant (the Crist error)")

    fs = SimpleFilesystem(BlockDevice(n_blocks=256, block_size=64))
    fs.write_file("thesis.txt", "chapter one")
    fs.write_file("cp-0042.jpg", "JPEG[contraband 42]GEPJ")
    fs.write_file("cp-0043.jpg", "JPEG[contraband 43]GEPJ")
    fs.delete_file("cp-0043.jpg")
    known = KnownFileSet.from_contents(
        ["JPEG[contraband 42]GEPJ", "JPEG[contraband 43]GEPJ"]
    )
    image = image_device(fs.device)
    assert image.sha256() == fs.device.sha256()
    steps.append("seized drive imaged; image hash verified")

    technique = HashSearchTechnique(known)
    report = technique.run(fs)
    hits = officer.act(
        technique.required_actions()[0],
        time=4.0,
        content="; ".join(h.file_name for h in report.hits),
        description="contraband hash hits",
        comply=False,
        derived_from=(identity.evidence_id,),
    )
    steps.append(
        f"hash search: {report.hit_count} hits across "
        f"{report.files_examined} files"
    )
    analysis = derive(
        hits, "forensic analysis report", "timeline + EXIF", hits.action
    )
    officer.evidence.append(analysis)

    chain = ChainOfCustody(hits, custodian=officer.name, time=4.0)
    chain.transfer("evidence locker", time=5.0)

    outcome = SuppressionHearing(engine).hear(
        officer.evidence, custody={hits.evidence_id: chain}
    )
    steps.append(
        f"suppression hearing: {len(outcome.admitted)} admitted, "
        f"{len(outcome.suppressed)} suppressed"
    )
    succeeded = any(
        item is hits for item in outcome.admitted
    )
    return StorylineReport(
        title="IP traceback (III.A.1(a))",
        steps=tuple(steps),
        evidence=tuple(officer.evidence),
        suppression=outcome,
        succeeded=succeeded,
    )


def watermark_situation_one(
    n_candidates: int = 6,
    seed: int = 17,
    engine: ComplianceEngine | None = None,
) -> StorylineReport:
    """Section IV.B situation one: the court-ordered watermark traceback."""
    engine = engine or ComplianceEngine()
    steps: list[str] = []
    officer = Investigator("agent bea", engine=engine)
    case = Case(
        "op-lighthouse",
        "identify the anonymous downloader of a seized server's contraband",
    )
    case.add_fact(
        articulable_facts(
            "server logs show an anonymized client fetching contraband "
            "hourly"
        )
    )
    decision = officer.apply_for(ProcessKind.COURT_ORDER, case, time=0.5)
    assert decision.granted
    steps.append("pen/trap court order issued on specific articulable facts")

    technique = DsssWatermarkTechnique()
    assessment = technique.assess(ResearchAdvisor(engine))
    assert assessment.required_process is ProcessKind.COURT_ORDER
    steps.append(
        f"advisor confirms the technique needs a "
        f"{assessment.required_process.display_name}"
    )

    sim = Simulator()
    network = OnionNetwork(sim, n_relays=20, seed=seed)
    circuits = [
        network.build_circuit(f"subscriber-{i}", "seized-server")
        for i in range(n_candidates)
    ]
    watermarker = technique.watermarker(seed=seed + 1)
    watermarker.embed(circuits[0], start=1.0)
    for index, circuit in enumerate(circuits[1:], 1):
        PoissonFlow(
            rate=technique.config.base_rate, seed=seed + 10 + index
        ).schedule(circuit, start=1.0, duration=watermarker.duration)
    sim.run()
    detector = technique.detector()
    results = [
        detector.detect(c.client_arrival_times(), start=1.0, max_offset=0.8)
        for c in circuits
    ]
    identified = [i for i, r in enumerate(results) if r.detected]
    steps.append(
        f"watermark despread at {n_candidates} candidate ISPs; "
        f"identified subscriber(s): {identified}"
    )

    observe_action = technique.required_actions()[1]
    evidence = officer.act(
        observe_action,
        time=float(sim.now),
        content=f"subscriber-0 carries the watermark "
        f"(corr={results[0].correlation:.3f})",
        description="watermark rate observations at the suspect's ISP",
    )
    outcome = SuppressionHearing(engine).hear([evidence])
    steps.append(
        f"suppression hearing: evidence "
        f"{'admitted' if not outcome.suppressed else 'suppressed'}"
    )
    return StorylineReport(
        title="DSSS watermark, situation one (IV.B)",
        steps=tuple(steps),
        evidence=(evidence,),
        suppression=outcome,
        succeeded=identified == [0] and not outcome.suppressed,
    )


def watermark_situation_two(
    seed: int = 23, engine: ComplianceEngine | None = None
) -> StorylineReport:
    """Section IV.B situation two: the private-search route.

    Two campus IT administrators suspect covert anonymized traffic
    between their campuses, run the watermark between their own gateways
    (a private search needing no process), and report to law enforcement;
    the report supports a court order.
    """
    engine = engine or ComplianceEngine()
    steps: list[str] = []

    technique = DsssWatermarkTechnique()
    assessment = technique.assess(ResearchAdvisor(engine))
    assert assessment.private_search_viable
    steps.append("advisor: workable as a private search on own gateways")

    sim = Simulator()
    network = OnionNetwork(sim, n_relays=12, seed=seed)
    suspect_flow = network.build_circuit("campus-b-host", "campus-a-host")
    decoy_flow = network.build_circuit("campus-b-other", "elsewhere")
    watermarker = technique.watermarker(seed=seed + 1)
    watermarker.embed(suspect_flow, start=0.5)
    PoissonFlow(rate=technique.config.base_rate, seed=seed + 2).schedule(
        decoy_flow, start=0.5, duration=watermarker.duration
    )
    sim.run()
    detector = technique.detector()
    hit = detector.detect(
        suspect_flow.client_arrival_times(), start=0.5, max_offset=0.8
    )
    miss = detector.detect(
        decoy_flow.client_arrival_times(), start=0.5, max_offset=0.8
    )
    steps.append(
        f"admins correlate gateways: suspect flow corr="
        f"{hit.correlation:.3f} (detected={hit.detected}), unrelated "
        f"flow corr={miss.correlation:.3f}"
    )

    # The private report becomes the officer's showing.
    officer = Investigator("det. cho", engine=engine)
    case = Case("op-relay", "anonymized covert channel between campuses")
    case.add_fact(
        Fact(
            description=(
                "campus administrators' private watermark report ties "
                "campus-b host to campus-a host"
            ),
            supports=Standard.SPECIFIC_AND_ARTICULABLE_FACTS,
        )
    )
    decision = officer.apply_for(ProcessKind.COURT_ORDER, case, time=1.0)
    steps.append(
        f"LE uses the private report to obtain a court order: "
        f"{'granted' if decision.granted else 'denied'}"
    )
    return StorylineReport(
        title="DSSS watermark, situation two (IV.B)",
        steps=tuple(steps),
        evidence=(),
        suppression=None,
        succeeded=hit.detected and not miss.detected and decision.granted,
    )
