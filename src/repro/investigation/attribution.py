"""Attribution and intent analysis (paper section III.A.2).

The paper's three requirements for a good search technique:

  (i) "prove the action of a particular individual to put contraband on
      the hard drive rather than allowing for the possibility that
      someone else with access to the computer did so";
 (ii) "confirm that a virus or other piece of malware was not responsible
      for the crime";
(iii) "show that a defendant had knowledge of the particular subject" —
      e.g. browsing history and cookies revealing research into the
      crime.

This module implements that analysis over machine artifacts: user
accounts, login records, browsing history, malware scans, and the
contraband file's metadata.  The output grades the attribution and can be
converted into a court :class:`~repro.court.application.Fact` at the
strength the analysis supports.
"""

from __future__ import annotations

import dataclasses

from repro.core.enums import Standard
from repro.court.application import Fact


@dataclasses.dataclass(frozen=True)
class UserAccount:
    """One account on the examined machine."""

    username: str
    password_protected: bool


@dataclasses.dataclass(frozen=True)
class LoginRecord:
    """One login session on the machine."""

    username: str
    login_at: float
    logout_at: float

    def active_at(self, time: float) -> bool:
        """Whether the session covered an instant."""
        return self.login_at <= time <= self.logout_at


@dataclasses.dataclass(frozen=True)
class BrowsingRecord:
    """One browsing-history entry (URL or search query)."""

    username: str
    timestamp: float
    entry: str


@dataclasses.dataclass(frozen=True)
class MalwareScanResult:
    """Outcome of the forensic malware scan."""

    clean: bool
    findings: tuple[str, ...] = ()


@dataclasses.dataclass(frozen=True)
class MachineProfile:
    """Everything the examiner extracted about the machine's use."""

    accounts: tuple[UserAccount, ...]
    logins: tuple[LoginRecord, ...]
    browsing: tuple[BrowsingRecord, ...]
    malware_scan: MalwareScanResult


@dataclasses.dataclass(frozen=True)
class AttributionReport:
    """The three-prong analysis outcome.

    Attributes:
        attributed_user: The individual the artifact is attributed to, if
            attribution succeeded.
        exclusive_attribution: Only that user was logged in when the
            artifact appeared, and the account is password-protected.
        malware_ruled_out: The scan was clean.
        knowledge_shown: The attributed user's browsing shows research
            into the crime's subject.
        knowledge_entries: The history entries supporting knowledge.
        supports: The evidentiary standard the full picture supports.
    """

    attributed_user: str | None
    exclusive_attribution: bool
    malware_ruled_out: bool
    knowledge_shown: bool
    knowledge_entries: tuple[str, ...]
    supports: Standard

    def to_fact(self, artifact: str, observed_at: float = 0.0) -> Fact:
        """Package the analysis as a court fact at its supported strength."""
        if self.attributed_user is None:
            description = (
                f"examination of {artifact} could not attribute the "
                f"artifact to an individual"
            )
        else:
            prongs = []
            if self.exclusive_attribution:
                prongs.append("exclusive account access")
            if self.malware_ruled_out:
                prongs.append("malware ruled out")
            if self.knowledge_shown:
                prongs.append("subject-matter research in history")
            description = (
                f"{artifact} attributed to {self.attributed_user} "
                f"({'; '.join(prongs) if prongs else 'weak attribution'})"
            )
        return Fact(
            description=description,
            supports=self.supports,
            observed_at=observed_at,
        )


class AttributionAnalyzer:
    """Runs the section III.A.2 analysis for one artifact.

    Args:
        crime_keywords: Terms whose presence in the attributed user's
            browsing history shows knowledge of the subject (the paper's
            methamphetamine-laboratory example).
    """

    def __init__(self, crime_keywords: list[str]) -> None:
        if not crime_keywords:
            raise ValueError("at least one crime keyword is required")
        self.crime_keywords = [kw.lower() for kw in crime_keywords]

    def analyze(
        self, profile: MachineProfile, artifact_created_at: float
    ) -> AttributionReport:
        """Attribute one artifact created at a known time.

        Returns:
            The three-prong report; ``supports`` is graded:
            all three prongs -> probable cause, attribution plus one
            other prong -> specific and articulable facts, bare
            attribution -> mere suspicion, none -> nothing.
        """
        active = [
            record
            for record in profile.logins
            if record.active_at(artifact_created_at)
        ]
        active_users = {record.username for record in active}

        attributed: str | None = None
        exclusive = False
        if len(active_users) == 1:
            attributed = next(iter(active_users))
            account = next(
                (
                    acct
                    for acct in profile.accounts
                    if acct.username == attributed
                ),
                None,
            )
            exclusive = account is not None and account.password_protected

        malware_ruled_out = profile.malware_scan.clean

        knowledge_entries: tuple[str, ...] = ()
        if attributed is not None:
            knowledge_entries = tuple(
                record.entry
                for record in profile.browsing
                if record.username == attributed
                and any(
                    keyword in record.entry.lower()
                    for keyword in self.crime_keywords
                )
            )
        knowledge_shown = bool(knowledge_entries)

        supports = self._grade(
            attributed, exclusive, malware_ruled_out, knowledge_shown
        )
        return AttributionReport(
            attributed_user=attributed,
            exclusive_attribution=exclusive,
            malware_ruled_out=malware_ruled_out,
            knowledge_shown=knowledge_shown,
            knowledge_entries=knowledge_entries,
            supports=supports,
        )

    @staticmethod
    def _grade(
        attributed: str | None,
        exclusive: bool,
        malware_ruled_out: bool,
        knowledge_shown: bool,
    ) -> Standard:
        if attributed is None:
            return Standard.NOTHING
        prongs = sum((exclusive, malware_ruled_out, knowledge_shown))
        if prongs == 3:
            return Standard.PROBABLE_CAUSE
        if prongs >= 1:
            return Standard.SPECIFIC_AND_ARTICULABLE_FACTS
        return Standard.MERE_SUSPICION
