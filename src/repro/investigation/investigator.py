"""The investigator: an actor that must hold process before acting.

The investigator is where the framework becomes *enforcing* rather than
advisory: :meth:`Investigator.act` asks the compliance engine what the
acquisition requires and refuses (raises
:class:`~repro.core.errors.InsufficientProcess`) if the investigator's
currently valid instruments fall short.  Passing ``comply=False`` models
the officer who proceeds anyway — the acquisitions succeed, but the
resulting evidence carries its provenance into the suppression hearing.
"""

from __future__ import annotations

from repro import obs
from repro.core.action import InvestigativeAction
from repro.core.engine import ComplianceEngine
from repro.core.enums import ProcessKind
from repro.core.errors import InsufficientProcess, StalenessError
from repro.court.application import ProcessApplication
from repro.court.docket import IssuedProcess
from repro.court.magistrate import Decision, Magistrate
from repro.evidence.items import EvidenceItem
from repro.faults.retry import RetryPolicy
from repro.investigation.case import Case


class Investigator:
    """A law-enforcement investigator bound by the compliance engine."""

    def __init__(
        self,
        name: str,
        magistrate: Magistrate | None = None,
        engine: ComplianceEngine | None = None,
    ) -> None:
        self.name = name
        self.magistrate = magistrate or Magistrate()
        self.engine = engine or ComplianceEngine()
        self.instruments: list[IssuedProcess] = []
        self.evidence: list[EvidenceItem] = []
        self.violations: list[str] = []

    # -- process management ------------------------------------------------------

    def current_process(self, time: float) -> ProcessKind:
        """The strongest instrument valid right now."""
        valid = [i.kind for i in self.instruments if i.valid_at(time)]
        return max(valid, default=ProcessKind.NONE)

    def apply_for(
        self,
        kind: ProcessKind,
        case: Case,
        time: float,
        target_place: str = "",
        target_items: tuple[str, ...] = (),
        necessity_statement: str = "",
    ) -> Decision:
        """Apply to the magistrate with the case's current facts."""
        application = case.to_application(
            kind=kind,
            applicant=self.name,
            applied_at=time,
            target_place=target_place,
            target_items=target_items,
            necessity_statement=necessity_statement,
        )
        decision = self.magistrate.review(application)
        if decision.granted and decision.instrument is not None:
            self.instruments.append(decision.instrument)
        return decision

    def apply_with(self, application: ProcessApplication) -> Decision:
        """Apply with a pre-built application (advanced callers)."""
        decision = self.magistrate.review(application)
        if decision.granted and decision.instrument is not None:
            self.instruments.append(decision.instrument)
        return decision

    def apply_with_retry(
        self,
        kind: ProcessKind,
        case: Case,
        time: float,
        policy: RetryPolicy,
        target_place: str = "",
        target_items: tuple[str, ...] = (),
        necessity_statement: str = "",
    ) -> tuple[Decision, int, float]:
        """Apply, re-applying after denials under a retry policy.

        A denial (a hostile court, an injected fault) is not the end of
        an investigation: the officer re-applies after a backoff, up to
        the policy's attempt bound.  Each attempt is made at a later
        simulated time, so staleness horizons and instrument validity
        windows interact with the backoff realistically.

        Returns:
            ``(final decision, attempts used, time of the last attempt)``.
        """
        def attempt_once(index: int, at: float) -> Decision:
            with obs.span(
                "retry.attempt", sim_time=at, attempt=index, kind=kind.name
            ) as sp:
                decided = self.apply_for(
                    kind,
                    case,
                    at,
                    target_place=target_place,
                    target_items=target_items,
                    necessity_statement=necessity_statement,
                )
                sp.set(granted=decided.granted)
            return decided

        now = time
        decision = attempt_once(0, now)
        attempt = 0
        while not decision.granted and attempt < policy.max_attempts - 1:
            now += policy.delay(attempt)
            attempt += 1
            decision = attempt_once(attempt, now)
        return decision, attempt + 1, now

    # -- acting -------------------------------------------------------------------

    def act(
        self,
        action: InvestigativeAction,
        time: float,
        content: str,
        description: str | None = None,
        comply: bool = True,
        derived_from: tuple[int, ...] = (),
    ) -> EvidenceItem:
        """Perform an acquisition and record the resulting evidence.

        Args:
            action: The acquisition to perform.
            time: Current simulation time.
            content: The data the acquisition yields.
            description: Evidence description (defaults to the action's).
            comply: If ``True``, refuse to act without sufficient process;
                if ``False``, act anyway and let the court sort it out.
            derived_from: Parent evidence ids, for derivation links.

        Returns:
            The evidence item produced.

        Raises:
            InsufficientProcess: In comply mode, when held process is
                weaker than the action requires.
        """
        ruling = self.engine.evaluate(action)
        held = self.current_process(time)
        if not held.satisfies(ruling.required_process):
            if comply:
                raise InsufficientProcess(
                    required=ruling.required_process,
                    held=held,
                    what=action.description,
                )
            self.violations.append(
                f"t={time}: acted without required "
                f"{ruling.required_process.display_name}: "
                f"{action.description}"
            )
        item = EvidenceItem(
            description=description or action.description,
            content=content,
            acquired_by=self.name,
            acquired_at=time,
            action=action,
            process_held=held,
            derived_from=derived_from,
        )
        self.evidence.append(item)
        return item

    def rely_on(self, instrument: IssuedProcess, time: float) -> None:
        """Assert reliance on an instrument; raises if it is no longer valid.

        Raises:
            StalenessError: If the instrument expired or was revoked.
        """
        if not instrument.valid_at(time):
            raise StalenessError(
                f"instrument #{instrument.instrument_id} "
                f"({instrument.kind.display_name}) is expired or revoked "
                f"at t={time}"
            )
