"""Investigation workflows: cases, investigators, and pipelines.

Ties the whole framework together: a case accumulates facts, the
investigator applies for process and acts under the compliance engine's
rulings, and the pipeline carries every scene through acquisition and
suppression.
"""

from repro.investigation.attribution import (
    AttributionAnalyzer,
    AttributionReport,
    BrowsingRecord,
    LoginRecord,
    MachineProfile,
    MalwareScanResult,
    UserAccount,
)
from repro.investigation.campaign import (
    CampaignConfig,
    CampaignResult,
    compliance_curve,
    run_campaign,
)
from repro.investigation.case import (
    Case,
    articulable_facts,
    ip_address_fact,
    membership_fact,
    membership_with_intent_fact,
    suspicion_fact,
)
from repro.investigation.investigator import Investigator
from repro.investigation.pipeline import (
    InvestigationPipeline,
    SceneOutcome,
    suppression_split,
)
from repro.investigation.reporting import (
    format_assessment,
    format_quick_reference,
    format_suppression_outcomes,
    format_table1,
)
from repro.investigation.storylines import (
    StorylineReport,
    ip_traceback_storyline,
    watermark_situation_one,
    watermark_situation_two,
)

__all__ = [
    "AttributionAnalyzer",
    "AttributionReport",
    "BrowsingRecord",
    "CampaignConfig",
    "CampaignResult",
    "Case",
    "InvestigationPipeline",
    "Investigator",
    "LoginRecord",
    "MachineProfile",
    "MalwareScanResult",
    "SceneOutcome",
    "StorylineReport",
    "UserAccount",
    "articulable_facts",
    "compliance_curve",
    "format_assessment",
    "format_quick_reference",
    "format_suppression_outcomes",
    "format_table1",
    "ip_address_fact",
    "ip_traceback_storyline",
    "membership_fact",
    "membership_with_intent_fact",
    "run_campaign",
    "suppression_split",
    "suspicion_fact",
    "watermark_situation_one",
    "watermark_situation_two",
]
