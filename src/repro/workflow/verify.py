"""The resume determinism gate: crash at every boundary, compare bytes.

For a given pack and seed, the verifier first runs the workflow
uninterrupted and snapshots the three comparison units — final report
bytes, artifact hash set, canonical custody chain — plus the
suppression outcome.  Then, for *every* journal record boundary, it
re-runs with an injected crash immediately after that record, resumes
from the journal in the same style a fresh process would (rebuild the
subject from the seed, build a fresh injector from the fault plan), and
asserts the resumed run reproduces the snapshot byte-for-byte.

The chaos variant repeats the exercise under a sample of storage fault
plans, rotating the crash boundary per plan, so resume correctness is
exercised *while the substrate itself is misbehaving* — the case where
injector RNG stream positions actually matter.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.workflow.engine import WorkflowEngine
from repro.workflow.faultplan import WorkflowFaultPlan
from repro.workflow.journal import WorkflowCrash, load_journal
from repro.workflow.packs import Pack, get_pack
from repro.workflow.report import RunResult, custody_digest


@dataclasses.dataclass(frozen=True)
class RunSnapshot:
    """The comparison units of one run."""

    report_text: str
    artifact_hashes: tuple[str, ...]
    custody_digest: str
    status: str
    suppressed: bool
    suppression_reason: str

    @classmethod
    def of(cls, result: RunResult) -> RunSnapshot:
        return cls(
            report_text=result.report_text,
            artifact_hashes=result.artifacts.hash_set(),
            custody_digest=custody_digest(result.custody.entries),
            status=result.status,
            suppressed=result.suppressed,
            suppression_reason=result.suppression_reason,
        )

    def diff(self, other: RunSnapshot) -> tuple[str, ...]:
        """Human-readable names of every diverging comparison unit."""
        problems = []
        if self.report_text != other.report_text:
            problems.append("final report bytes differ")
        if self.artifact_hashes != other.artifact_hashes:
            problems.append("artifact hash set differs")
        if self.custody_digest != other.custody_digest:
            problems.append("custody chain differs")
        if self.status != other.status:
            problems.append(
                f"run status differs ({self.status} vs {other.status})"
            )
        if (self.suppressed, self.suppression_reason) != (
            other.suppressed,
            other.suppression_reason,
        ):
            problems.append("suppression outcome differs")
        return tuple(problems)


@dataclasses.dataclass(frozen=True)
class BoundaryResult:
    """Outcome of one kill-and-resume check."""

    label: str
    boundary: int
    ok: bool
    detail: str = ""


@dataclasses.dataclass
class SweepReport:
    """Everything one resume-determinism sweep produced."""

    pack: str
    seed: int
    boundaries: list[BoundaryResult] = dataclasses.field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        """Whether every boundary resumed byte-identically."""
        return all(result.ok for result in self.boundaries)

    @property
    def failures(self) -> tuple[BoundaryResult, ...]:
        """The diverging boundaries, if any."""
        return tuple(r for r in self.boundaries if not r.ok)

    def render(self) -> str:
        """A stable text rendering for the CLI and CI logs."""
        lines = [
            f"resume determinism sweep: pack={self.pack} seed={self.seed}",
            f"boundaries checked: {len(self.boundaries)}",
            f"verdict: {'OK' if self.ok else 'DIVERGED'}",
        ]
        for result in self.boundaries:
            marker = "ok" if result.ok else "FAIL"
            line = f"  [{marker:>4}] {result.label} boundary={result.boundary}"
            if result.detail:
                line += f" ({result.detail})"
            lines.append(line)
        return "\n".join(lines) + "\n"


def _run_once(
    pack: Pack,
    seed: int,
    journal_path: Path,
    fault_plan: WorkflowFaultPlan,
    crash_after: int | None,
) -> RunResult:
    injector = fault_plan.build_injector()
    subject = pack.build_subject(seed, injector)
    engine = WorkflowEngine(pack.build_spec())
    return engine.run(
        subject,
        seed=seed,
        journal_path=journal_path,
        injector=injector,
        crash_after=crash_after,
    )


def _resume_once(
    pack: Pack,
    seed: int,
    journal_path: Path,
    fault_plan: WorkflowFaultPlan,
) -> RunResult:
    injector = fault_plan.build_injector()
    subject = pack.build_subject(seed, injector)
    engine = WorkflowEngine(pack.build_spec())
    return engine.resume(
        subject, seed=seed, journal_path=journal_path, injector=injector
    )


def check_boundary(
    pack: Pack,
    seed: int,
    baseline: RunSnapshot,
    boundary: int,
    workdir: Path,
    fault_plan: WorkflowFaultPlan,
    label: str,
) -> BoundaryResult:
    """Kill after one journal record, resume, compare to the baseline."""
    journal_path = workdir / f"{label}-crash-{boundary}.jsonl"
    crashed = False
    try:
        _run_once(pack, seed, journal_path, fault_plan, boundary)
    except WorkflowCrash:
        crashed = True
    if not crashed:
        return BoundaryResult(
            label=label,
            boundary=boundary,
            ok=False,
            detail="crash point never fired",
        )
    resumed = _resume_once(pack, seed, journal_path, fault_plan)
    problems = baseline.diff(RunSnapshot.of(resumed))
    return BoundaryResult(
        label=label,
        boundary=boundary,
        ok=not problems,
        detail="; ".join(problems),
    )


def resume_sweep(
    pack_name: str,
    seed: int,
    workdir: Path,
    fault_plan: WorkflowFaultPlan | None = None,
) -> SweepReport:
    """Crash-at-every-boundary sweep for one pack under one fault plan."""
    pack = get_pack(pack_name)
    plan = fault_plan or WorkflowFaultPlan()
    report = SweepReport(pack=pack_name, seed=seed)

    baseline_path = workdir / "baseline.jsonl"
    baseline_result = _run_once(pack, seed, baseline_path, plan, None)
    baseline = RunSnapshot.of(baseline_result)
    n_records = len(load_journal(baseline_path))

    for boundary in range(1, n_records + 1):
        report.boundaries.append(
            check_boundary(
                pack, seed, baseline, boundary, workdir, plan, "sweep"
            )
        )
    return report


def chaos_sample(
    pack_name: str,
    workdir: Path,
    n_plans: int = 25,
    base_seed: int = 1000,
) -> SweepReport:
    """Kill-and-resume under a sample of storage fault plans.

    Each of the ``n_plans`` plans gets its own run seed, fault seed, and
    storage fault probabilities, and the crash boundary rotates across
    the journal so the sample covers early, mid, and late crashes under
    live substrate faults.
    """
    pack = get_pack(pack_name)
    report = SweepReport(pack=pack_name, seed=base_seed)
    for index in range(n_plans):
        seed = base_seed + index
        plan = WorkflowFaultPlan(
            storage_read_probability=0.02 + 0.01 * (index % 4),
            storage_bitrot_probability=0.005 * (index % 3),
            fault_seed=seed * 13 + 7,
        )
        plan_dir = workdir / f"plan-{index:02d}"
        plan_dir.mkdir(parents=True, exist_ok=True)
        baseline_path = plan_dir / "baseline.jsonl"
        baseline_result = _run_once(pack, seed, baseline_path, plan, None)
        baseline = RunSnapshot.of(baseline_result)
        n_records = len(load_journal(baseline_path))
        boundary = 1 + (index % n_records)
        report.boundaries.append(
            check_boundary(
                pack,
                seed,
                baseline,
                boundary,
                plan_dir,
                plan,
                f"chaos-{index:02d}",
            )
        )
    return report
