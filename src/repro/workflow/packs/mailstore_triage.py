"""The mailstore-triage pack: SCA-aware compelled mail examination.

Seven steps over a public provider's mailbox: a subpoena-gated
inventory of subscriber/metadata facts, per-message SCA role
classification (ECS vs RCS vs dropped-out), warrant-gated content
acquisition, hashing, keyword triage, integrity checking, and the case
report.  The two gated steps declare distinct legal bases at distinct
tiers — the pack exists to exercise multi-instrument workflows where
the *weakest sufficient* process differs per step.
"""

from __future__ import annotations

import dataclasses
import random

from repro.core.action import InvestigativeAction
from repro.core.context import EnvironmentContext
from repro.core.enums import Actor, DataKind, Place, ProcessKind, Timing
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryPolicy
from repro.storage.hashing import sha256_hex
from repro.storage.mailstore import MailProvider, Message
from repro.workflow.artifacts import Artifact
from repro.workflow.context import StepContext, Subject
from repro.workflow.packs import Pack
from repro.workflow.spec import OnFailure, StepSpec, WorkflowSpec

_KEYWORDS = ("wire transfer", "invoice", "offshore", "password")

#: Subpoena-tier legal basis: basic subscriber information.
INVENTORY_ACTION = InvestigativeAction(
    description=(
        "compel basic subscriber information and mailbox metadata for "
        "the target account from a public provider"
    ),
    actor=Actor.GOVERNMENT,
    data_kind=DataKind.SUBSCRIBER_INFO,
    timing=Timing.STORED,
    context=EnvironmentContext(
        place=Place.THIRD_PARTY_PROVIDER, provider_serves_public=True
    ),
)

#: Warrant-tier legal basis: stored message contents.
CONTENT_ACTION = InvestigativeAction(
    description=(
        "compel stored message contents for the target account from a "
        "public provider"
    ),
    actor=Actor.GOVERNMENT,
    data_kind=DataKind.CONTENT,
    timing=Timing.STORED,
    context=EnvironmentContext(
        place=Place.THIRD_PARTY_PROVIDER, provider_serves_public=True
    ),
)


@dataclasses.dataclass
class MailPayload:
    """The provider and the account under investigation."""

    provider: MailProvider
    account: str


_SUBJECTS = (
    "quarterly invoice",
    "re: wire transfer details",
    "lunch thursday?",
    "offshore account setup",
    "password reset",
    "family photos",
    "shipment tracking",
)


def build_subject(seed: int, injector: FaultInjector | None = None) -> Subject:
    """A seeded public-provider mailbox in mixed lifecycle states.

    Message ids are assigned explicitly from the seed — never from the
    process-global counter — so a resumed process rebuilds a
    byte-identical mailbox.

    The ``injector`` is carried on the workflow context (see
    :meth:`~repro.workflow.context.StepContext.maybe_fault`) rather than
    wired into the provider, which has no native fault points.
    """
    del injector  # reaches the steps via the engine's StepContext
    rng = random.Random(seed * 5_915_587 + 29)
    provider = MailProvider(f"mailhost-{seed % 7}", serves_public=True)
    provider.create_account("alice")
    provider.create_account("bob")
    n_messages = 5 + rng.randrange(3)
    for index in range(n_messages):
        subject_line = _SUBJECTS[rng.randrange(len(_SUBJECTS))]
        body = (
            f"{subject_line} — body {index}: "
            + "".join(
                rng.choice("abcdefghijklmnopqrstuvwxyz ")
                for _ in range(32)
            )
        )
        message = Message(
            sender=f"bob{index % 2}@example.net",
            recipient="alice",
            subject=subject_line,
            body=body,
            sent_at=float(10 * index),
            message_id=1000 + seed * 100 + index,
        )
        provider.deliver(message, time=float(10 * index + 1))
        if rng.random() < 0.5:
            provider.retrieve("alice", message.message_id)
    mailbox = provider.mailbox("alice")
    if len(mailbox) > 2 and rng.random() < 0.4:
        provider.delete("alice", mailbox[0].message_id)
    fingerprint = "mailstore seed={seed}\n".format(seed=seed) + "\n".join(
        _canonical_message(message)
        for message in provider.mailbox("alice")
    )
    return Subject(
        subject_id=f"mailbox-alice-{seed}",
        description=(
            f"alice's mailbox at {provider.name} (seed {seed}), "
            "compelled under warrant"
        ),
        fingerprint=fingerprint,
        action=CONTENT_ACTION,
        payload=MailPayload(provider=provider, account="alice"),
    )


def _canonical_message(message: Message) -> str:
    return (
        f"id={message.message_id}|from={message.sender}"
        f"|to={message.recipient}|subject={message.subject}"
        f"|sent={message.sent_at:.1f}"
        f"|delivered={message.delivered_at or 0.0:.1f}"
        f"|retrieved={message.retrieved}|body={message.body}"
    )


# -- step bodies --------------------------------------------------------------


def _inventory(ctx: StepContext) -> tuple[Artifact, ...]:
    payload = ctx.subject.payload
    ctx.require_process(ProcessKind.SUBPOENA)
    ctx.maybe_fault(f"mailstore:{payload.provider.name}:inventory")
    mailbox = payload.provider.mailbox(payload.account)
    lines = [
        f"provider={payload.provider.name} "
        f"serves_public={payload.provider.serves_public}",
        f"account={payload.account} messages={len(mailbox)}",
    ]
    lines.extend(
        f"message id={message.message_id} sent={message.sent_at:.1f} "
        f"delivered={message.delivered_at or 0.0:.1f}"
        for message in mailbox
    )
    return (ctx.make("mail.inventory", "\n".join(lines) + "\n"),)


def _classify_sca_roles(ctx: StepContext) -> tuple[Artifact, ...]:
    payload = ctx.subject.payload
    lines = ["sca classification"]
    for message in payload.provider.mailbox(payload.account):
        role = payload.provider.role_for(message)
        required, source = payload.provider.required_process_for(message)
        lines.append(
            f"message id={message.message_id} role={role.name} "
            f"required={required.display_name} source={source.name}"
        )
    return (ctx.make("sca.roles", "\n".join(lines) + "\n"),)


def _acquire_content(ctx: StepContext) -> tuple[Artifact, ...]:
    payload = ctx.subject.payload
    ctx.require_process(ProcessKind.SEARCH_WARRANT)
    lines = ["compelled message contents"]
    for message in payload.provider.mailbox(payload.account):
        ctx.maybe_fault(f"mailstore:msg-{message.message_id}")
        lines.append(_canonical_message(message))
    ctx.note_custody(
        f"compelled {len(lines) - 1} message(s) from "
        f"{payload.provider.name} under warrant"
    )
    return (ctx.make("mail.content", "\n".join(lines) + "\n"),)


def _hash_messages(ctx: StepContext) -> tuple[Artifact, ...]:
    content = ctx.input("mail.content")
    lines = ["per-message hashes"]
    for line in content.content.decode().splitlines()[1:]:
        message_id = line.split("|", 1)[0]
        lines.append(f"{message_id} sha256={sha256_hex(line)}")
    return (ctx.make("mail.hashes", "\n".join(lines) + "\n"),)


def _keyword_triage(ctx: StepContext) -> tuple[Artifact, ...]:
    content = ctx.input("mail.content")
    lines = ["keyword triage"]
    for line in content.content.decode().splitlines()[1:]:
        hits = sorted(
            keyword for keyword in _KEYWORDS if keyword in line.lower()
        )
        if hits:
            message_id = line.split("|", 1)[0]
            lines.append(f"{message_id} hits={','.join(hits)}")
    return (
        ctx.make(
            "triage.hits",
            "\n".join(lines) + "\n",
            hit_count=str(len(lines) - 1),
        ),
    )


def _integrity_check(ctx: StepContext) -> tuple[Artifact, ...]:
    content = ctx.input("mail.content")
    hashes = ctx.input("mail.hashes")
    recomputed = []
    for line in content.content.decode().splitlines()[1:]:
        message_id = line.split("|", 1)[0]
        recomputed.append(f"{message_id} sha256={sha256_hex(line)}")
    recorded = hashes.content.decode().splitlines()[1:]
    verdict_ok = recomputed == recorded
    verdict = (
        f"integrity check\nmessages={len(recomputed)}\n"
        f"verdict={'intact' if verdict_ok else 'MISMATCH'}\n"
    )
    return (ctx.make("integrity.verdict", verdict),)


def _final_report(ctx: StepContext) -> tuple[Artifact, ...]:
    triage = ctx.input("triage.hits")
    verdict = ctx.input("integrity.verdict")
    roles = ctx.input("sca.roles")
    report = (
        "mailstore triage case report\n"
        f"subject: {ctx.subject.subject_id}\n"
        f"sca roles sha256: {roles.sha256}\n"
        f"triage sha256: {triage.sha256} "
        f"(hits={triage.meta_value('hit_count')})\n"
        f"integrity sha256: {verdict.sha256}\n"
    )
    return (ctx.make("case.report", report),)


_MAIL_RETRY = RetryPolicy(max_attempts=4, base_delay=15.0, multiplier=3.0)


def build_spec() -> WorkflowSpec:
    """The seven-step mailstore-triage workflow."""
    return WorkflowSpec(
        name="mailstore-triage",
        instruments=(ProcessKind.SUBPOENA, ProcessKind.SEARCH_WARRANT),
        steps=(
            StepSpec(
                step_id="inventory",
                title="subpoena mailbox metadata",
                run=_inventory,
                outputs=("mail.inventory",),
                legal_action=INVENTORY_ACTION,
                gate=ProcessKind.SUBPOENA,
                retry=_MAIL_RETRY,
                sim_cost=120.0,
            ),
            StepSpec(
                step_id="classify_sca_roles",
                title="classify per-message SCA roles",
                run=_classify_sca_roles,
                inputs=("mail.inventory",),
                outputs=("sca.roles",),
                sim_cost=60.0,
            ),
            StepSpec(
                step_id="acquire_content",
                title="compel message contents under warrant",
                run=_acquire_content,
                inputs=("sca.roles",),
                outputs=("mail.content",),
                legal_action=CONTENT_ACTION,
                gate=ProcessKind.SEARCH_WARRANT,
                retry=_MAIL_RETRY,
                timeout=7200.0,
                sim_cost=300.0,
            ),
            StepSpec(
                step_id="hash_messages",
                title="hash each compelled message",
                run=_hash_messages,
                inputs=("mail.content",),
                outputs=("mail.hashes",),
                sim_cost=60.0,
            ),
            StepSpec(
                step_id="keyword_triage",
                title="triage messages by keyword",
                run=_keyword_triage,
                inputs=("mail.content",),
                outputs=("triage.hits",),
                sim_cost=90.0,
                on_failure=OnFailure.SKIP_WITH_PARTIAL_CONFIDENCE,
            ),
            StepSpec(
                step_id="integrity_check",
                title="verify message hashes",
                run=_integrity_check,
                inputs=("mail.content", "mail.hashes"),
                outputs=("integrity.verdict",),
                sim_cost=60.0,
            ),
            StepSpec(
                step_id="final_report",
                title="write the case report",
                run=_final_report,
                inputs=("triage.hits", "integrity.verdict", "sca.roles"),
                outputs=("case.report",),
                sim_cost=60.0,
                on_failure=OnFailure.ABORT_AND_SUPPRESS,
            ),
        ),
    )


PACK = Pack(
    name="mailstore-triage",
    title="SCA-aware mailbox inventory, compulsion, and triage",
    build_spec=build_spec,
    build_subject=build_subject,
    source_modules=("repro.workflow.packs.mailstore_triage",),
)
