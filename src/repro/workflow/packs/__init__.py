"""Scenario packs: concrete workflows built on the existing substrates.

A pack bundles a workflow spec builder with a subject builder so the
CLI, the verifier, and the batch runner can all construct a run from
``(pack name, seed)`` alone — which is also what makes crash-resume
testable: the resumed process rebuilds the identical subject from the
identical seed and lets the journal supply everything that already
happened.
"""

from __future__ import annotations

import dataclasses
import importlib
from collections.abc import Callable
from pathlib import Path

from repro.faults.injector import FaultInjector
from repro.workflow.context import Subject
from repro.workflow.spec import WorkflowSpec


@dataclasses.dataclass(frozen=True)
class Pack:
    """One registered scenario pack.

    Attributes:
        name: CLI-facing pack name.
        title: Human-readable description.
        build_spec: Builds the (pure-data) workflow spec.
        build_subject: Builds the evidence subject for a seed, wiring an
            optional fault injector into the substrate.
        source_modules: Module paths ``repro workflow lint`` checks.
    """

    name: str
    title: str
    build_spec: Callable[[], WorkflowSpec]
    build_subject: Callable[[int, FaultInjector | None], Subject]
    source_modules: tuple[str, ...]

    def source_paths(self) -> list[Path]:
        """Filesystem paths of the pack's step-body modules."""
        paths = []
        for module_name in self.source_modules:
            module = importlib.import_module(module_name)
            if module.__file__:
                paths.append(Path(module.__file__))
        return paths


def _registry() -> dict[str, Pack]:
    from repro.workflow.packs import mailstore_triage, photo_recovery

    packs = (photo_recovery.PACK, mailstore_triage.PACK)
    return {pack.name: pack for pack in packs}


def pack_names() -> tuple[str, ...]:
    """Registered pack names, sorted."""
    return tuple(sorted(_registry()))


def get_pack(name: str) -> Pack:
    """Look a pack up by name.

    Raises:
        KeyError: On an unknown pack name.
    """
    registry = _registry()
    if name not in registry:
        raise KeyError(
            f"unknown pack {name!r}; available: {', '.join(sorted(registry))}"
        )
    return registry[name]
