"""The photo-recovery pack: seized media to cataloged photo evidence.

Ten steps spanning the canonical dead-box pipeline: media
identification, readability probing, warrant-gated imaging, hashing,
filesystem analysis (live and recoverable-deleted files), carving of
unallocated space, EXIF extraction, integrity validation, cataloging,
and the final case report.  The only acquisition — imaging the seized
drive — declares its legal basis and gates on a search warrant; every
later step is analysis of lawfully imaged bytes.
"""

from __future__ import annotations

import random
import re

from repro.core.action import InvestigativeAction
from repro.core.context import EnvironmentContext
from repro.core.enums import Actor, DataKind, Place, ProcessKind, Timing
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryPolicy
from repro.storage.blockdev import BlockDevice, image_device
from repro.storage.carving import DEFAULT_SIGNATURES, carve
from repro.storage.filesystem import SimpleFilesystem
from repro.storage.hashing import sha256_hex
from repro.workflow.artifacts import Artifact
from repro.workflow.context import StepContext, Subject
from repro.workflow.packs import Pack
from repro.workflow.spec import OnFailure, StepSpec, WorkflowSpec

_EXIF_TOKEN = re.compile(rb"exif:([0-9]{4}-[0-9]{2}-[0-9]{2} cam=K[0-9]+)")

#: The declared legal basis for imaging the seized drive.
IMAGING_ACTION = InvestigativeAction(
    description=(
        "image and examine the contents of a drive seized from the "
        "suspect's premises under a search warrant"
    ),
    actor=Actor.GOVERNMENT,
    data_kind=DataKind.CONTENT,
    timing=Timing.STORED,
    context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
)


class _MediaPayload:
    """The seized drive plus the filesystem view the examiner parses."""

    def __init__(self, device: BlockDevice, fs: SimpleFilesystem) -> None:
        self.device = device
        self.fs = fs


class _ImageBuffer:
    """A read-only raw-bytes view over an imaged artifact.

    Duck-types the one method :func:`repro.storage.carving.carve`
    actually uses, so carving runs over the *image artifact's* bytes —
    never over the original device — matching forensic practice.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data

    def raw_bytes(self) -> bytes:
        """The image contents."""
        return self._data


def build_subject(seed: int, injector: FaultInjector | None = None) -> Subject:
    """A seeded seized drive with live, deleted, and carvable photos."""
    rng = random.Random(seed * 9_176_431 + 17)
    device = BlockDevice(n_blocks=48, block_size=64, injector=injector)
    fs = SimpleFilesystem(device)
    n_photos = 4 + rng.randrange(3)
    for index in range(n_photos):
        month = 1 + rng.randrange(12)
        day = 1 + rng.randrange(28)
        camera = 1 + rng.randrange(4)
        filler = "".join(
            rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(24)
        )
        fs.write_file(
            f"IMG_{index:04d}.jpg",
            f"JPEG[photo-{index} exif:2012-{month:02d}-{day:02d} "
            f"cam=K{camera} {filler}]GEPJ",
        )
    fs.write_file(
        "notes.txt", f"case notes for seed {seed}: suspect drive intake"
    )
    # One photo is deleted and stays recoverable; a later write may
    # overwrite part of another deleted photo, leaving only carvable
    # fragments — both realities the analysis steps must cope with.
    fs.delete_file("IMG_0001.jpg")
    if n_photos >= 5:
        fs.delete_file("IMG_0003.jpg")
        fs.write_file(
            "report_draft.txt",
            "draft narrative " + "".join(
                rng.choice("0123456789") for _ in range(40)
            ),
        )
    fingerprint = (
        f"photo-media seed={seed} device_sha256={device.sha256()}"
    )
    return Subject(
        subject_id=f"photo-media-{seed}",
        description=f"seized drive (seed {seed}), suspected photo evidence",
        fingerprint=fingerprint,
        action=IMAGING_ACTION,
        payload=_MediaPayload(device, fs),
    )


# -- step bodies --------------------------------------------------------------


def _identify_media(ctx: StepContext) -> tuple[Artifact, ...]:
    device = ctx.subject.payload.device
    profile = (
        f"media profile\n"
        f"blocks={device.n_blocks}\n"
        f"block_size={device.block_size}\n"
        f"capacity={device.capacity}\n"
    )
    return (ctx.make("media.profile", profile),)


def _verify_readability(ctx: StepContext) -> tuple[Artifact, ...]:
    device = ctx.subject.payload.device
    first = device.read_block(0)
    last = device.read_block(device.n_blocks - 1)
    readability = (
        f"readability probe\n"
        f"first_block_sha256={sha256_hex(first)}\n"
        f"last_block_sha256={sha256_hex(last)}\n"
        f"readable=true\n"
    )
    return (ctx.make("media.readability", readability),)


def _acquire_image(ctx: StepContext) -> tuple[Artifact, ...]:
    device = ctx.subject.payload.device
    ctx.require_process(ProcessKind.SEARCH_WARRANT)
    image = image_device(device)
    digest = image.sha256()
    ctx.note_custody(
        f"imaged device through write-blocked read path; "
        f"verified image sha256={digest}"
    )
    return (
        ctx.make(
            "image.raw",
            image.raw_bytes(),
            image_sha256=digest,
            source_sha256=device.sha256(),
        ),
    )


def _hash_image(ctx: StepContext) -> tuple[Artifact, ...]:
    image = ctx.input("image.raw")
    quarter = max(len(image.content) // 4, 1)
    lines = [f"image_sha256={image.sha256}"]
    for index in range(4):
        segment = image.content[index * quarter : (index + 1) * quarter]
        lines.append(f"quarter{index}_sha256={sha256_hex(segment)}")
    return (
        ctx.make(
            "image.hashes",
            "\n".join(lines) + "\n",
            image_sha256=image.sha256,
        ),
    )


def _analyze_filesystem(ctx: StepContext) -> tuple[Artifact, ...]:
    fs = ctx.subject.payload.fs
    lines = ["filesystem listing"]
    for name in sorted(fs.list_files()):
        contents = fs.read_file(name)
        lines.append(
            f"live name={name} bytes={len(contents)} "
            f"sha256={sha256_hex(contents)}"
        )
    for name, contents in sorted(fs.recover_deleted().items()):
        lines.append(
            f"recovered name={name} bytes={len(contents)} "
            f"sha256={sha256_hex(contents)}"
        )
    return (ctx.make("fs.listing", "\n".join(lines) + "\n"),)


def _carve_unallocated(ctx: StepContext) -> tuple[Artifact, ...]:
    image = ctx.input("image.raw")
    carved = carve(_ImageBuffer(image.content), DEFAULT_SIGNATURES)
    lines = ["carving results"]
    for found in carved:
        lines.append(
            f"carved signature={found.signature} "
            f"start={found.start_offset} end={found.end_offset} "
            f"sha256={sha256_hex(found.contents)}"
        )
    return (
        ctx.make(
            "carve.results",
            "\n".join(lines) + "\n",
            carved_count=str(len(carved)),
        ),
    )


def _extract_exif(ctx: StepContext) -> tuple[Artifact, ...]:
    image = ctx.input("image.raw")
    tokens = sorted(
        {match.decode() for match in _EXIF_TOKEN.findall(image.content)}
    )
    lines = ["exif extraction"]
    lines.extend(f"exif {token}" for token in tokens)
    return (
        ctx.make(
            "exif.report",
            "\n".join(lines) + "\n",
            token_count=str(len(tokens)),
        ),
    )


def _validate_integrity(ctx: StepContext) -> tuple[Artifact, ...]:
    image = ctx.input("image.raw")
    hashes = ctx.input("image.hashes")
    recorded = hashes.meta_value("image_sha256")
    recomputed = image.sha256
    declared = image.meta_value("image_sha256")
    verdict_ok = recorded == recomputed == declared
    verdict = (
        f"integrity validation\n"
        f"recorded={recorded}\n"
        f"recomputed={recomputed}\n"
        f"declared_at_acquisition={declared}\n"
        f"verdict={'intact' if verdict_ok else 'MISMATCH'}\n"
    )
    return (ctx.make("integrity.verdict", verdict),)


def _catalog(ctx: StepContext) -> tuple[Artifact, ...]:
    sections = []
    for kind in (
        "fs.listing",
        "carve.results",
        "exif.report",
        "integrity.verdict",
    ):
        artifact = ctx.input(kind)
        sections.append(
            f"== {kind} sha256={artifact.sha256}\n"
            + artifact.content.decode()
        )
    return (ctx.make("evidence.catalog", "\n".join(sections)),)


def _final_report(ctx: StepContext) -> tuple[Artifact, ...]:
    catalog = ctx.input("evidence.catalog")
    profile = ctx.input("media.profile")
    report = (
        "photo recovery case report\n"
        f"subject: {ctx.subject.subject_id}\n"
        f"media profile sha256: {profile.sha256}\n"
        f"catalog sha256: {catalog.sha256}\n"
        f"catalog bytes: {len(catalog.content)}\n"
    )
    return (ctx.make("case.report", report),)


_FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=30.0, multiplier=2.0)


def build_spec() -> WorkflowSpec:
    """The ten-step photo-recovery workflow."""
    return WorkflowSpec(
        name="photo-recovery",
        instruments=(ProcessKind.SEARCH_WARRANT,),
        steps=(
            StepSpec(
                step_id="identify_media",
                title="identify seized media",
                run=_identify_media,
                outputs=("media.profile",),
                sim_cost=30.0,
            ),
            StepSpec(
                step_id="verify_readability",
                title="probe device readability",
                run=_verify_readability,
                inputs=("media.profile",),
                outputs=("media.readability",),
                retry=_FAST_RETRY,
                sim_cost=60.0,
                on_failure=OnFailure.SKIP_WITH_PARTIAL_CONFIDENCE,
            ),
            StepSpec(
                step_id="acquire_image",
                title="image the device under warrant",
                run=_acquire_image,
                inputs=("media.profile",),
                outputs=("image.raw",),
                legal_action=IMAGING_ACTION,
                gate=ProcessKind.SEARCH_WARRANT,
                retry=_FAST_RETRY,
                timeout=7200.0,
                sim_cost=600.0,
            ),
            StepSpec(
                step_id="hash_image",
                title="hash the verified image",
                run=_hash_image,
                inputs=("image.raw",),
                outputs=("image.hashes",),
                sim_cost=120.0,
            ),
            StepSpec(
                step_id="analyze_filesystem",
                title="parse filesystem; recover deleted files",
                run=_analyze_filesystem,
                inputs=("image.raw",),
                outputs=("fs.listing",),
                retry=_FAST_RETRY,
                sim_cost=300.0,
            ),
            StepSpec(
                step_id="carve_unallocated",
                title="carve unallocated space",
                run=_carve_unallocated,
                inputs=("image.raw",),
                outputs=("carve.results",),
                sim_cost=300.0,
            ),
            StepSpec(
                step_id="extract_exif",
                title="extract EXIF metadata",
                run=_extract_exif,
                inputs=("image.raw", "carve.results"),
                outputs=("exif.report",),
                sim_cost=90.0,
                on_failure=OnFailure.SKIP_WITH_PARTIAL_CONFIDENCE,
            ),
            StepSpec(
                step_id="validate_integrity",
                title="validate image integrity",
                run=_validate_integrity,
                inputs=("image.raw", "image.hashes"),
                outputs=("integrity.verdict",),
                sim_cost=60.0,
            ),
            StepSpec(
                step_id="catalog",
                title="catalog the evidence",
                run=_catalog,
                inputs=(
                    "fs.listing",
                    "carve.results",
                    "exif.report",
                    "integrity.verdict",
                ),
                outputs=("evidence.catalog",),
                sim_cost=120.0,
            ),
            StepSpec(
                step_id="final_report",
                title="write the case report",
                run=_final_report,
                inputs=("evidence.catalog", "media.profile"),
                outputs=("case.report",),
                sim_cost=60.0,
                on_failure=OnFailure.ABORT_AND_SUPPRESS,
            ),
        ),
    )


PACK = Pack(
    name="photo-recovery",
    title="seized media → imaging → recovery → cataloged photo evidence",
    build_spec=build_spec,
    build_subject=build_subject,
    source_modules=("repro.workflow.packs.photo_recovery",),
)
