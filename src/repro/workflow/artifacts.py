"""Typed, content-addressed artifacts flowing between workflow steps.

Every value a step produces is an :class:`Artifact`: a declared kind
(the edge label of the workflow DAG), immutable content bytes, and the
SHA-256 the journal and the chain of custody both record.  Steps never
hand each other live Python objects — anything a downstream step needs
must round-trip through bytes, which is exactly what makes a journaled
run resumable: the journal stores the bytes, so a resumed run rehydrates
completed steps' outputs without re-executing them.
"""

from __future__ import annotations

import dataclasses

from repro.storage.hashing import sha256_hex


@dataclasses.dataclass(frozen=True)
class Artifact:
    """One typed, immutable output of a workflow step.

    Attributes:
        kind: The artifact type, e.g. ``"image.raw"``.  Exactly one step
            in a workflow may produce each kind.
        content: The artifact payload.
        meta: Sorted ``(key, value)`` string pairs of side information
            (source hashes, counts) — kept as a tuple so artifacts stay
            hashable and serialize deterministically.
        produced_by: Id of the step that produced it.
    """

    kind: str
    content: bytes
    meta: tuple[tuple[str, str], ...] = ()
    produced_by: str = ""

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("artifact kind must be non-empty")
        if tuple(sorted(self.meta)) != self.meta:
            object.__setattr__(self, "meta", tuple(sorted(self.meta)))

    @property
    def sha256(self) -> str:
        """Hex digest of the content bytes."""
        return sha256_hex(self.content)

    def meta_value(self, key: str, default: str = "") -> str:
        """Look up one metadata value."""
        for meta_key, value in self.meta:
            if meta_key == key:
                return value
        return default

    def describe(self) -> str:
        """A stable one-line summary used in reports."""
        return f"{self.kind} sha256={self.sha256} bytes={len(self.content)}"


class ArtifactStore:
    """The artifacts a run has produced so far, keyed by kind."""

    def __init__(self) -> None:
        self._by_kind: dict[str, Artifact] = {}

    def add(self, artifact: Artifact) -> None:
        """Register a produced artifact.

        Raises:
            ValueError: If an artifact of this kind already exists —
                workflow validation guarantees unique producers, so a
                duplicate means the engine (or a resume) went wrong.
        """
        if artifact.kind in self._by_kind:
            raise ValueError(f"duplicate artifact kind: {artifact.kind!r}")
        self._by_kind[artifact.kind] = artifact

    def has(self, kind: str) -> bool:
        """Whether an artifact of this kind exists."""
        return kind in self._by_kind

    def get(self, kind: str) -> Artifact:
        """The artifact of one kind.

        Raises:
            KeyError: If no artifact of this kind was produced.
        """
        return self._by_kind[kind]

    def kinds(self) -> tuple[str, ...]:
        """Produced kinds, sorted."""
        return tuple(sorted(self._by_kind))

    def artifacts(self) -> tuple[Artifact, ...]:
        """All artifacts, sorted by kind."""
        return tuple(self._by_kind[kind] for kind in self.kinds())

    def hash_set(self) -> tuple[str, ...]:
        """``kind:sha256`` lines, sorted — the run's artifact hash set."""
        return tuple(
            f"{artifact.kind}:{artifact.sha256}"
            for artifact in self.artifacts()
        )

    def digest(self) -> str:
        """SHA-256 over the artifact hash set."""
        return sha256_hex("\n".join(self.hash_set()))

    def __len__(self) -> int:
        return len(self._by_kind)
