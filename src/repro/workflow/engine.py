"""The workflow engine: gate, execute, journal, resume.

Execution order is the spec's declaration order (already topological),
but every transition is mediated by the journal:

1. **Gate.**  The gated steps are compiled to the plan IR and the
   :class:`~repro.analysis.plan_checker.PlanAnalyzer` must pass them
   *before* the first record is written.  An unlawful workflow never
   touches the substrate.
2. **Execute.**  Each step runs under its retry policy with backoff in
   simulated time, charged against its sim-time timeout.  Failures
   degrade per the declared policy; a legal violation raised by the
   in-step gate (:class:`~repro.core.errors.InsufficientProcess`)
   always aborts and suppresses, whatever the policy says.
3. **Journal.**  One record per step boundary, durably written before
   the next step starts: outputs (content included), custody deltas,
   obs span ids, and the fault injector's cumulative draw counts.
4. **Resume.**  A fresh process reloads the journal, verifies the spec
   digest / seed / subject fingerprint, rehydrates artifacts and the
   custody chain, fast-forwards a fresh injector to the recorded RNG
   stream positions, and re-enters the loop at the first step without a
   record — producing bytes identical to a run that never crashed.
"""

from __future__ import annotations

import dataclasses
import random
from pathlib import Path
from typing import TYPE_CHECKING

from repro import obs
from repro.analysis.plan_checker import PlanAnalyzer, PlanReport
from repro.core.errors import InsufficientProcess
from repro.evidence.custody import ChainOfCustody
from repro.evidence.items import EvidenceItem
from repro.faults.errors import FaultError
from repro.faults.injector import FaultInjector
from repro.storage.hashing import sha256_hex
from repro.workflow.artifacts import ArtifactStore
from repro.workflow.context import (
    SimClock,
    StepContext,
    StepFailure,
    Subject,
    step_rng_seed,
)
from repro.workflow.journal import (
    JOURNAL_VERSION,
    Journal,
    JournalError,
    RunStart,
    artifact_from_record,
    artifact_to_record,
    custody_from_record,
    custody_to_record,
    load_journal,
)
from repro.workflow.report import (
    RunResult,
    StepOutcome,
    StepStatus,
    custody_digest,
    render_report,
)
from repro.workflow.spec import OnFailure, StepSpec, WorkflowSpec

if TYPE_CHECKING:  # annotation-only; workflow must not hard-import ledger
    from repro.ledger import Ledger


class WorkflowLegalityError(Exception):
    """The static gate rejected the workflow before execution.

    Attributes:
        report: The failing plan report, for rendering.
    """

    def __init__(self, report: PlanReport) -> None:
        self.report = report
        findings = "; ".join(
            f"{diagnostic.code}: {diagnostic.message}"
            for diagnostic in report.diagnostics
        )
        super().__init__(
            f"workflow rejected by static legality analysis: {findings}"
        )


class StepTimeout(StepFailure):
    """One attempt exceeded the step's declared sim-time budget."""


#: Exceptions the retry/degradation machinery handles; anything else is
#: a programming error and propagates.
_RETRYABLE = (FaultError, StepFailure)


@dataclasses.dataclass
class _RunState:
    """Mutable state threaded through one engine run."""

    clock: SimClock
    custody: ChainOfCustody
    artifacts: ArtifactStore
    outcomes: list[StepOutcome]
    aborted: bool = False
    suppressed: bool = False
    suppression_reason: str = ""


class WorkflowEngine:
    """Runs one :class:`~repro.workflow.spec.WorkflowSpec` to completion."""

    def __init__(
        self,
        spec: WorkflowSpec,
        custodian: str = "workflow-engine",
        ledger: "Ledger | None" = None,
    ) -> None:
        self.spec = spec
        self.custodian = custodian
        self.ledger = ledger
        self._analyzer = PlanAnalyzer()

    # -- public API --------------------------------------------------------------

    def check_legality(self) -> PlanReport:
        """Run the static gate; raises on an unlawful workflow.

        Raises:
            WorkflowLegalityError: If the plan analyzer finds an
                error-severity problem with the gated steps.
        """
        report = self._analyzer.analyze(self.spec.to_plan())
        if not report.ok:
            raise WorkflowLegalityError(report)
        return report

    def run(
        self,
        subject: Subject,
        seed: int = 0,
        journal_path: Path | None = None,
        injector: FaultInjector | None = None,
        crash_after: int | None = None,
    ) -> RunResult:
        """Execute the workflow from scratch, journaling every boundary.

        Raises:
            WorkflowLegalityError: If the static gate rejects the spec.
            WorkflowCrash: If an injected crash point fires.
        """
        return self._execute(
            subject,
            seed,
            journal_path,
            injector,
            crash_after,
            prior_records=None,
        )

    def resume(
        self,
        subject: Subject,
        seed: int = 0,
        journal_path: Path | None = None,
        injector: FaultInjector | None = None,
        crash_after: int | None = None,
    ) -> RunResult:
        """Resume an interrupted run from its journal.

        The caller rebuilds the subject (and a *fresh* injector from the
        same fault plan) exactly as for the original run; the journal
        supplies everything else.

        Raises:
            JournalError: If the journal is missing, corrupt, or does
                not match this workflow/seed/subject.
        """
        if journal_path is None:
            raise JournalError("resume requires a journal path")
        records = load_journal(journal_path)
        if not records:
            raise JournalError(f"journal {journal_path} is empty")
        return self._execute(
            subject,
            seed,
            journal_path,
            injector,
            crash_after,
            prior_records=records,
        )

    # -- internals ---------------------------------------------------------------

    def _execute(
        self,
        subject: Subject,
        seed: int,
        journal_path: Path | None,
        injector: FaultInjector | None,
        crash_after: int | None,
        prior_records: list[dict[str, object]] | None,
    ) -> RunResult:
        self.check_legality()
        resumed = prior_records is not None

        item = EvidenceItem(
            description=subject.description,
            content=subject.fingerprint,
            acquired_by=self.custodian,
            acquired_at=0.0,
            action=subject.action,
            process_held=self.spec.held_process,
        )
        state = _RunState(
            clock=SimClock(),
            custody=ChainOfCustody(item, custodian=self.custodian, time=0.0),
            artifacts=ArtifactStore(),
            outcomes=[],
        )

        done: dict[str, StepOutcome] = {}
        completed_marker: dict[str, object] | None = None
        existing = 0
        if prior_records is not None:
            existing = len(prior_records)
            completed_marker = self._restore(
                prior_records, subject, seed, injector, state, done
            )
        journal = Journal(journal_path, crash_after, existing=existing)

        with obs.span(
            "workflow.run",
            sim_time=state.clock.now,
            workflow=self.spec.name,
            subject=subject.subject_id,
            resumed=resumed,
        ), obs.audit(
            workflow=self.spec.name,
            subject=subject.subject_id,
            custodian=self.custodian,
        ):
            if prior_records is None:
                journal.append(
                    self._run_start_record(subject, seed, injector, state)
                )
            # When the journaled run had already completed, every step is
            # restored and this replays the loop without journaling.
            self._run_steps(subject, seed, injector, state, done, journal)
            report_text = self._render(subject, state)
            if completed_marker is None:
                journal.append(
                    self._run_complete_record(state, report_text)
                )
            else:
                self._check_complete_marker(
                    completed_marker, state, report_text
                )
            if self.ledger is not None:
                self._persist_run(subject, seed, state)

        return RunResult(
            workflow=self.spec.name,
            subject_id=subject.subject_id,
            status="aborted" if state.aborted else "completed",
            outcomes=tuple(state.outcomes),
            artifacts=state.artifacts,
            custody=state.custody,
            finished_at=state.clock.now,
            suppressed=state.suppressed,
            suppression_reason=state.suppression_reason,
            report_text=report_text,
            journal_path=journal_path,
            resumed=resumed,
        )

    def _run_steps(
        self,
        subject: Subject,
        seed: int,
        injector: FaultInjector | None,
        state: _RunState,
        done: dict[str, StepOutcome],
        journal: Journal,
    ) -> None:
        for step in self.spec.steps:
            if step.step_id in done:
                state.outcomes.append(done[step.step_id])
                continue
            if state.aborted:
                state.outcomes.append(
                    StepOutcome(
                        step_id=step.step_id,
                        status=StepStatus.NOT_RUN,
                        detail="run aborted upstream",
                        started_at=state.clock.now,
                        finished_at=state.clock.now,
                    )
                )
                continue
            missing = [
                kind
                for kind in step.inputs
                if not state.artifacts.has(kind)
            ]
            if missing:
                outcome = StepOutcome(
                    step_id=step.step_id,
                    status=StepStatus.SKIPPED,
                    detail="upstream unavailable: " + ",".join(missing),
                    started_at=state.clock.now,
                    finished_at=state.clock.now,
                )
                state.outcomes.append(outcome)
                journal.append(
                    self._step_record(
                        step,
                        outcome,
                        (),
                        injector,
                        (),
                        input_hashes=self._input_hashes(step, state),
                    )
                )
                continue
            self._run_one_step(subject, seed, injector, state, step, journal)

    def _run_one_step(
        self,
        subject: Subject,
        seed: int,
        injector: FaultInjector | None,
        state: _RunState,
        step: StepSpec,
        journal: Journal,
    ) -> None:
        started_at = state.clock.now
        custody_before = len(state.custody.entries)
        log_before = len(injector.log) if injector is not None else 0
        intervals = step.retry.schedule()
        span_ids: list[int] = []
        outcome: StepOutcome | None = None

        for attempt in range(1, step.retry.max_attempts + 1):
            attempt_started = state.clock.now
            context = StepContext(
                step_id=step.step_id,
                subject=subject,
                clock=state.clock,
                rng=random.Random(step_rng_seed(seed, step.step_id, attempt)),
                inputs={
                    kind: state.artifacts.get(kind) for kind in step.inputs
                },
                held_process=self.spec.held_process,
                attempt=attempt,
                injector=injector,
            )
            error: Exception | None = None
            outputs = ()
            span = obs.span(
                "workflow.step",
                sim_time=state.clock.now,
                step=step.step_id,
                attempt=attempt,
            )
            try:
                with span, obs.audit(step=step.step_id, attempt=attempt):
                    outputs = step.run(context)
                    state.clock.advance(step.sim_cost)
                    if state.clock.now - attempt_started > step.timeout:
                        raise StepTimeout(
                            f"attempt took "
                            f"{state.clock.now - attempt_started:.6f}s of "
                            f"sim time (budget {step.timeout:.6f}s)"
                        )
            except InsufficientProcess as violation:
                state.clock.advance(step.sim_cost)
                self._collect_span_id(span, span_ids)
                outcome = self._legal_abort(state, step, attempt, violation)
                break
            except _RETRYABLE as failure:
                state.clock.advance(step.sim_cost)
                error = failure
            self._collect_span_id(span, span_ids)

            if error is None:
                for event in context._custody_events:
                    state.custody.record_event(event, time=state.clock.now)
                outcome = self._complete(state, step, attempt, outputs)
                break
            if (
                attempt < step.retry.max_attempts
                and step.on_failure is not OnFailure.ABORT_AND_SUPPRESS
            ):
                state.custody.record_event(
                    f"step {step.step_id} attempt {attempt} failed "
                    f"({error}); retrying after backoff",
                    time=state.clock.now,
                )
                state.clock.advance(intervals[attempt - 1])
                continue
            outcome = self._exhausted(state, step, attempt, error)
            break

        assert outcome is not None  # every loop exit assigns it
        outcome = dataclasses.replace(outcome, started_at=started_at)
        state.outcomes.append(outcome)
        custody_delta = state.custody.entries[custody_before:]
        fault_log_delta: tuple[dict[str, object], ...] = ()
        if injector is not None:
            fault_log_delta = tuple(
                record.to_dict() for record in injector.log[log_before:]
            )
        journal.append(
            self._step_record(
                step,
                outcome,
                custody_delta,
                injector,
                fault_log_delta,
                input_hashes=self._input_hashes(step, state),
                span_ids=tuple(span_ids),
            )
        )

    @staticmethod
    def _input_hashes(
        step: StepSpec, state: _RunState
    ) -> tuple[tuple[str, str], ...]:
        return tuple(
            (
                kind,
                state.artifacts.get(kind).sha256
                if state.artifacts.has(kind)
                else "",
            )
            for kind in step.inputs
        )

    @staticmethod
    def _collect_span_id(span: object, span_ids: list[int]) -> None:
        span_id = getattr(span, "span_id", None)
        if isinstance(span_id, int):
            span_ids.append(span_id)

    def _complete(
        self,
        state: _RunState,
        step: StepSpec,
        attempt: int,
        outputs: tuple,
    ) -> StepOutcome:
        produced = {artifact.kind for artifact in outputs}
        if produced != set(step.outputs):
            raise JournalError(
                f"step {step.step_id!r} produced {sorted(produced)} but "
                f"declared {sorted(step.outputs)}"
            )
        ordered = tuple(
            next(a for a in outputs if a.kind == kind)
            for kind in step.outputs
        )
        for artifact in ordered:
            state.artifacts.add(artifact)
        summary = ",".join(
            f"{artifact.kind}={artifact.sha256[:12]}" for artifact in ordered
        )
        state.custody.record_event(
            f"step {step.step_id} completed (attempt {attempt}); "
            f"produced {summary}",
            time=state.clock.now,
        )
        return StepOutcome(
            step_id=step.step_id,
            status=StepStatus.COMPLETED,
            attempts=attempt,
            finished_at=state.clock.now,
            outputs=ordered,
        )

    def _exhausted(
        self,
        state: _RunState,
        step: StepSpec,
        attempt: int,
        error: Exception,
    ) -> StepOutcome:
        if step.on_failure is OnFailure.SKIP_WITH_PARTIAL_CONFIDENCE:
            detail = f"degraded after {attempt} attempts: {error}"
            state.custody.record_event(
                f"step {step.step_id} skipped with partial confidence "
                f"({detail})",
                time=state.clock.now,
            )
            return StepOutcome(
                step_id=step.step_id,
                status=StepStatus.SKIPPED,
                attempts=attempt,
                detail=detail,
                finished_at=state.clock.now,
            )
        reason = (
            f"step {step.step_id} failed after {attempt} attempts: {error}"
        )
        state.aborted = True
        state.suppressed = True
        state.suppression_reason = reason
        state.custody.record_event(
            f"step {step.step_id} failed; run aborted and evidence "
            f"suppressed ({reason})",
            time=state.clock.now,
        )
        return StepOutcome(
            step_id=step.step_id,
            status=StepStatus.FAILED,
            attempts=attempt,
            detail=reason,
            finished_at=state.clock.now,
        )

    def _legal_abort(
        self,
        state: _RunState,
        step: StepSpec,
        attempt: int,
        violation: InsufficientProcess,
    ) -> StepOutcome:
        """A legal violation is never retried: abort and suppress."""
        reason = f"legal violation in step {step.step_id}: {violation}"
        state.aborted = True
        state.suppressed = True
        state.suppression_reason = reason
        state.custody.record_event(
            f"step {step.step_id} committed a legal violation; run "
            f"aborted and evidence suppressed ({reason})",
            time=state.clock.now,
        )
        return StepOutcome(
            step_id=step.step_id,
            status=StepStatus.FAILED,
            attempts=attempt,
            detail=reason,
            finished_at=state.clock.now,
        )

    def _persist_run(
        self, subject: Subject, seed: int, state: _RunState
    ) -> None:
        """Persist custody and the suppression verdict to the ledger.

        Runs at the same boundary the run-complete journal record is
        written (or re-verified on resume), so the ledger and journal
        always agree on what the run produced.  Keys are deterministic
        in (workflow, subject, seed): resuming or replaying a run
        upserts rather than duplicating.
        """
        ledger = self.ledger
        assert ledger is not None
        run_key = f"workflow/{self.spec.name}/{subject.subject_id}/seed-{seed}"
        ledger.record_custody(f"{run_key}/custody", state.custody)
        ledger.record_suppression(
            evidence_key=f"{run_key}/evidence",
            fingerprint=subject.action.fingerprint(),
            outcome="suppressed" if state.suppressed else "admissible",
            reason=state.suppression_reason,
            run_label=run_key,
        )
        if obs.OBS.enabled:
            obs.OBS.registry.counter(
                "repro_ledger_workflow_writes_total",
                "Workflow runs persisted to a ledger by the engine.",
            ).inc()

    # -- journal records ---------------------------------------------------------

    def _run_start_record(
        self,
        subject: Subject,
        seed: int,
        injector: FaultInjector | None,
        state: _RunState,
    ) -> dict[str, object]:
        return {
            "kind": "run-start",
            "journal_version": JOURNAL_VERSION,
            "workflow": self.spec.name,
            "spec_digest": self.spec.spec_digest(),
            "seed": seed,
            "subject_id": subject.subject_id,
            "subject_fingerprint_sha256": sha256_hex(subject.fingerprint),
            "fault_plan_digest": (
                sha256_hex(injector.plan.describe())
                if injector is not None
                else ""
            ),
            "held_process": int(self.spec.held_process),
            "started_at": 0.0,
            "custody": [
                custody_to_record(entry) for entry in state.custody.entries
            ],
        }

    def _step_record(
        self,
        step: StepSpec,
        outcome: StepOutcome,
        custody_delta: tuple,
        injector: FaultInjector | None,
        fault_log_delta: tuple[dict[str, object], ...],
        input_hashes: tuple[tuple[str, str], ...] = (),
        span_ids: tuple[int, ...] = (),
    ) -> dict[str, object]:
        return {
            "kind": "step",
            "step_id": step.step_id,
            "status": outcome.status.value,
            "attempts": outcome.attempts,
            "detail": outcome.detail,
            "started_at": outcome.started_at,
            "finished_at": outcome.finished_at,
            "inputs": [[kind, digest] for kind, digest in input_hashes],
            "outputs": [
                artifact_to_record(artifact) for artifact in outcome.outputs
            ],
            "custody": [
                custody_to_record(entry) for entry in custody_delta
            ],
            "span_ids": list(span_ids),
            "fault_draws": (
                injector.draw_counts() if injector is not None else {}
            ),
            "fault_consults": (
                injector.consultation_counts()
                if injector is not None
                else {}
            ),
            "fault_log": list(fault_log_delta),
        }

    def _run_complete_record(
        self, state: _RunState, report_text: str
    ) -> dict[str, object]:
        return {
            "kind": "run-complete",
            "status": "aborted" if state.aborted else "completed",
            "finished_at": state.clock.now,
            "artifact_digest": state.artifacts.digest(),
            "custody_digest": custody_digest(state.custody.entries),
            "report_sha256": sha256_hex(report_text),
            "suppressed": state.suppressed,
            "suppression_reason": state.suppression_reason,
        }

    # -- resume ------------------------------------------------------------------

    def _restore(
        self,
        records: list[dict[str, object]],
        subject: Subject,
        seed: int,
        injector: FaultInjector | None,
        state: _RunState,
        done: dict[str, StepOutcome],
    ) -> dict[str, object] | None:
        """Rebuild run state from journal records.

        Returns the run-complete record if the journaled run had already
        finished, else ``None``.
        """
        start = RunStart.parse(records[0])
        if start.spec_digest != self.spec.spec_digest():
            raise JournalError(
                "journal was written by a different workflow spec "
                f"(digest {start.spec_digest[:12]}… vs "
                f"{self.spec.spec_digest()[:12]}…)"
            )
        if start.seed != seed:
            raise JournalError(
                f"journal seed {start.seed} does not match resume seed {seed}"
            )
        if start.subject_fingerprint_sha256 != sha256_hex(subject.fingerprint):
            raise JournalError(
                "journal subject fingerprint does not match the rebuilt "
                "subject — resuming over different evidence is forbidden"
            )
        expected_plan = (
            sha256_hex(injector.plan.describe()) if injector is not None else ""
        )
        if start.fault_plan_digest != expected_plan:
            raise JournalError(
                "journal fault plan does not match the resume fault plan"
            )

        entries = list(start.custody)
        last_time = 0.0
        last_draws: dict[str, int] = {}
        last_consults: dict[str, int] = {}
        adopted: list[dict[str, object]] = []
        complete: dict[str, object] | None = None
        for record in records[1:]:
            kind = record.get("kind")
            if kind == "run-complete":
                complete = record
                continue
            if kind != "step":
                raise JournalError(f"unknown journal record kind: {kind!r}")
            outputs = tuple(
                artifact_from_record(entry)
                for entry in record.get("outputs", [])  # type: ignore[union-attr]
            )
            for artifact in outputs:
                state.artifacts.add(artifact)
            outcome = StepOutcome(
                step_id=str(record["step_id"]),
                status=StepStatus(str(record["status"])),
                attempts=int(record["attempts"]),  # type: ignore[arg-type]
                detail=str(record["detail"]),
                started_at=float(record["started_at"]),  # type: ignore[arg-type]
                finished_at=float(record["finished_at"]),  # type: ignore[arg-type]
                outputs=outputs,
                restored=True,
            )
            done[outcome.step_id] = outcome
            entries.extend(
                custody_from_record(entry)
                for entry in record.get("custody", [])  # type: ignore[union-attr]
            )
            last_time = outcome.finished_at
            last_draws = dict(record.get("fault_draws", {}))  # type: ignore[arg-type]
            last_consults = dict(record.get("fault_consults", {}))  # type: ignore[arg-type]
            adopted.extend(record.get("fault_log", []))  # type: ignore[arg-type]
            if outcome.status is StepStatus.FAILED:
                state.aborted = True
                state.suppressed = True
                state.suppression_reason = outcome.detail

        state.clock.now = last_time
        state.custody = ChainOfCustody.restore(
            state.custody.item, tuple(entries)
        )
        if injector is not None:
            injector.fast_forward(last_draws, last_consults)
            injector.adopt_log(adopted)
        return complete

    def _render(self, subject: Subject, state: _RunState) -> str:
        return render_report(
            spec=self.spec,
            subject=subject,
            status="aborted" if state.aborted else "completed",
            outcomes=tuple(state.outcomes),
            artifacts=state.artifacts,
            custody=state.custody,
            finished_at=state.clock.now,
            suppressed=state.suppressed,
            suppression_reason=state.suppression_reason,
        )

    def _check_complete_marker(
        self,
        marker: dict[str, object],
        state: _RunState,
        report_text: str,
    ) -> None:
        """Cross-check a journaled run-complete against rebuilt state.

        Raises:
            JournalError: If the rebuilt run diverges from what the
                original run recorded at completion.
        """
        expected = str(marker.get("report_sha256", ""))
        actual = sha256_hex(report_text)
        if expected and expected != actual:
            raise JournalError(
                f"rebuilt report hash {actual[:12]}… does not match the "
                f"journaled completion hash {expected[:12]}…"
            )
