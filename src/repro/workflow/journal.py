"""The append-only run journal and its crash model.

Every record is one canonical JSON line (sorted keys, no whitespace),
flushed and fsynced before the engine proceeds — a journal is only
useful if the record for a step provably hit disk before the next step
ran.  Three record kinds exist:

``run-start``
    Workflow identity (spec digest), run seed, subject fingerprint, and
    the intake custody entries.  A resume refuses a journal whose
    identity does not match what it was asked to resume.
``step``
    One step's terminal status for this run: completed (with its output
    artifacts inlined base64, so resume rehydrates them without
    re-executing), skipped, or failed.  The record also carries the
    custody-entry delta, obs span ids, and the fault injector's
    cumulative draw counts — the bookmark that lets a resumed run
    fast-forward a fresh injector to the exact RNG stream positions of
    the interrupted one.
``run-complete``
    Final digests (report, artifact set, custody chain) and the
    suppression outcome.

Crashes are injected *at record boundaries*: a :class:`Journal` built
with ``crash_after=N`` raises :class:`WorkflowCrash` immediately after
the Nth record is durably written.  That makes "kill after every journal
record, resume, compare" an exhaustive sweep of the recovery surface.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import os
from pathlib import Path

from repro.evidence.custody import CustodyEntry
from repro.workflow.artifacts import Artifact

#: Bumped when the record schema changes incompatibly.
JOURNAL_VERSION = 1


class WorkflowCrash(RuntimeError):
    """The injected crash: the process dies at a record boundary."""


class JournalError(Exception):
    """The journal is unreadable, inconsistent, or mismatched."""


class Journal:
    """Append-only JSONL sink with an optional injected crash point.

    Args:
        path: Journal file; ``None`` keeps records in memory only
            (useful for tests that never resume).
        crash_after: Raise :class:`WorkflowCrash` once this many records
            exist *in total* (pre-existing records from a resumed file
            count toward the total).
        existing: How many records the file already holds.
    """

    def __init__(
        self,
        path: Path | None,
        crash_after: int | None = None,
        existing: int = 0,
    ) -> None:
        self.path = path
        self.crash_after = crash_after
        self.records_written = existing
        self._memory: list[dict[str, object]] = []

    def append(self, record: dict[str, object]) -> None:
        """Durably append one record, then honour the crash point.

        The crash fires *after* the write lands — the record survives,
        the process does not — which is the worst case resume has to
        handle and therefore the one worth injecting.
        """
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        else:
            self._memory.append(record)
        self.records_written += 1
        if (
            self.crash_after is not None
            and self.records_written >= self.crash_after
        ):
            raise WorkflowCrash(
                f"injected crash after journal record "
                f"{self.records_written}"
            )

    @property
    def memory_records(self) -> tuple[dict[str, object], ...]:
        """Records held by a memory-only journal."""
        return tuple(self._memory)


def load_journal(path: Path) -> list[dict[str, object]]:
    """Read a journal back, tolerating a torn final line.

    A crash mid-write can leave a truncated last line; that line is
    discarded (its step will simply re-run).  A malformed line anywhere
    *else* means corruption, which is an error — silently skipping
    interior records would fabricate history.

    Raises:
        JournalError: On a missing file or interior corruption.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise JournalError(f"cannot read journal {path}: {error}") from error
    records: list[dict[str, object]] = []
    lines = text.splitlines()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            if index == len(lines) - 1:
                break
            raise JournalError(
                f"corrupt journal record at line {index + 1} of {path}"
            ) from error
    return records


# -- serialization helpers ----------------------------------------------------


def artifact_to_record(artifact: Artifact) -> dict[str, object]:
    """JSON-ready form of an artifact, content included."""
    return {
        "kind": artifact.kind,
        "sha256": artifact.sha256,
        "content_b64": base64.b64encode(artifact.content).decode("ascii"),
        "meta": [list(pair) for pair in artifact.meta],
        "produced_by": artifact.produced_by,
    }


def artifact_from_record(record: dict[str, object]) -> Artifact:
    """Rehydrate an artifact; verifies the recorded hash.

    Raises:
        JournalError: If the decoded content does not match the recorded
            SHA-256 — a corrupt journal must not quietly resurrect
            corrupt evidence.
    """
    content = base64.b64decode(str(record["content_b64"]))
    artifact = Artifact(
        kind=str(record["kind"]),
        content=content,
        meta=tuple(
            (str(key), str(value))
            for key, value in record.get("meta", [])  # type: ignore[union-attr]
        ),
        produced_by=str(record.get("produced_by", "")),
    )
    if artifact.sha256 != record["sha256"]:
        raise JournalError(
            f"artifact {artifact.kind!r} content hash mismatch on resume: "
            f"journal says {record['sha256']}, content is {artifact.sha256}"
        )
    return artifact


def custody_to_record(entry: CustodyEntry) -> dict[str, object]:
    """JSON-ready form of one custody entry."""
    return {
        "t": entry.timestamp,
        "custodian": entry.custodian,
        "event": entry.event,
        "hash": entry.content_hash,
    }


def custody_from_record(record: dict[str, object]) -> CustodyEntry:
    """Rehydrate one custody entry."""
    return CustodyEntry(
        timestamp=float(record["t"]),  # type: ignore[arg-type]
        custodian=str(record["custodian"]),
        event=str(record["event"]),
        content_hash=str(record["hash"]),
    )


@dataclasses.dataclass(frozen=True)
class RunStart:
    """Parsed view of a ``run-start`` record."""

    workflow: str
    spec_digest: str
    seed: int
    subject_id: str
    subject_fingerprint_sha256: str
    fault_plan_digest: str
    custody: tuple[CustodyEntry, ...]

    @classmethod
    def parse(cls, record: dict[str, object]) -> RunStart:
        """Parse and validate a run-start record.

        Raises:
            JournalError: On the wrong record kind or journal version.
        """
        if record.get("kind") != "run-start":
            raise JournalError(
                f"journal does not start with run-start: {record.get('kind')!r}"
            )
        if record.get("journal_version") != JOURNAL_VERSION:
            raise JournalError(
                f"journal version {record.get('journal_version')!r} is not "
                f"{JOURNAL_VERSION}"
            )
        return cls(
            workflow=str(record["workflow"]),
            spec_digest=str(record["spec_digest"]),
            seed=int(record["seed"]),  # type: ignore[arg-type]
            subject_id=str(record["subject_id"]),
            subject_fingerprint_sha256=str(
                record["subject_fingerprint_sha256"]
            ),
            fault_plan_digest=str(record.get("fault_plan_digest", "")),
            custody=tuple(
                custody_from_record(entry)
                for entry in record.get("custody", [])  # type: ignore[union-attr]
            ),
        )
