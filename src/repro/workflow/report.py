"""Run results and the deterministic final report.

The report is the byte-for-byte comparison unit of the resume
determinism gate: an uninterrupted run and a crash-resumed run of the
same workflow over the same subject must render identical bytes.  That
forces a discipline on everything in here — simulated time only (never
wall time), content hashes only (never live object ids), and sorted
ordering everywhere an ordering exists.
"""

from __future__ import annotations

import dataclasses
import enum
from pathlib import Path

from repro.evidence.custody import ChainOfCustody, CustodyEntry
from repro.storage.hashing import sha256_hex
from repro.workflow.artifacts import Artifact, ArtifactStore
from repro.workflow.context import Subject
from repro.workflow.spec import WorkflowSpec


class StepStatus(enum.Enum):
    """Terminal status of one step within one run."""

    COMPLETED = "completed"
    SKIPPED = "skipped"
    FAILED = "failed"
    NOT_RUN = "not-run"


@dataclasses.dataclass(frozen=True)
class StepOutcome:
    """What happened to one step.

    Attributes:
        step_id: The step.
        status: Terminal status.
        attempts: Attempts actually made (0 for skipped/not-run).
        detail: Failure/degradation detail; empty on success.
        started_at: Sim time the first attempt started.
        finished_at: Sim time the step reached its terminal status.
        outputs: Artifacts produced (completed steps only).
        restored: Whether this outcome was restored from a journal
            rather than executed in this process (excluded from every
            comparison — a restored run must be indistinguishable).
    """

    step_id: str
    status: StepStatus
    attempts: int = 0
    detail: str = ""
    started_at: float = 0.0
    finished_at: float = 0.0
    outputs: tuple[Artifact, ...] = ()
    restored: bool = dataclasses.field(default=False, compare=False)


@dataclasses.dataclass
class RunResult:
    """Everything one workflow run produced."""

    workflow: str
    subject_id: str
    status: str
    outcomes: tuple[StepOutcome, ...]
    artifacts: ArtifactStore
    custody: ChainOfCustody
    finished_at: float
    suppressed: bool
    suppression_reason: str
    report_text: str
    journal_path: Path | None
    resumed: bool = False

    @property
    def report_sha256(self) -> str:
        """Hex digest of the final report bytes."""
        return sha256_hex(self.report_text)

    def outcome(self, step_id: str) -> StepOutcome:
        """One step's outcome.

        Raises:
            KeyError: If the run has no such step.
        """
        for outcome in self.outcomes:
            if outcome.step_id == step_id:
                return outcome
        raise KeyError(f"no outcome for step {step_id!r}")


def custody_lines(entries: tuple[CustodyEntry, ...]) -> tuple[str, ...]:
    """Canonical one-line renderings of custody entries, in log order."""
    return tuple(
        f"t={entry.timestamp:.6f} custodian={entry.custodian} "
        f"hash={entry.content_hash} event={entry.event}"
        for entry in entries
    )


def custody_digest(entries: tuple[CustodyEntry, ...]) -> str:
    """SHA-256 over the canonical custody log."""
    return sha256_hex("\n".join(custody_lines(entries)))


def run_confidence(outcomes: tuple[StepOutcome, ...]) -> float:
    """Fraction of steps that completed — the run's blunt confidence.

    A skipped step (degraded per policy) costs confidence without
    killing the run; failed and not-run steps count the same way.
    """
    if not outcomes:
        return 0.0
    completed = sum(
        1 for outcome in outcomes if outcome.status is StepStatus.COMPLETED
    )
    return completed / len(outcomes)


def render_report(
    spec: WorkflowSpec,
    subject: Subject,
    status: str,
    outcomes: tuple[StepOutcome, ...],
    artifacts: ArtifactStore,
    custody: ChainOfCustody,
    finished_at: float,
    suppressed: bool,
    suppression_reason: str,
) -> str:
    """Render the deterministic final report for one run."""
    lines = [
        f"workflow report: {spec.name} v{spec.version}",
        f"spec digest: {spec.spec_digest()}",
        f"subject: {subject.subject_id} — {subject.description}",
        f"subject fingerprint sha256: {sha256_hex(subject.fingerprint)}",
        "declared instruments: "
        + (
            ", ".join(kind.display_name for kind in spec.instruments)
            or "none"
        ),
        f"status: {status}",
        f"sim time at completion: {finished_at:.6f}",
        f"confidence: {run_confidence(outcomes):.4f} "
        f"({sum(1 for o in outcomes if o.status is StepStatus.COMPLETED)}"
        f"/{len(outcomes)} steps completed)",
    ]
    if suppressed:
        lines.append(f"EVIDENCE SUPPRESSED: {suppression_reason}")
    lines.append("")
    lines.append("steps:")
    for outcome in outcomes:
        step = spec.step(outcome.step_id)
        marker = {
            StepStatus.COMPLETED: "ok",
            StepStatus.SKIPPED: "skip",
            StepStatus.FAILED: "FAIL",
            StepStatus.NOT_RUN: "----",
        }[outcome.status]
        line = (
            f"  [{marker:>4}] {outcome.step_id:<22} {step.title} "
            f"attempts={outcome.attempts} "
            f"t={outcome.started_at:.6f}..{outcome.finished_at:.6f}"
        )
        if outcome.detail:
            line += f" ({outcome.detail})"
        lines.append(line)
    lines.append("")
    lines.append(f"artifacts ({len(artifacts)}):")
    for artifact in artifacts.artifacts():
        lines.append(f"  {artifact.describe()}")
    lines.append("")
    entries = custody.entries
    lines.append(
        f"chain of custody ({len(entries)} entries, "
        f"intact={custody.intact()}):"
    )
    for line in custody_lines(entries):
        lines.append(f"  {line}")
    lines.append("")
    lines.append(f"artifact set digest: {artifacts.digest()}")
    lines.append(f"custody digest: {custody_digest(entries)}")
    return "\n".join(lines) + "\n"
