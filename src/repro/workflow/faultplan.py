"""Parsing ``--fault-plan`` directives into crash points and injectors.

A workflow fault plan is a comma/semicolon-separated list of
``key=value`` tokens::

    crash-after-record=3
    storage-read=0.05,storage-bitrot=0.01,fault-seed=7
    crash-after-record=4;storage-read=0.1

Two distinct mechanisms hide behind one flag because they fail runs at
different layers: ``crash-after-record`` kills the *process* at a
journal boundary (the resume path's concern), while the ``storage-*``
probabilities build a :class:`~repro.faults.plan.FaultPlan` whose
injector makes the *substrate* misbehave (the retry/degradation path's
concern).  Keeping crash injection out of :class:`FaultKind` is
deliberate — a new kind would perturb every existing randomized chaos
plan's draw sequences.
"""

from __future__ import annotations

import dataclasses
import re

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

_TOKEN = re.compile(r"^([a-z-]+)=([0-9.]+)$")


class FaultPlanSyntaxError(ValueError):
    """A ``--fault-plan`` directive could not be parsed."""


@dataclasses.dataclass(frozen=True)
class WorkflowFaultPlan:
    """Crash point plus substrate fault probabilities for one run."""

    crash_after_record: int | None = None
    storage_read_probability: float = 0.0
    storage_bitrot_probability: float = 0.0
    fault_seed: int = 0

    @property
    def has_injector(self) -> bool:
        """Whether any substrate fault source is active."""
        return (
            self.storage_read_probability > 0
            or self.storage_bitrot_probability > 0
        )

    def build_fault_plan(self) -> FaultPlan:
        """The injector-facing plan for the substrate fault sources."""
        specs: list[FaultSpec] = []
        if self.storage_read_probability > 0:
            specs.append(
                FaultSpec(
                    kind=FaultKind.STORAGE_READ_ERROR,
                    probability=self.storage_read_probability,
                )
            )
        if self.storage_bitrot_probability > 0:
            specs.append(
                FaultSpec(
                    kind=FaultKind.STORAGE_BIT_ROT,
                    probability=self.storage_bitrot_probability,
                )
            )
        return FaultPlan(seed=self.fault_seed, specs=tuple(specs))

    def build_injector(self) -> FaultInjector | None:
        """A fresh injector, or ``None`` when no fault source is active.

        Each run (and each resume) must build its *own* injector so RNG
        streams start from the plan seed; resume then fast-forwards.
        """
        if not self.has_injector:
            return None
        return FaultInjector(self.build_fault_plan())

    def describe(self) -> str:
        """Stable one-line rendering, parseable back by :func:`parse`."""
        parts: list[str] = []
        if self.crash_after_record is not None:
            parts.append(f"crash-after-record={self.crash_after_record}")
        if self.storage_read_probability > 0:
            parts.append(f"storage-read={self.storage_read_probability}")
        if self.storage_bitrot_probability > 0:
            parts.append(
                f"storage-bitrot={self.storage_bitrot_probability}"
            )
        if self.has_injector:
            parts.append(f"fault-seed={self.fault_seed}")
        return ",".join(parts) or "none"


def parse_fault_plan(text: str) -> WorkflowFaultPlan:
    """Parse a ``--fault-plan`` directive.

    Raises:
        FaultPlanSyntaxError: On an unknown key or malformed token.
    """
    crash_after: int | None = None
    read_p = 0.0
    bitrot_p = 0.0
    seed = 0
    for raw in re.split(r"[,;]", text):
        token = raw.strip()
        if not token or token == "none":
            continue
        match = _TOKEN.match(token)
        if match is None:
            raise FaultPlanSyntaxError(
                f"malformed fault-plan token {token!r}; expected key=value"
            )
        key, value = match.groups()
        if key == "crash-after-record":
            crash_after = int(float(value))
            if crash_after < 1:
                raise FaultPlanSyntaxError(
                    "crash-after-record must be >= 1"
                )
        elif key == "storage-read":
            read_p = float(value)
        elif key == "storage-bitrot":
            bitrot_p = float(value)
        elif key == "fault-seed":
            seed = int(float(value))
        else:
            raise FaultPlanSyntaxError(
                f"unknown fault-plan key {key!r}; known keys: "
                "crash-after-record, storage-read, storage-bitrot, "
                "fault-seed"
            )
    return WorkflowFaultPlan(
        crash_after_record=crash_after,
        storage_read_probability=read_p,
        storage_bitrot_probability=bitrot_p,
        fault_seed=seed,
    )
