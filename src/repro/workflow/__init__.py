"""Crash-resumable evidence workflows with journaled checkpoints.

The paper's thesis is procedural: every acquisition must clear a legal
gate, and one slip poisons everything downstream.  This package is the
engineering answer a real lab gives to that fragility — a declarative
DAG of typed steps (:mod:`repro.workflow.spec`) whose legal bases are
statically checked before anything runs, executed under per-step retry
and degradation policies (:mod:`repro.workflow.engine`), with every
step boundary durably journaled (:mod:`repro.workflow.journal`) so a
crashed or fault-killed run resumes byte-identically
(:mod:`repro.workflow.verify` proves it at every boundary).  Scenario
packs live in :mod:`repro.workflow.packs`; batch fan-out across
evidence items in :mod:`repro.workflow.parallel`.
"""

from __future__ import annotations

from repro.workflow.artifacts import Artifact, ArtifactStore
from repro.workflow.context import (
    SimClock,
    StepContext,
    StepFailure,
    Subject,
)
from repro.workflow.engine import (
    StepTimeout,
    WorkflowEngine,
    WorkflowLegalityError,
)
from repro.workflow.faultplan import (
    FaultPlanSyntaxError,
    WorkflowFaultPlan,
    parse_fault_plan,
)
from repro.workflow.journal import (
    JOURNAL_VERSION,
    Journal,
    JournalError,
    WorkflowCrash,
    load_journal,
)
from repro.workflow.report import (
    RunResult,
    StepOutcome,
    StepStatus,
    custody_digest,
    render_report,
)
from repro.workflow.spec import (
    OnFailure,
    StepSpec,
    WorkflowDefinitionError,
    WorkflowSpec,
)

__all__ = [
    "JOURNAL_VERSION",
    "Artifact",
    "ArtifactStore",
    "FaultPlanSyntaxError",
    "Journal",
    "JournalError",
    "OnFailure",
    "RunResult",
    "SimClock",
    "StepContext",
    "StepFailure",
    "StepOutcome",
    "StepSpec",
    "StepStatus",
    "StepTimeout",
    "Subject",
    "WorkflowCrash",
    "WorkflowDefinitionError",
    "WorkflowEngine",
    "WorkflowFaultPlan",
    "WorkflowLegalityError",
    "WorkflowSpec",
    "custody_digest",
    "load_journal",
    "parse_fault_plan",
    "render_report",
]
