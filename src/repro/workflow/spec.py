"""The declarative workflow DSL: typed steps wired into a DAG.

A :class:`WorkflowSpec` is pure data about *what* an investigation will
do: each :class:`StepSpec` declares the artifact kinds it consumes and
produces (the DAG edges), its retry policy, its sim-time timeout, its
degradation policy, and — for acquisition steps — the
:class:`~repro.core.action.InvestigativeAction` that is its legal basis.
Because the spec is declarative, :meth:`WorkflowSpec.to_plan` can
compile the gated steps into the :mod:`repro.analysis` plan IR and run
the :class:`~repro.analysis.plan_checker.PlanAnalyzer` over them *before
anything executes* — an unlawful workflow is rejected at submission
time, not discovered at the suppression hearing.
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Callable

from repro.analysis.plan import Plan, PlanStep
from repro.core.action import InvestigativeAction
from repro.core.enums import ProcessKind
from repro.faults.retry import RetryPolicy
from repro.storage.hashing import sha256_hex
from repro.workflow.artifacts import Artifact
from repro.workflow.context import StepContext


class WorkflowDefinitionError(Exception):
    """The workflow spec itself is malformed (not a runtime failure)."""


class OnFailure(enum.Enum):
    """What the engine does when a step exhausts its retries.

    The three policies are the paper's three postures toward a failed
    procedural step: keep trying within bounds, degrade to a
    partial-confidence result, or treat the failure as fatal to the
    evidence and suppress everything downstream.
    """

    RETRY_THEN_ABORT = "retry-then-abort"
    SKIP_WITH_PARTIAL_CONFIDENCE = "skip-with-partial-confidence"
    ABORT_AND_SUPPRESS = "abort-and-suppress"


@dataclasses.dataclass(frozen=True)
class StepSpec:
    """One typed step of a workflow.

    Attributes:
        step_id: Unique id within the workflow.
        title: Human-readable step name for reports.
        run: The step body; receives a
            :class:`~repro.workflow.context.StepContext` and returns the
            declared output artifacts.
        inputs: Artifact kinds this step consumes — each must be
            produced by an earlier step.
        outputs: Artifact kinds this step produces — each unique across
            the workflow.
        legal_action: The declared legal basis, for acquisition steps;
            ``None`` marks a pure-analysis step that touches nothing new.
        gate: The process the step's body will demand via
            ``ctx.require_process`` — recorded so the spec digest
            captures the declared gate.
        retry: Backoff policy for failed attempts.
        timeout: Sim-seconds one attempt may consume before it counts as
            failed.
        sim_cost: Sim-seconds the engine charges per attempt.
        on_failure: Degradation policy once retries are exhausted.
    """

    step_id: str
    title: str
    run: Callable[[StepContext], tuple[Artifact, ...]]
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    legal_action: InvestigativeAction | None = None
    gate: ProcessKind = ProcessKind.NONE
    retry: RetryPolicy = dataclasses.field(default_factory=RetryPolicy)
    timeout: float = 3600.0
    sim_cost: float = 1.0
    on_failure: OnFailure = OnFailure.RETRY_THEN_ABORT

    def __post_init__(self) -> None:
        if not self.step_id:
            raise WorkflowDefinitionError("step_id must be non-empty")
        if not self.outputs:
            raise WorkflowDefinitionError(
                f"step {self.step_id!r} declares no outputs"
            )
        if self.timeout <= 0:
            raise WorkflowDefinitionError(
                f"step {self.step_id!r} timeout must be positive"
            )
        if self.sim_cost < 0:
            raise WorkflowDefinitionError(
                f"step {self.step_id!r} sim_cost must be >= 0"
            )
        if len(set(self.outputs)) != len(self.outputs):
            raise WorkflowDefinitionError(
                f"step {self.step_id!r} declares duplicate outputs"
            )

    @property
    def gated(self) -> bool:
        """Whether this step performs a legally gated acquisition."""
        return self.legal_action is not None

    def describe(self) -> str:
        """A stable one-line description for the spec digest."""
        retry = self.retry
        legal = (
            self.legal_action.description if self.legal_action else "-"
        )
        return (
            f"step {self.step_id}: in={','.join(self.inputs) or '-'} "
            f"out={','.join(self.outputs)} gate={self.gate.name} "
            f"retry=({retry.max_attempts},{retry.base_delay},"
            f"{retry.multiplier},{retry.max_delay},{retry.jitter},"
            f"{retry.jitter_seed},{retry.max_total_backoff}) "
            f"timeout={self.timeout} cost={self.sim_cost} "
            f"on_failure={self.on_failure.value} legal={legal}"
        )


@dataclasses.dataclass(frozen=True)
class WorkflowSpec:
    """An ordered DAG of typed steps plus declared instruments.

    Steps are declared in topological order: every input kind must be
    produced by an earlier step.  ``instruments`` are the legal-process
    instruments the investigator declares they will hold for the whole
    run — the same contract as :class:`~repro.analysis.plan.Plan`.
    """

    name: str
    steps: tuple[StepSpec, ...]
    instruments: tuple[ProcessKind, ...] = ()
    version: str = "1"

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkflowDefinitionError("workflow name must be non-empty")
        if not self.steps:
            raise WorkflowDefinitionError("workflow has no steps")
        seen_ids: set[str] = set()
        producers: dict[str, str] = {}
        for step in self.steps:
            if step.step_id in seen_ids:
                raise WorkflowDefinitionError(
                    f"duplicate step id: {step.step_id!r}"
                )
            seen_ids.add(step.step_id)
            for kind in step.inputs:
                if kind not in producers:
                    raise WorkflowDefinitionError(
                        f"step {step.step_id!r} input {kind!r} is not "
                        f"produced by an earlier step"
                    )
            for kind in step.outputs:
                if kind in producers:
                    raise WorkflowDefinitionError(
                        f"artifact kind {kind!r} produced by both "
                        f"{producers[kind]!r} and {step.step_id!r}"
                    )
                producers[kind] = step.step_id
        for step in self.steps:
            if step.gated and not self.held_process.satisfies(step.gate):
                # Declared instruments visibly below a declared gate is a
                # definition error; a *legal* shortfall (gate below what
                # the law actually requires) is the PlanAnalyzer's job.
                raise WorkflowDefinitionError(
                    f"step {step.step_id!r} gates on {step.gate.name} but "
                    f"the workflow declares only "
                    f"{self.held_process.display_name}"
                )

    @property
    def held_process(self) -> ProcessKind:
        """The strongest declared instrument."""
        return max(self.instruments, default=ProcessKind.NONE)

    def step(self, step_id: str) -> StepSpec:
        """Look one step up by id.

        Raises:
            KeyError: If no step has this id.
        """
        for candidate in self.steps:
            if candidate.step_id == step_id:
                return candidate
        raise KeyError(f"no step {step_id!r} in workflow {self.name!r}")

    def producers(self) -> dict[str, str]:
        """Artifact kind → producing step id."""
        return {
            kind: step.step_id
            for step in self.steps
            for kind in step.outputs
        }

    def dependencies(self, step_id: str) -> tuple[str, ...]:
        """Ids of the steps whose outputs ``step_id`` consumes directly."""
        producers = self.producers()
        step = self.step(step_id)
        seen: list[str] = []
        for kind in step.inputs:
            producer = producers[kind]
            if producer not in seen:
                seen.append(producer)
        return tuple(seen)

    def transitive_dependencies(self, step_id: str) -> tuple[str, ...]:
        """All upstream step ids, in declaration order."""
        upstream: set[str] = set()
        frontier = list(self.dependencies(step_id))
        while frontier:
            current = frontier.pop()
            if current in upstream:
                continue
            upstream.add(current)
            frontier.extend(self.dependencies(current))
        return tuple(
            step.step_id
            for step in self.steps
            if step.step_id in upstream
        )

    def gated_steps(self) -> tuple[StepSpec, ...]:
        """The steps with a declared legal basis, in order."""
        return tuple(step for step in self.steps if step.gated)

    def to_plan(self) -> Plan:
        """Compile the gated steps into the static checker's plan IR.

        Evidence edges follow the artifact DAG: a gated step ``uses``
        every gated step among its transitive dependencies, so taint
        from an unlawful upstream acquisition propagates exactly as the
        artifacts do.
        """
        gated = self.gated_steps()
        numbers = {
            step.step_id: number for number, step in enumerate(gated, 1)
        }
        plan_steps = []
        for step in gated:
            action = step.legal_action
            assert action is not None  # gated_steps() guarantees it
            uses = tuple(
                numbers[upstream]
                for upstream in self.transitive_dependencies(step.step_id)
                if upstream in numbers
            )
            plan_steps.append(
                PlanStep(action=action, uses=uses, note=step.step_id)
            )
        return Plan(
            name=f"workflow:{self.name}",
            steps=tuple(plan_steps),
            instruments=self.instruments,
        )

    def describe(self) -> str:
        """A stable multi-line description of the whole workflow."""
        lines = [
            f"workflow {self.name} v{self.version}",
            "instruments: "
            + (
                ",".join(kind.name for kind in self.instruments)
                or "none"
            ),
        ]
        lines.extend(step.describe() for step in self.steps)
        return "\n".join(lines)

    def spec_digest(self) -> str:
        """SHA-256 of the description — the journal's compatibility key.

        A resumed run refuses a journal whose digest differs: replaying
        half of one workflow under the structure of another can only
        corrupt evidence.
        """
        return sha256_hex(self.describe())
