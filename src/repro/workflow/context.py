"""What a running step can see and do.

A step body receives exactly one argument — a :class:`StepContext` —
and everything it may legitimately touch hangs off it: its declared
input artifacts, a per-step seeded RNG, the simulation clock, the run's
fault injector, and — crucially — :meth:`StepContext.require_process`,
the legal gate an acquisition step must clear before touching the
substrate.  The gate raises
:class:`~repro.core.errors.InsufficientProcess` when the workflow's
declared instruments do not cover the requirement, and the engine turns
that into abort-and-suppress: a procedural slip poisons the run, exactly
the paper's point.
"""

from __future__ import annotations

import dataclasses
import random
import zlib
from typing import Any

from repro.core.action import InvestigativeAction
from repro.core.enums import ProcessKind
from repro.core.errors import InsufficientProcess
from repro.faults.errors import TransientReadError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind
from repro.workflow.artifacts import Artifact


class StepFailure(Exception):
    """A step body signalling a domain failure the policy should handle."""


class SimClock:
    """The run's simulation clock; all timestamps come from here."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def advance(self, seconds: float) -> float:
        """Move simulated time forward; returns the new time.

        Raises:
            ValueError: On a negative delta — simulated time, like a
                custody log, never runs backwards.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds}")
        self.now += seconds
        return self.now


@dataclasses.dataclass(frozen=True)
class Subject:
    """One evidence item a workflow processes.

    Attributes:
        subject_id: Stable identifier (seed-derived, never a live object
            id) used in journals and reports.
        description: Human-readable description of the evidence.
        fingerprint: Canonical string content of the evidence at intake;
            its hash anchors the chain of custody.
        action: The investigative action by which the evidence came into
            custody — what the compliance engine rules on.
        payload: The domain object(s) the steps operate on (a block
            device, a mail provider, ...).
    """

    subject_id: str
    description: str
    fingerprint: str
    action: InvestigativeAction
    payload: Any


def step_rng_seed(run_seed: int, step_id: str, attempt: int) -> int:
    """A stable per-(run, step, attempt) RNG seed.

    crc32 keeps the derivation interpreter-independent, mirroring the
    fault injector's per-kind stream derivation.
    """
    return (
        run_seed * 1_000_003 + zlib.crc32(step_id.encode()) * 31 + attempt
    ) & 0x7FFFFFFF


@dataclasses.dataclass
class StepContext:
    """Everything one step attempt is allowed to touch."""

    step_id: str
    subject: Subject
    clock: SimClock
    rng: random.Random
    inputs: dict[str, Artifact]
    held_process: ProcessKind
    attempt: int
    injector: FaultInjector | None = None
    _custody_events: list[str] = dataclasses.field(default_factory=list)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    def advance(self, seconds: float) -> float:
        """Advance the run's simulation clock."""
        return self.clock.advance(seconds)

    def require_process(self, required: ProcessKind) -> ProcessKind:
        """The legal gate: assert the run holds sufficient process.

        Every acquisition step body must call this before touching the
        substrate — it is what the flow engine's REPRO110 rule looks
        for, and what makes an undeclared acquisition fail closed.

        Raises:
            InsufficientProcess: If the workflow's declared instruments
                do not satisfy ``required``.
        """
        if not self.held_process.satisfies(required):
            raise InsufficientProcess(
                required,
                self.held_process,
                f"workflow step {self.step_id!r}",
            )
        return self.held_process

    def input(self, kind: str) -> Artifact:
        """One declared input artifact.

        Raises:
            KeyError: If the step did not declare ``kind`` as an input.
        """
        return self.inputs[kind]

    def make(self, kind: str, content: bytes | str, **meta: str) -> Artifact:
        """Build an output artifact attributed to this step."""
        payload = content.encode() if isinstance(content, str) else content
        return Artifact(
            kind=kind,
            content=payload,
            meta=tuple(sorted(meta.items())),
            produced_by=self.step_id,
        )

    def note_custody(self, event: str) -> None:
        """Queue a custody-log event; the engine records it with the
        step's completion at the current step boundary."""
        self._custody_events.append(event)

    def maybe_fault(self, target: str) -> None:
        """Consult the fault injector at a named fault point.

        Substrates without built-in fault points (the mail store) call
        this so chaos plans reach them too.

        Raises:
            TransientReadError: If a ``STORAGE_READ_ERROR`` fault fires.
        """
        if self.injector is None:
            return
        if self.injector.fires(
            FaultKind.STORAGE_READ_ERROR, target=target, time=self.now
        ):
            raise TransientReadError(
                f"injected fault at {target}",
                kind=FaultKind.STORAGE_READ_ERROR,
                target=target,
                time=self.now,
            )
