"""Concurrent workflow runs across independent evidence items.

Evidence items are seed-isolated by construction — each subject, RNG
stream, and injector derives from ``(pack, item seed)`` alone — so a
batch fans out across a process pool exactly like the chaos sweep does,
with the same contract: results come back in seed order and are
byte-identical to the serial path.  Each item journals to its own file
in the batch directory, so any individual run in a batch can be crash-
resumed independently.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro import obs
from repro.workflow.engine import WorkflowEngine
from repro.workflow.faultplan import WorkflowFaultPlan, parse_fault_plan
from repro.workflow.packs import get_pack
from repro.workflow.report import RunResult


@dataclasses.dataclass(frozen=True)
class ItemSummary:
    """A picklable summary of one item's run."""

    subject_id: str
    seed: int
    status: str
    report_sha256: str
    artifact_digest: str
    custody_entries: int
    suppressed: bool
    journal: str

    @classmethod
    def of(cls, result: RunResult, seed: int) -> ItemSummary:
        return cls(
            subject_id=result.subject_id,
            seed=seed,
            status=result.status,
            report_sha256=result.report_sha256,
            artifact_digest=result.artifacts.digest(),
            custody_entries=len(result.custody.entries),
            suppressed=result.suppressed,
            journal=str(result.journal_path or ""),
        )


@dataclasses.dataclass(frozen=True)
class BatchResult:
    """Summaries for every item in a batch, in seed order."""

    pack: str
    summaries: tuple[ItemSummary, ...]

    def render(self) -> str:
        """Stable text rendering for the CLI."""
        lines = [f"workflow batch: pack={self.pack} items={len(self.summaries)}"]
        for summary in self.summaries:
            lines.append(
                f"  {summary.subject_id} seed={summary.seed} "
                f"status={summary.status} report={summary.report_sha256[:12]} "
                f"artifacts={summary.artifact_digest[:12]} "
                f"custody={summary.custody_entries}"
                + (" SUPPRESSED" if summary.suppressed else "")
            )
        return "\n".join(lines) + "\n"


def _item_worker(
    task: tuple[str, int, str, str],
) -> ItemSummary:
    """Run one evidence item; module-level so the pool can pickle it."""
    pack_name, seed, journal_dir, fault_plan_text = task
    pack = get_pack(pack_name)
    plan = (
        parse_fault_plan(fault_plan_text)
        if fault_plan_text
        else WorkflowFaultPlan()
    )
    injector = plan.build_injector()
    subject = pack.build_subject(seed, injector)
    engine = WorkflowEngine(pack.build_spec())
    journal_path = Path(journal_dir) / f"{pack_name}-seed{seed}.jsonl"
    result = engine.run(
        subject, seed=seed, journal_path=journal_path, injector=injector
    )
    return ItemSummary.of(result, seed)


def resolve_workers(max_workers: int | None, n_items: int) -> int:
    """``None`` → one worker per CPU capped at the item count; < 2 → serial."""
    if max_workers is None:
        return min(n_items, os.cpu_count() or 1)
    return max(1, max_workers)


def run_batch(
    pack_name: str,
    n_items: int,
    seed: int,
    journal_dir: Path,
    max_workers: int | None = None,
    fault_plan: WorkflowFaultPlan | None = None,
) -> BatchResult:
    """Run one pack over ``n_items`` independent evidence items.

    Item seeds are ``seed, seed+1, ...``; journals land in
    ``journal_dir`` one file per item.  With fewer than two effective
    workers the batch runs serially in-process — the pool is an
    optimization, never a semantic.
    """
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1: {n_items}")
    journal_dir.mkdir(parents=True, exist_ok=True)
    plan_text = fault_plan.describe() if fault_plan is not None else ""
    if plan_text == "none":
        plan_text = ""
    tasks = [
        (pack_name, seed + offset, str(journal_dir), plan_text)
        for offset in range(n_items)
    ]
    workers = resolve_workers(max_workers, n_items)
    with obs.span("workflow.batch", pack=pack_name, items=n_items):
        if workers > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                summaries = tuple(pool.map(_item_worker, tasks))
        else:
            summaries = tuple(_item_worker(task) for task in tasks)
    return BatchResult(pack=pack_name, summaries=summaries)
