"""Nodes: hosts, routers, and the network that wires them together.

Routing is static: :meth:`Network.build_routes` computes shortest paths
(hop count, then latency) and installs per-destination next-hop tables, so
packet forwarding during simulation is a dictionary lookup.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.netsim.address import (
    IpAddress,
    IpAllocator,
    MacAddress,
    MacAllocator,
)
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import EncryptedBlob, Packet

#: A service handler: receives the host and the packet, optionally returns
#: a reply payload that the host sends back to the packet's source.
ServiceHandler = Callable[["Host", Packet], str | None]


class Node:
    """Base class for anything attachable to links."""

    def __init__(self, name: str, sim: Simulator) -> None:
        self.name = name
        self.sim = sim
        self.links: list[Link] = []
        #: Next-hop table: destination IP -> link to forward on.
        self.routes: dict[IpAddress, Link] = {}

    def attach_link(self, link: Link) -> None:
        """Register a link endpoint (called by :class:`Link`)."""
        self.links.append(link)

    def receive(self, packet: Packet, link: Link) -> None:
        """Handle an arriving packet; subclasses override."""
        raise NotImplementedError

    def forward(self, packet: Packet) -> bool:
        """Forward a packet toward its destination.

        Returns:
            ``True`` if a route existed and the packet was sent.
        """
        link = self.routes.get(packet.dst_ip)
        if link is None:
            return False
        link.transmit(packet, self)
        return True

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Router(Node):
    """A pure forwarding node."""

    def __init__(self, name: str, sim: Simulator) -> None:
        super().__init__(name, sim)
        self.forwarded_count = 0

    def receive(self, packet: Packet, link: Link) -> None:
        if self.forward(packet):
            self.forwarded_count += 1


class Host(Node):
    """An endpoint with addresses, services, and a receive log.

    Services are registered per destination port; a handler may return a
    reply payload which the host sends back automatically.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        mac: MacAddress,
        ip: IpAddress,
    ) -> None:
        super().__init__(name, sim)
        self.mac = mac
        self.ip = ip
        self.services: dict[int, ServiceHandler] = {}
        self.received: list[Packet] = []
        #: Keys this host can decrypt payloads with.
        self.keys: set[str] = set()

    def register_service(self, port: int, handler: ServiceHandler) -> None:
        """Install a handler for packets arriving on a port."""
        self.services[port] = handler

    def receive(self, packet: Packet, link: Link) -> None:
        if packet.dst_ip != self.ip:
            # Hosts do not forward traffic that is not theirs.
            return
        self.received.append(packet)
        handler = self.services.get(packet.dst_port)
        if handler is None:
            return
        reply_payload = handler(self, packet)
        if reply_payload is not None:
            self.send(packet.reply_template(reply_payload))

    def send(self, packet: Packet) -> bool:
        """Send a packet using this host's route table.

        Returns:
            ``True`` if a route existed.
        """
        return self.forward(packet)

    def send_to(
        self,
        dst: "Host",
        payload: str | EncryptedBlob,
        src_port: int = 40000,
        dst_port: int = 80,
        protocol: str = "tcp",
        flow_id: str | None = None,
    ) -> Packet:
        """Build and send a packet to another host.

        Returns:
            The packet sent (useful for matching replies in tests).

        Raises:
            RuntimeError: If no route to the destination exists.
        """
        packet = Packet(
            src_mac=self.mac,
            dst_mac=dst.mac,
            src_ip=self.ip,
            dst_ip=dst.ip,
            src_port=src_port,
            dst_port=dst_port,
            protocol=protocol,
            payload=payload,
            flow_id=flow_id,
        )
        if not self.send(packet):
            raise RuntimeError(f"{self.name}: no route to {dst.ip}")
        return packet


class Network:
    """Builds a topology and installs static shortest-path routes.

    Example::

        net = Network(seed=7)
        alice = net.add_host("alice")
        isp = net.add_router("isp")
        bob = net.add_host("bob")
        net.connect(alice, isp, latency=0.005)
        net.connect(isp, bob, latency=0.010)
        net.build_routes()
        alice.send_to(bob, "hello")
        net.sim.run()
    """

    def __init__(self, seed: int = 0, subnet: int = 10 << 24) -> None:
        import random

        self.sim = Simulator()
        self._rng = random.Random(seed)
        self._macs = MacAllocator()
        self._ips = IpAllocator(IpAddress(subnet), prefix_len=16)
        self.nodes: dict[str, Node] = {}

    def add_host(self, name: str) -> Host:
        """Create a host with fresh MAC and IP addresses."""
        self._check_name(name)
        host = Host(
            name,
            self.sim,
            mac=self._macs.allocate(),
            ip=self._ips.allocate(subscriber_id=name, time=self.sim.now),
        )
        self.nodes[name] = host
        return host

    def add_router(self, name: str) -> Router:
        """Create a forwarding-only router."""
        self._check_name(name)
        router = Router(name, self.sim)
        self.nodes[name] = router
        return router

    def add_node(self, node: Node) -> None:
        """Register an externally constructed node (e.g. an ISP)."""
        self._check_name(node.name)
        self.nodes[node.name] = node

    def _check_name(self, name: str) -> None:
        if name in self.nodes:
            raise ValueError(f"duplicate node name: {name!r}")

    def connect(
        self,
        a: Node,
        b: Node,
        latency: float = 0.01,
        bandwidth: float | None = None,
        jitter: float = 0.0,
    ) -> Link:
        """Wire two nodes together."""
        return Link(
            self.sim,
            a,
            b,
            latency=latency,
            bandwidth=bandwidth,
            jitter=jitter,
            rng=self._rng,
        )

    def build_routes(self) -> None:
        """Compute shortest paths and install next-hop tables everywhere.

        Paths minimize total latency.  Every host IP becomes a routable
        destination on every node.
        """
        import heapq

        hosts = [n for n in self.nodes.values() if isinstance(n, Host)]
        for source in self.nodes.values():
            distances: dict[int, float] = {id(source): 0.0}
            first_link: dict[int, Link] = {}
            heap: list[tuple[float, int, Node, Link | None]] = [
                (0.0, 0, source, None)
            ]
            counter = 1
            while heap:
                dist, _, node, via = heapq.heappop(heap)
                if dist > distances.get(id(node), float("inf")):
                    continue
                for link in node.links:
                    neighbor = link.other_end(node)
                    new_dist = dist + link.latency
                    if new_dist < distances.get(id(neighbor), float("inf")):
                        distances[id(neighbor)] = new_dist
                        entry_link = via if via is not None else link
                        first_link[id(neighbor)] = entry_link
                        heapq.heappush(
                            heap, (new_dist, counter, neighbor, entry_link)
                        )
                        counter += 1
            for host in hosts:
                if host is source:
                    continue
                link = first_link.get(id(host))
                if link is not None:
                    source.routes[host.ip] = link

    def ip_allocator(self) -> IpAllocator:
        """The network-wide allocator (lease history for subpoenas)."""
        return self._ips
