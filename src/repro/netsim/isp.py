"""An ISP node: subscribers, records, and SCA-gated disclosure.

The ISP is where most of the paper's statutory machinery becomes concrete:

* it keeps basic subscriber information, transactional logs, and stored
  content — the three 2703 tiers;
* :meth:`IspNode.compelled_disclosure` enforces the tier table: a subpoena
  gets subscriber info, a 2703(d) court order gets transactional records,
  only a warrant gets content;
* :meth:`IspNode.voluntary_disclosure` enforces 2702 (public providers may
  not volunteer customer data to the government outside the exceptions);
* :meth:`IspNode.attach_tap` enforces the real-time statutes: a pen/trap
  tap needs a court order, a full intercept needs a Title III order.
"""

from __future__ import annotations

import dataclasses

from repro.core.enums import DataKind, ProcessKind
from repro.core.errors import InsufficientProcess, LegalViolation
from repro.core.statutes.sca import (
    COMPELLED_DISCLOSURE_TIERS,
    may_voluntarily_disclose,
)
from repro.netsim.address import IpAddress, IpAllocator
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.node import Host, Router
from repro.netsim.packet import HeaderRecord, Packet
from repro.netsim.sniffer import FullInterceptTap, Tap


@dataclasses.dataclass(frozen=True)
class SubscriberRecord:
    """Basic subscriber information — the 2703(c)(2) subpoena tier."""

    subscriber_id: str
    name: str
    street_address: str
    payment_info: str = "card-on-file"


@dataclasses.dataclass(frozen=True)
class StoredItem:
    """One piece of stored customer content held by the provider."""

    subscriber_id: str
    stored_at: float
    content: str
    retrieved: bool = False


class IspNode(Router):
    """A router that is also a service provider with customer records.

    Args:
        name: Node name.
        sim: The driving simulator.
        subnet: Base address for the ISP's customer subnet.
        serves_public: Whether this provider offers service to the public
            (controls the 2702 voluntary-disclosure rule).
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        subnet: IpAddress | None = None,
        serves_public: bool = True,
    ) -> None:
        super().__init__(name, sim)
        self.serves_public = serves_public
        self._subscribers: dict[str, SubscriberRecord] = {}
        self._allocator = IpAllocator(
            subnet if subnet is not None else IpAddress(172 << 24 | 16 << 16),
            prefix_len=16,
        )
        self._transaction_log: list[HeaderRecord] = []
        self._stored: list[StoredItem] = []
        self._log_transactions = True

    # -- subscriber management ------------------------------------------------

    def register_subscriber(
        self, subscriber_id: str, name: str, street_address: str
    ) -> SubscriberRecord:
        """Open an account and record basic subscriber information."""
        if subscriber_id in self._subscribers:
            raise ValueError(f"duplicate subscriber: {subscriber_id!r}")
        record = SubscriberRecord(
            subscriber_id=subscriber_id,
            name=name,
            street_address=street_address,
        )
        self._subscribers[subscriber_id] = record
        return record

    def lease_ip(self, subscriber_id: str) -> IpAddress:
        """Assign an address to a subscriber, recording the lease."""
        if subscriber_id not in self._subscribers:
            raise KeyError(f"unknown subscriber: {subscriber_id!r}")
        return self._allocator.allocate(subscriber_id, self.sim.now)

    def store_content(self, subscriber_id: str, content: str) -> None:
        """Store customer content (mail, files) at the provider."""
        if subscriber_id not in self._subscribers:
            raise KeyError(f"unknown subscriber: {subscriber_id!r}")
        self._stored.append(
            StoredItem(
                subscriber_id=subscriber_id,
                stored_at=self.sim.now,
                content=content,
            )
        )

    # -- traffic handling -----------------------------------------------------

    def receive(self, packet: Packet, link: Link) -> None:
        if self._log_transactions:
            self._transaction_log.append(packet.header_record(self.sim.now))
        super().receive(packet, link)

    # -- compelled disclosure (18 U.S.C. 2703) ----------------------------------

    def compelled_disclosure(
        self, data_kind: DataKind, process_held: ProcessKind
    ) -> list:
        """Disclose records under compulsion, enforcing the 2703 tiers.

        Args:
            data_kind: Which tier of data is demanded.
            process_held: The process the demanding officer holds.

        Returns:
            The responsive records (subscriber records, header records, or
            stored-content items).

        Raises:
            InsufficientProcess: If ``process_held`` is below the tier's
                requirement.
        """
        required = COMPELLED_DISCLOSURE_TIERS.get(data_kind)
        if required is None:
            raise LegalViolation(
                f"2703 has no tier for data kind {data_kind.value!r}"
            )
        if not process_held.satisfies(required):
            raise InsufficientProcess(
                required=required,
                held=process_held,
                what=f"compelling {data_kind.value} from {self.name}",
            )
        if data_kind is DataKind.SUBSCRIBER_INFO:
            return list(self._subscribers.values())
        if data_kind in (DataKind.TRANSACTIONAL_RECORD, DataKind.NON_CONTENT):
            return list(self._transaction_log)
        return list(self._stored)

    def subscriber_for_ip(
        self, ip: IpAddress, time: float, process_held: ProcessKind
    ) -> SubscriberRecord | None:
        """The subpoena workflow of section III.A.1(a).

        Given an IP observed in criminal traffic, identify the subscriber
        who held it at the relevant time.  Requires at least a subpoena.
        """
        if not process_held.satisfies(ProcessKind.SUBPOENA):
            raise InsufficientProcess(
                required=ProcessKind.SUBPOENA,
                held=process_held,
                what=f"identifying the subscriber behind {ip}",
            )
        subscriber_id = self._allocator.subscriber_for(ip, time)
        if subscriber_id is None:
            return None
        return self._subscribers.get(subscriber_id)

    # -- voluntary disclosure (18 U.S.C. 2702) ----------------------------------

    def voluntary_disclosure(
        self,
        data_kind: DataKind,
        to_government: bool,
        emergency: bool = False,
        user_consented: bool = False,
        protects_provider: bool = False,
    ) -> list:
        """Volunteer records, enforcing the 2702 rule.

        Raises:
            LegalViolation: If 2702 forbids the disclosure.
        """
        allowed = may_voluntarily_disclose(
            serves_public=self.serves_public,
            data_kind=data_kind,
            to_government=to_government,
            emergency=emergency,
            user_consented=user_consented,
            protects_provider=protects_provider,
        )
        if not allowed:
            raise LegalViolation(
                f"2702 forbids {self.name} voluntarily disclosing "
                f"{data_kind.value} to the government"
            )
        if data_kind is DataKind.SUBSCRIBER_INFO:
            return list(self._subscribers.values())
        if data_kind in (DataKind.TRANSACTIONAL_RECORD, DataKind.NON_CONTENT):
            return list(self._transaction_log)
        return list(self._stored)

    # -- real-time taps (Pen/Trap and Title III) --------------------------------

    def attach_tap(
        self,
        link: Link,
        tap: Tap,
        process_held: ProcessKind,
        provider_own_monitoring: bool = False,
    ) -> None:
        """Attach a collection device at the ISP, enforcing process.

        A pen/trap tap needs a court order; a full intercept needs a
        Title III order.  The provider may tap its own network for
        operations and self-protection without any order (3121(b),
        2511(2)(a)(i)).

        Raises:
            InsufficientProcess: If the officer's process is too weak.
            ValueError: If the link does not touch this ISP.
        """
        if self not in (link.a, link.b):
            raise ValueError(f"link does not touch {self.name}")
        if not provider_own_monitoring:
            required = (
                ProcessKind.WIRETAP_ORDER
                if isinstance(tap, FullInterceptTap)
                else ProcessKind.COURT_ORDER
            )
            if not process_held.satisfies(required):
                raise InsufficientProcess(
                    required=required,
                    held=process_held,
                    what=f"attaching {type(tap).__name__} at {self.name}",
                )
        link.attach_tap(tap)

    # -- introspection ---------------------------------------------------------

    @property
    def transaction_log_size(self) -> int:
        """Number of header records in the transactional log."""
        return len(self._transaction_log)

    @property
    def stored_item_count(self) -> int:
        """Number of stored content items held for customers."""
        return len(self._stored)

    def authenticated_retrieval(self, subscriber_id: str) -> list[StoredItem]:
        """Retrieve an account's items as its (apparent) owner.

        This is the account-holder path, not compulsion: the provider
        cannot distinguish a caller holding valid credentials from the
        subscriber, so no 2703 tier applies here.  Callers are responsible
        for the legality of *holding* the credentials (Table 1 scene 20).
        """
        if subscriber_id not in self._subscribers:
            raise KeyError(f"unknown subscriber: {subscriber_id!r}")
        return [
            item for item in self._stored
            if item.subscriber_id == subscriber_id
        ]

    def connect_customer(self, host: Host, link: Link) -> None:
        """Convenience: note that a host reaches the net through this ISP."""
        # Routing is installed by Network.build_routes(); this records the
        # administrative relationship only.
        if host.name not in self._subscribers:
            self.register_subscriber(
                host.name, name=host.name.title(), street_address="unknown"
            )
