"""Point-to-point wired links.

A link connects exactly two nodes, delays packets by a (possibly jittered)
latency, serializes them at a finite bandwidth, and shows every passing
packet to its attached taps at the moment of transmission — the vantage
point a collection device at an ISP or gateway would have.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.netsim.engine import Simulator
from repro.netsim.packet import Packet
from repro.netsim.sniffer import Tap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.netsim.node import Node


class Link:
    """A bidirectional wired link between two nodes.

    Args:
        sim: The simulator driving delivery events.
        a: One endpoint.
        b: The other endpoint.
        latency: One-way propagation delay in seconds.
        bandwidth: Bytes per second; ``None`` means infinite.
        jitter: Fractional jitter; each transit is delayed by
            ``latency * (1 + U(0, jitter))``.
        rng: Random source for jitter (pass a seeded one for determinism).
    """

    def __init__(
        self,
        sim: Simulator,
        a: "Node",
        b: "Node",
        latency: float = 0.01,
        bandwidth: float | None = None,
        jitter: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        if jitter < 0:
            raise ValueError(f"negative jitter: {jitter}")
        self.sim = sim
        self.a = a
        self.b = b
        self.latency = latency
        self.bandwidth = bandwidth
        self.jitter = jitter
        self._rng = rng or random.Random(0)
        self._taps: list[Tap] = []
        #: Earliest time each direction's transmitter is free again, used
        #: to serialize packets at finite bandwidth.
        self._free_at: dict[int, float] = {id(a): 0.0, id(b): 0.0}
        a.attach_link(self)
        b.attach_link(self)

    def attach_tap(self, tap: Tap) -> None:
        """Attach a collection device to this link."""
        self._taps.append(tap)

    def detach_tap(self, tap: Tap) -> None:
        """Remove a previously attached tap."""
        self._taps.remove(tap)

    @property
    def taps(self) -> tuple[Tap, ...]:
        """Currently attached taps."""
        return tuple(self._taps)

    def other_end(self, node: "Node") -> "Node":
        """The endpoint opposite ``node``.

        Raises:
            ValueError: If ``node`` is not an endpoint of this link.
        """
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node!r} is not an endpoint of this link")

    def transmit(self, packet: Packet, sender: "Node") -> None:
        """Send a packet from one endpoint toward the other.

        Taps see the packet at the moment transmission begins; delivery is
        scheduled after serialization plus (jittered) propagation delay.
        """
        receiver = self.other_end(sender)
        now = self.sim.now

        for tap in self._taps:
            tap.observe(packet, now)

        serialization = 0.0
        if self.bandwidth is not None:
            serialization = packet.size / self.bandwidth
        start = max(now, self._free_at[id(sender)])
        self._free_at[id(sender)] = start + serialization

        delay = self.latency
        if self.jitter > 0:
            delay *= 1.0 + self._rng.uniform(0.0, self.jitter)
        arrival_offset = (start - now) + serialization + delay

        self.sim.schedule(
            arrival_offset, lambda: receiver.receive(packet, self)
        )
