"""Point-to-point wired links.

A link connects exactly two nodes, delays packets by a (possibly jittered)
latency, serializes them at a finite bandwidth, and shows every passing
packet to its attached taps at the moment of transmission — the vantage
point a collection device at an ISP or gateway would have.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.faults.plan import FaultKind
from repro.netsim.engine import Simulator
from repro.netsim.packet import Packet
from repro.netsim.sniffer import Tap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faults.injector import FaultInjector
    from repro.netsim.node import Node


class Link:
    """A bidirectional wired link between two nodes.

    Args:
        sim: The simulator driving delivery events.
        a: One endpoint.
        b: The other endpoint.
        latency: One-way propagation delay in seconds.
        bandwidth: Bytes per second; ``None`` means infinite.
        jitter: Fractional jitter; each transit is delayed by
            ``latency * (1 + U(0, jitter))``.
        rng: Random source for jitter (pass a seeded one for determinism).
        injector: Optional fault injector; enables link flap, in-transit
            drop, duplication, and reordering on this link.
    """

    def __init__(
        self,
        sim: Simulator,
        a: "Node",
        b: "Node",
        latency: float = 0.01,
        bandwidth: float | None = None,
        jitter: float = 0.0,
        rng: random.Random | None = None,
        injector: "FaultInjector | None" = None,
    ) -> None:
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        if jitter < 0:
            raise ValueError(f"negative jitter: {jitter}")
        self.sim = sim
        self.a = a
        self.b = b
        self.latency = latency
        self.bandwidth = bandwidth
        self.jitter = jitter
        self.injector = injector
        self.packets_dropped = 0
        self.packets_duplicated = 0
        self._rng = rng or random.Random(0)
        self._taps: list[Tap] = []
        #: Earliest time each direction's transmitter is free again, used
        #: to serialize packets at finite bandwidth.
        self._free_at: dict[int, float] = {id(a): 0.0, id(b): 0.0}
        a.attach_link(self)
        b.attach_link(self)

    def attach_tap(self, tap: Tap) -> None:
        """Attach a collection device to this link."""
        self._taps.append(tap)

    def detach_tap(self, tap: Tap) -> None:
        """Remove a previously attached tap."""
        self._taps.remove(tap)

    @property
    def taps(self) -> tuple[Tap, ...]:
        """Currently attached taps."""
        return tuple(self._taps)

    def other_end(self, node: "Node") -> "Node":
        """The endpoint opposite ``node``.

        Raises:
            ValueError: If ``node`` is not an endpoint of this link.
        """
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node!r} is not an endpoint of this link")

    def _label(self) -> str:
        """Stable label for fault targeting and injection logs."""
        return f"link:{self.a.name}-{self.b.name}"

    def transmit(self, packet: Packet, sender: "Node") -> None:
        """Send a packet from one endpoint toward the other.

        Taps see the packet at the moment transmission begins; delivery is
        scheduled after serialization plus (jittered) propagation delay.

        With a fault injector attached the transit may misbehave:

        * **flap** — the link is momentarily down; the packet never
          leaves the sender, so not even a tap sees it;
        * **drop** — the packet is lost in transit *after* the taps'
          vantage point (taps observe, the receiver never does);
        * **duplicate** — the receiver gets the packet twice;
        * **reorder** — this packet is held back by the spec's ``param``
          seconds, letting later traffic overtake it.
        """
        receiver = self.other_end(sender)
        now = self.sim.now
        label = self._label()

        if self.injector is not None and self.injector.fires(
            FaultKind.LINK_FLAP, target=label, time=now
        ):
            self.packets_dropped += 1
            return

        for tap in self._taps:
            tap.observe(packet, now)

        if self.injector is not None and self.injector.fires(
            FaultKind.LINK_DROP, target=label, time=now
        ):
            self.packets_dropped += 1
            return

        serialization = 0.0
        if self.bandwidth is not None:
            serialization = packet.size / self.bandwidth
        start = max(now, self._free_at[id(sender)])
        self._free_at[id(sender)] = start + serialization

        delay = self.latency
        if self.jitter > 0:
            delay *= 1.0 + self._rng.uniform(0.0, self.jitter)
        if self.injector is not None and self.injector.fires(
            FaultKind.LINK_REORDER, target=label, time=now
        ):
            delay += self.injector.magnitude(
                FaultKind.LINK_REORDER, target=label
            )
        arrival_offset = (start - now) + serialization + delay

        self.sim.schedule(
            arrival_offset, lambda: receiver.receive(packet, self)
        )
        if self.injector is not None and self.injector.fires(
            FaultKind.LINK_DUPLICATE, target=label, time=now
        ):
            self.packets_duplicated += 1
            self.sim.schedule(
                arrival_offset + delay,
                lambda: receiver.receive(packet, self),
            )
