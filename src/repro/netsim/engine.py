"""Discrete-event simulation core.

A minimal, deterministic event-heap simulator shared by every substrate in
the reproduction: the wired/wireless network, the anonymity overlays, and
the investigative techniques that observe them.  Time is a float in
seconds; ties are broken by insertion order so runs are reproducible.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from collections.abc import Callable


@dataclasses.dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry; ordering is (time, sequence number)."""

    time: float
    sequence: int
    callback: Callable[[], None] = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(default=False, compare=False)


class EventHandle:
    """Handle to a scheduled event, allowing cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event; a cancelled event's callback never runs."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    @property
    def time(self) -> float:
        """The simulation time the event is scheduled for."""
        return self._event.time


class Simulator:
    """A deterministic discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run()
    """

    def __init__(self) -> None:
        self._heap: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Args:
            delay: Non-negative offset from the current simulation time.
            callback: Zero-argument callable executed at the target time.

        Returns:
            An :class:`EventHandle` that can cancel the event.

        Raises:
            ValueError: If ``delay`` is negative.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: delay={delay}")
        event = _ScheduledEvent(
            time=self._now + delay,
            sequence=next(self._sequence),
            callback=callback,
        )
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(time - self._now, callback)

    def run(self, until: float | None = None) -> None:
        """Run events in time order.

        Args:
            until: If given, stop once the next event would occur after
                this time (the clock is advanced to ``until``); otherwise
                run until the queue is empty.
        """
        while self._heap:
            event = self._heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time)
            self._processed += 1
            event.callback()
        if until is not None:
            self._now = max(self._now, until)

    def step(self) -> bool:
        """Execute the single next non-cancelled event.

        Returns:
            ``True`` if an event ran, ``False`` if the queue was empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time)
            self._processed += 1
            event.callback()
            return True
        return False
