"""Discrete-event network simulator substrate.

Provides the physical world the paper's legal analysis runs against:
layered packets whose content/non-content split is structural, wired links
and wireless broadcast media, ISPs with SCA-gated record disclosure, and
capability-typed taps (pen register vs full intercept).
"""

from repro.netsim.address import (
    IpAddress,
    IpAllocator,
    LeaseRecord,
    MacAddress,
    MacAllocator,
)
from repro.netsim.engine import EventHandle, Simulator
from repro.netsim.isp import IspNode, StoredItem, SubscriberRecord
from repro.netsim.link import Link
from repro.netsim.minimization import (
    MinimizationStats,
    MinimizingInterceptTap,
    keyword_pertinence,
)
from repro.netsim.node import Host, Network, Node, Router
from repro.netsim.packet import EncryptedBlob, HeaderRecord, Packet
from repro.netsim.reassembly import (
    Session,
    SessionEvent,
    SessionKey,
    SessionReassembler,
)
from repro.netsim.services import ChatMessage, ChatRoom, FileServer, WebServer
from repro.netsim.sniffer import (
    FullInterceptTap,
    InterceptedPacket,
    PenRegisterTap,
    Tap,
    TrapTraceTap,
)
from repro.netsim.wireless import WirelessMedium

__all__ = [
    "ChatMessage",
    "ChatRoom",
    "EncryptedBlob",
    "EventHandle",
    "FileServer",
    "FullInterceptTap",
    "HeaderRecord",
    "Host",
    "InterceptedPacket",
    "IpAddress",
    "IpAllocator",
    "IspNode",
    "LeaseRecord",
    "Link",
    "MacAddress",
    "MacAllocator",
    "MinimizationStats",
    "MinimizingInterceptTap",
    "Network",
    "Node",
    "Packet",
    "PenRegisterTap",
    "Router",
    "Session",
    "SessionEvent",
    "SessionKey",
    "SessionReassembler",
    "Simulator",
    "StoredItem",
    "SubscriberRecord",
    "Tap",
    "TrapTraceTap",
    "WebServer",
    "WirelessMedium",
    "keyword_pertinence",
]
