"""Title III minimization.

A wiretap order does not license vacuuming everything: 18 U.S.C. 2518(5)
requires interception "be conducted in such a way as to minimize the
interception of communications not otherwise subject to interception".
The :class:`MinimizingInterceptTap` enforces that at the capture layer —
a pertinence filter decides, per packet, whether content may be retained;
non-pertinent traffic is counted but only its *header* is kept.  The tap
reports its minimization statistics, the numbers a court reviews when the
defense challenges the intercept's execution.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.core.enums import DataKind
from repro.netsim.address import IpAddress
from repro.netsim.packet import HeaderRecord, Packet
from repro.netsim.sniffer import InterceptedPacket, Tap

#: Pertinence predicate: may this packet's *content* be retained?
PertinenceFilter = Callable[[Packet], bool]


@dataclasses.dataclass(frozen=True)
class MinimizationStats:
    """How the intercept was executed.

    Attributes:
        total_observed: Packets that passed the tap.
        content_retained: Packets whose content was kept (pertinent).
        header_only: Packets minimized to header records.
    """

    total_observed: int
    content_retained: int
    header_only: int

    @property
    def minimization_rate(self) -> float:
        """Fraction of observed traffic minimized to headers."""
        if self.total_observed == 0:
            return 0.0
        return self.header_only / self.total_observed


class MinimizingInterceptTap(Tap):
    """A Title III intercept that honors the minimization duty.

    Args:
        name: Tap label.
        pertinence: Predicate deciding whether a packet's content relates
            to the offense named in the order.  Everything else is
            spot-checked (header only).
        target_ip: Optional address filter, as with other taps.
    """

    def __init__(
        self,
        name: str,
        pertinence: PertinenceFilter,
        target_ip: IpAddress | None = None,
    ) -> None:
        super().__init__(name, target_ip)
        self._pertinence = pertinence
        self._captures: list[InterceptedPacket] = []
        self._minimized: list[HeaderRecord] = []

    @property
    def data_kind(self) -> DataKind:
        return DataKind.CONTENT

    def _record(self, packet: Packet, timestamp: float) -> None:
        if self._pertinence(packet):
            self._captures.append(
                InterceptedPacket(timestamp=timestamp, packet=packet)
            )
        else:
            self._minimized.append(packet.header_record(timestamp))

    @property
    def captures(self) -> tuple[InterceptedPacket, ...]:
        """Retained (pertinent) full captures."""
        return tuple(self._captures)

    @property
    def minimized_headers(self) -> tuple[HeaderRecord, ...]:
        """Header records of minimized (non-pertinent) traffic."""
        return tuple(self._minimized)

    def stats(self) -> MinimizationStats:
        """The execution statistics a reviewing court examines."""
        return MinimizationStats(
            total_observed=self.observed_count,
            content_retained=len(self._captures),
            header_only=len(self._minimized),
        )


def keyword_pertinence(keywords: list[str]) -> PertinenceFilter:
    """A pertinence filter matching offense keywords in readable payloads.

    Encrypted payloads are treated as non-pertinent (they cannot be
    spot-checked), mirroring the practice of minimizing unintelligible
    traffic and seeking after-the-fact authorization to decrypt.
    """
    if not keywords:
        raise ValueError("at least one keyword is required")
    lowered = [keyword.lower() for keyword in keywords]

    def pertinent(packet: Packet) -> bool:
        try:
            text = packet.payload_text().lower()
        except PermissionError:
            return False
        return any(keyword in text for keyword in lowered)

    return pertinent
