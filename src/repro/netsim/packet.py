"""Layered packets with legally meaningful views.

The statutory scheme splits every packet into *content* (payload — Title
III territory) and *non-content* (link/IP/transport headers, sizes —
Pen/Trap territory).  The packet model makes that split structural:

* :class:`HeaderRecord` is what a pen register may lawfully produce — it
  is constructed *without* any reference to the payload;
* :meth:`Packet.payload_text` is the content view, and raises if the
  payload is encrypted and the caller lacks the key.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.netsim.address import IpAddress, MacAddress

_packet_ids = itertools.count(1)


@dataclasses.dataclass(frozen=True)
class EncryptedBlob:
    """An opaque ciphertext; plaintext retrievable only with the key id.

    The simulator does not model real cryptography — it models the *legal*
    property of encryption: observers without the key can see that bytes
    exist (and how many) but not what they say.
    """

    plaintext: str
    key_id: str

    def decrypt(self, key_id: str) -> str:
        """Recover the plaintext with the correct key.

        Raises:
            PermissionError: If the key does not match.
        """
        if key_id != self.key_id:
            raise PermissionError("wrong decryption key")
        return self.plaintext

    def __len__(self) -> int:
        return len(self.plaintext)

    def __repr__(self) -> str:  # never leak plaintext through repr
        return f"EncryptedBlob(<{len(self.plaintext)} bytes>, key_id={self.key_id!r})"


@dataclasses.dataclass(frozen=True)
class Packet:
    """One simulated packet with link, network, and transport headers.

    Attributes:
        src_mac / dst_mac: Link-layer addresses.
        src_ip / dst_ip: Network-layer addresses.
        src_port / dst_port: Transport-layer ports.
        protocol: Transport protocol name ("tcp" or "udp").
        payload: Application payload — plaintext ``str`` or an
            :class:`EncryptedBlob`.
        packet_id: Unique id for tracing through the simulator.
        flow_id: Optional application flow label (used by the watermark
            experiments to group packets into flows).
    """

    src_mac: MacAddress
    dst_mac: MacAddress
    src_ip: IpAddress
    dst_ip: IpAddress
    src_port: int
    dst_port: int
    protocol: str = "tcp"
    payload: str | EncryptedBlob = ""
    packet_id: int = dataclasses.field(default_factory=lambda: next(_packet_ids))
    flow_id: str | None = None

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port < 65536:
                raise ValueError(f"port out of range: {port}")
        if self.protocol not in ("tcp", "udp"):
            raise ValueError(f"unknown protocol: {self.protocol!r}")

    @property
    def size(self) -> int:
        """Approximate wire size: fixed header overhead plus payload length."""
        return 54 + len(self.payload)

    @property
    def payload_encrypted(self) -> bool:
        """Whether the payload is an opaque ciphertext."""
        return isinstance(self.payload, EncryptedBlob)

    def payload_text(self, key_id: str | None = None) -> str:
        """The content view of the packet.

        Args:
            key_id: Decryption key for encrypted payloads.

        Returns:
            The plaintext payload.

        Raises:
            PermissionError: If the payload is encrypted and no (or the
                wrong) key is supplied.
        """
        if isinstance(self.payload, EncryptedBlob):
            if key_id is None:
                raise PermissionError("payload is encrypted")
            return self.payload.decrypt(key_id)
        return self.payload

    def header_record(self, timestamp: float) -> "HeaderRecord":
        """The non-content view of the packet (what a pen register sees)."""
        return HeaderRecord(
            timestamp=timestamp,
            src_mac=self.src_mac,
            dst_mac=self.dst_mac,
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            src_port=self.src_port,
            dst_port=self.dst_port,
            protocol=self.protocol,
            size=self.size,
            packet_id=self.packet_id,
        )

    def reply_template(self, payload: str | EncryptedBlob = "") -> "Packet":
        """A packet with source/destination swapped, for responses."""
        return Packet(
            src_mac=self.dst_mac,
            dst_mac=self.src_mac,
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            protocol=self.protocol,
            payload=payload,
            flow_id=self.flow_id,
        )


@dataclasses.dataclass(frozen=True)
class HeaderRecord:
    """Addressing and size information only — no payload, by construction.

    This is the record type a :class:`~repro.netsim.sniffer.PenRegisterTap`
    emits; it cannot leak content because it never holds any.
    """

    timestamp: float
    src_mac: MacAddress
    dst_mac: MacAddress
    src_ip: IpAddress
    dst_ip: IpAddress
    src_port: int
    dst_port: int
    protocol: str
    size: int
    packet_id: int
