"""Capability-typed network taps.

The paper's statutory split (content vs non-content collection) is enforced
here at the type level, not by courtesy:

* a :class:`PenRegisterTap` or :class:`TrapTraceTap` converts every packet
  to a :class:`~repro.netsim.packet.HeaderRecord` *at observation time* and
  discards the packet — there is no payload anywhere in its storage;
* only a :class:`FullInterceptTap` retains whole packets, and using one is
  what turns a collection into a Title III interception.

Each tap can describe itself as an
:class:`~repro.core.action.InvestigativeAction` so the compliance engine
can rule on the collection before it is attached.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import TYPE_CHECKING

from repro.core.action import ConsentFacts, DoctrineFacts, InvestigativeAction
from repro.core.context import EnvironmentContext
from repro.core.enums import Actor, DataKind, Timing
from repro.faults.plan import FaultKind
from repro.netsim.address import IpAddress
from repro.netsim.packet import HeaderRecord, Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faults.injector import FaultInjector


class Tap(abc.ABC):
    """Base class for collection devices attachable to links and media.

    A tap may be given a fault injector, modelling collection-device
    dropout (a pen register that misses packets).  Dropout only ever
    *loses* records — a degraded tap never gains capabilities, so a
    pen/trap tap that misses packets still never stores payload.
    """

    def __init__(
        self,
        name: str,
        target_ip: IpAddress | None = None,
        injector: "FaultInjector | None" = None,
    ) -> None:
        self.name = name
        #: Restrict collection to packets to/from this address, if set.
        self.target_ip = target_ip
        self.injector = injector
        self._observed_count = 0
        self._dropped_count = 0

    @property
    def observed_count(self) -> int:
        """How many packets matched and were recorded."""
        return self._observed_count

    @property
    def dropped_count(self) -> int:
        """How many matching packets the device missed to dropout."""
        return self._dropped_count

    def observe(self, packet: Packet, timestamp: float) -> None:
        """Called by the link/medium for every passing packet."""
        if not self._matches(packet):
            return
        if self.injector is not None and self.injector.fires(
            FaultKind.TAP_DROPOUT, target=f"tap:{self.name}", time=timestamp
        ):
            self._dropped_count += 1
            return
        self._observed_count += 1
        self._record(packet, timestamp)

    def _matches(self, packet: Packet) -> bool:
        if self.target_ip is None:
            return True
        return self.target_ip in (packet.src_ip, packet.dst_ip)

    @abc.abstractmethod
    def _record(self, packet: Packet, timestamp: float) -> None:
        """Store whatever this tap type is allowed to keep."""

    @property
    @abc.abstractmethod
    def data_kind(self) -> DataKind:
        """The legal category of data this tap collects."""

    def describe_action(
        self,
        actor: Actor,
        context: EnvironmentContext,
        consent: ConsentFacts | None = None,
        doctrine: DoctrineFacts | None = None,
    ) -> InvestigativeAction:
        """Describe this tap as an action for the compliance engine.

        The action is always real-time (taps observe transmission), with
        the data kind fixed by the tap's capability type.
        """
        return InvestigativeAction(
            description=f"attach {type(self).__name__} {self.name!r}",
            actor=actor,
            data_kind=self.data_kind,
            timing=Timing.REAL_TIME,
            context=context,
            consent=consent or ConsentFacts(),
            doctrine=doctrine or DoctrineFacts(),
        )


class PenRegisterTap(Tap):
    """Records *outgoing* addressing information only (18 U.S.C. 3127(3)).

    Outgoing means packets whose source is the target address; with no
    target set, all packets are treated as outgoing.
    """

    def __init__(
        self,
        name: str,
        target_ip: IpAddress | None = None,
        injector: "FaultInjector | None" = None,
    ) -> None:
        super().__init__(name, target_ip, injector)
        self._records: list[HeaderRecord] = []

    @property
    def data_kind(self) -> DataKind:
        return DataKind.NON_CONTENT

    def _matches(self, packet: Packet) -> bool:
        if self.target_ip is None:
            return True
        return packet.src_ip == self.target_ip

    def _record(self, packet: Packet, timestamp: float) -> None:
        self._records.append(packet.header_record(timestamp))

    @property
    def records(self) -> tuple[HeaderRecord, ...]:
        """The collected header records, in arrival order."""
        return tuple(self._records)

    def timestamps(self) -> list[float]:
        """Arrival times only — the input to traffic-rate analysis."""
        return [r.timestamp for r in self._records]


class TrapTraceTap(Tap):
    """Records *incoming* addressing information only (18 U.S.C. 3127(4))."""

    def __init__(
        self,
        name: str,
        target_ip: IpAddress | None = None,
        injector: "FaultInjector | None" = None,
    ) -> None:
        super().__init__(name, target_ip, injector)
        self._records: list[HeaderRecord] = []

    @property
    def data_kind(self) -> DataKind:
        return DataKind.NON_CONTENT

    def _matches(self, packet: Packet) -> bool:
        if self.target_ip is None:
            return True
        return packet.dst_ip == self.target_ip

    def _record(self, packet: Packet, timestamp: float) -> None:
        self._records.append(packet.header_record(timestamp))

    @property
    def records(self) -> tuple[HeaderRecord, ...]:
        """The collected header records, in arrival order."""
        return tuple(self._records)

    def timestamps(self) -> list[float]:
        """Arrival times only — the input to traffic-rate analysis."""
        return [r.timestamp for r in self._records]


@dataclasses.dataclass(frozen=True)
class InterceptedPacket:
    """A full interception: timestamp plus the entire packet."""

    timestamp: float
    packet: Packet


class FullInterceptTap(Tap):
    """Retains entire packets, payload included — a Title III intercept."""

    def __init__(
        self,
        name: str,
        target_ip: IpAddress | None = None,
        injector: "FaultInjector | None" = None,
    ) -> None:
        super().__init__(name, target_ip, injector)
        self._captures: list[InterceptedPacket] = []

    @property
    def data_kind(self) -> DataKind:
        return DataKind.CONTENT

    def _record(self, packet: Packet, timestamp: float) -> None:
        self._captures.append(
            InterceptedPacket(timestamp=timestamp, packet=packet)
        )

    @property
    def captures(self) -> tuple[InterceptedPacket, ...]:
        """The full captures, in arrival order."""
        return tuple(self._captures)

    def payloads(self, key_id: str | None = None) -> list[str]:
        """Readable payloads; encrypted ones are skipped without the key."""
        texts: list[str] = []
        for capture in self._captures:
            try:
                texts.append(capture.packet.payload_text(key_id))
            except PermissionError:
                continue
        return texts
