"""Application services that run on simulated hosts.

Small, protocol-free services sufficient for the paper's scenarios: a web
server (public or membership-gated, scene 11), a chat room (scene 17), and
a generic file server used by the storage examples.
"""

from __future__ import annotations

import dataclasses

from repro.netsim.node import Host
from repro.netsim.packet import Packet


class WebServer:
    """A web server with public pages and optionally a members-only area.

    Request payload convention: ``"GET <path>"`` or
    ``"GET <path> AUTH <member>"``.
    """

    PORT = 80

    def __init__(self, host: Host, public: bool = True) -> None:
        self.host = host
        self.public = public
        self.pages: dict[str, str] = {}
        self.members: set[str] = set()
        self.access_log: list[tuple[float, str, str]] = []
        host.register_service(self.PORT, self._handle)

    def publish(self, path: str, content: str) -> None:
        """Publish a page at a path."""
        self.pages[path] = content

    def add_member(self, member: str) -> None:
        """Grant a member access to a non-public server."""
        self.members.add(member)

    def _handle(self, host: Host, packet: Packet) -> str | None:
        try:
            text = packet.payload_text()
        except PermissionError:
            return "400 encrypted request"
        parts = text.split()
        if len(parts) < 2 or parts[0] != "GET":
            return "400 bad request"
        path = parts[1]
        member = parts[3] if len(parts) >= 4 and parts[2] == "AUTH" else None
        self.access_log.append((host.sim.now, str(packet.src_ip), path))
        if not self.public and member not in self.members:
            return "403 members only"
        content = self.pages.get(path)
        if content is None:
            return "404 not found"
        return f"200 {content}"


@dataclasses.dataclass(frozen=True)
class ChatMessage:
    """One message posted to a chat room."""

    timestamp: float
    sender: str
    text: str


class ChatRoom:
    """A public chat room: anyone may join, read, and post (scene 17).

    The room is deliberately a *public* forum — everything posted here is
    knowingly exposed, which is why collecting it needs no process.
    """

    PORT = 6667

    def __init__(self, host: Host, name: str = "#public") -> None:
        self.host = host
        self.name = name
        self.messages: list[ChatMessage] = []
        self.participants: set[str] = set()
        host.register_service(self.PORT, self._handle)

    def _handle(self, host: Host, packet: Packet) -> str | None:
        try:
            text = packet.payload_text()
        except PermissionError:
            return None
        if text.startswith("JOIN "):
            self.participants.add(text[5:])
            return f"joined {self.name}"
        if text.startswith("POST "):
            __, sender, body = text.split(" ", 2)
            self.messages.append(
                ChatMessage(timestamp=host.sim.now, sender=sender, text=body)
            )
            return "ok"
        if text == "READ":
            return "\n".join(f"{m.sender}: {m.text}" for m in self.messages)
        return "unknown command"


class FileServer:
    """A trivial file server; request ``"FETCH <name>"`` returns contents."""

    PORT = 2049

    def __init__(self, host: Host) -> None:
        self.host = host
        self.files: dict[str, str] = {}
        self.fetch_count = 0
        host.register_service(self.PORT, self._handle)

    def put(self, name: str, contents: str) -> None:
        """Store a file on the server."""
        self.files[name] = contents

    def _handle(self, host: Host, packet: Packet) -> str | None:
        try:
            text = packet.payload_text()
        except PermissionError:
            return "400 encrypted request"
        if not text.startswith("FETCH "):
            return "400 bad request"
        name = text[6:]
        contents = self.files.get(name)
        if contents is None:
            return "404 not found"
        self.fetch_count += 1
        return f"200 {contents}"
