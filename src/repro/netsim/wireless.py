"""The wireless broadcast medium for Table 1 rows 3-6.

Radio frames are heard by *every* station and sniffer in range — that
physical fact is what drives the paper's WarDriving analysis.  On a
protected network the payload is encrypted with the network key but the
frame headers stay visible; on an open network everything is in the clear
(the Street View capture).
"""

from __future__ import annotations

import dataclasses

from repro.netsim.engine import Simulator
from repro.netsim.node import Host
from repro.netsim.packet import EncryptedBlob, Packet
from repro.netsim.sniffer import Tap


@dataclasses.dataclass
class _Station:
    """A host joined to the medium, with its radio association."""

    host: Host
    joined_at: float


class WirelessMedium:
    """A shared radio medium: one home's WLAN plus anyone parked outside.

    Args:
        sim: The driving simulator.
        name: Medium label (e.g. ``"home-wlan"``).
        network_key: WPA-style key id; when set, payloads are encrypted on
            the air with this key.  ``None`` models an open network.
        propagation_delay: On-air delay in seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        network_key: str | None = None,
        propagation_delay: float = 0.002,
    ) -> None:
        self.sim = sim
        self.name = name
        self.network_key = network_key
        self.propagation_delay = propagation_delay
        self._stations: list[_Station] = []
        self._sniffers: list[Tap] = []
        self.frames_sent = 0

    @property
    def encrypted(self) -> bool:
        """Whether frames on this medium carry encrypted payloads."""
        return self.network_key is not None

    def join(self, host: Host) -> None:
        """Associate a host with the medium."""
        self._stations.append(_Station(host=host, joined_at=self.sim.now))
        if self.network_key is not None:
            host.keys.add(self.network_key)

    def add_sniffer(self, tap: Tap) -> None:
        """Park a sniffer in radio range (it need not associate)."""
        self._sniffers.append(tap)

    def remove_sniffer(self, tap: Tap) -> None:
        """Remove a sniffer from radio range."""
        self._sniffers.remove(tap)

    def broadcast(self, packet: Packet, sender: Host) -> None:
        """Transmit a frame: every station and sniffer in range hears it.

        On a protected medium, a plaintext payload is encrypted with the
        network key before it leaves the sender's radio; headers remain
        observable regardless.
        """
        on_air = packet
        if self.network_key is not None and isinstance(packet.payload, str):
            on_air = dataclasses.replace(
                packet,
                payload=EncryptedBlob(
                    plaintext=packet.payload, key_id=self.network_key
                ),
            )
        self.frames_sent += 1
        now = self.sim.now

        for sniffer in self._sniffers:
            sniffer.observe(on_air, now)

        for station in self._stations:
            if station.host is sender:
                continue
            receiver = station.host
            self.sim.schedule(
                self.propagation_delay,
                lambda recv=receiver: self._deliver(recv, on_air),
            )

    @staticmethod
    def _deliver(host: Host, packet: Packet) -> None:
        """Deliver a frame to an associated station's host stack."""
        if packet.dst_ip != host.ip:
            return
        host.received.append(packet)
        handler = host.services.get(packet.dst_port)
        if handler is not None:
            handler(host, packet)
