"""Address types and allocators for the network simulator.

Addresses are small immutable value types so packets can be hashed,
compared, and logged cheaply.  Allocators hand out unique addresses and,
for IPs, remember which subscriber held which address when — the record an
ISP produces in response to a subpoena (paper section III.A.1(a)).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True, order=True)
class MacAddress:
    """A 48-bit style link-layer address, rendered like ``02:00:00:00:00:2a``."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 2**48:
            raise ValueError(f"MAC out of range: {self.value}")

    def __str__(self) -> str:
        raw = f"{self.value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))


@dataclasses.dataclass(frozen=True, order=True)
class IpAddress:
    """An IPv4-style address, rendered dotted-quad."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 2**32:
            raise ValueError(f"IP out of range: {self.value}")

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 255}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}"

    def in_subnet(self, network: "IpAddress", prefix_len: int) -> bool:
        """Whether this address falls inside ``network/prefix_len``."""
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"bad prefix length: {prefix_len}")
        if prefix_len == 0:
            return True
        mask = ~((1 << (32 - prefix_len)) - 1) & 0xFFFFFFFF
        return (self.value & mask) == (network.value & mask)


class MacAllocator:
    """Hands out unique MAC addresses with a locally-administered prefix."""

    _BASE = 0x020000000000

    def __init__(self) -> None:
        self._next = 1

    def allocate(self) -> MacAddress:
        """Allocate the next unused MAC address."""
        mac = MacAddress(self._BASE + self._next)
        self._next += 1
        return mac


@dataclasses.dataclass(frozen=True)
class LeaseRecord:
    """One IP lease: which subscriber held an address over which interval.

    ``end`` is ``None`` while the lease is active.  These records are what
    a subpoena to the ISP turns into a subscriber identity.
    """

    ip: IpAddress
    subscriber_id: str
    start: float
    end: float | None = None

    def active_at(self, time: float) -> bool:
        """Whether the lease covered the given instant."""
        if time < self.start:
            return False
        return self.end is None or time < self.end


class IpAllocator:
    """Allocates IPs from a subnet and keeps the lease history."""

    def __init__(self, network: IpAddress, prefix_len: int = 24) -> None:
        if not 0 < prefix_len < 31:
            raise ValueError(f"bad prefix length: {prefix_len}")
        self._network = network
        self._prefix_len = prefix_len
        self._capacity = (1 << (32 - prefix_len)) - 2  # minus net/broadcast
        self._next_host = 1
        self._leases: list[LeaseRecord] = []
        self._active: dict[IpAddress, int] = {}  # ip -> index into leases

    @property
    def leases(self) -> tuple[LeaseRecord, ...]:
        """Complete lease history, oldest first."""
        return tuple(self._leases)

    def allocate(self, subscriber_id: str, time: float) -> IpAddress:
        """Lease the next free address to a subscriber.

        Raises:
            RuntimeError: If the subnet is exhausted.
        """
        if self._next_host > self._capacity:
            raise RuntimeError("subnet exhausted")
        ip = IpAddress(self._network.value + self._next_host)
        self._next_host += 1
        self._leases.append(
            LeaseRecord(ip=ip, subscriber_id=subscriber_id, start=time)
        )
        self._active[ip] = len(self._leases) - 1
        return ip

    def release(self, ip: IpAddress, time: float) -> None:
        """End the active lease on an address.

        Raises:
            KeyError: If the address has no active lease.
        """
        index = self._active.pop(ip)
        old = self._leases[index]
        self._leases[index] = dataclasses.replace(old, end=time)

    def subscriber_for(self, ip: IpAddress, time: float) -> str | None:
        """Who held an address at a given time (the subpoena answer)."""
        for lease in self._leases:
            if lease.ip == ip and lease.active_at(time):
                return lease.subscriber_id
        return None
