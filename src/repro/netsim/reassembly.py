"""Application-session reconstruction from full intercepts.

The paper's court-order example (section II.A): "using a packet-sniffer on
an ISP's router to collect all packets coming from a particular IP address
to reconstruct an AIM session."  This module is that reconstruction step:
it groups a :class:`~repro.netsim.sniffer.FullInterceptTap`'s captures into
bidirectional conversations keyed by their address/port pairs and renders
each as an ordered transcript.

Reconstruction requires *content*, so it only works on full intercepts —
a pen register's header records cannot be reassembled into anything, which
is exactly the statutory point.
"""

from __future__ import annotations

import dataclasses

from repro.netsim.address import IpAddress
from repro.netsim.sniffer import FullInterceptTap, InterceptedPacket


@dataclasses.dataclass(frozen=True)
class SessionKey:
    """Canonical (direction-free) identifier of a conversation."""

    endpoint_a: tuple[str, int]
    endpoint_b: tuple[str, int]
    protocol: str

    @classmethod
    def for_packet(cls, capture: InterceptedPacket) -> "SessionKey":
        packet = capture.packet
        one = (str(packet.src_ip), packet.src_port)
        two = (str(packet.dst_ip), packet.dst_port)
        first, second = sorted((one, two))
        return cls(endpoint_a=first, endpoint_b=second, protocol=packet.protocol)

    def __str__(self) -> str:
        a = f"{self.endpoint_a[0]}:{self.endpoint_a[1]}"
        b = f"{self.endpoint_b[0]}:{self.endpoint_b[1]}"
        return f"{self.protocol} {a} <-> {b}"


@dataclasses.dataclass(frozen=True)
class SessionEvent:
    """One reconstructed message within a session."""

    timestamp: float
    sender: str
    readable: bool
    text: str
    size: int


@dataclasses.dataclass(frozen=True)
class Session:
    """A reconstructed bidirectional conversation.

    Attributes:
        key: The conversation's canonical identifier.
        events: Messages in capture order.
    """

    key: SessionKey
    events: tuple[SessionEvent, ...]

    @property
    def n_messages(self) -> int:
        """Total messages in the session."""
        return len(self.events)

    @property
    def readable_fraction(self) -> float:
        """Fraction of messages whose content could be read."""
        if not self.events:
            return 0.0
        return sum(e.readable for e in self.events) / len(self.events)

    def transcript(self) -> str:
        """Human-readable transcript of the session."""
        lines = [f"=== {self.key} ({self.n_messages} messages) ==="]
        for event in self.events:
            body = event.text if event.readable else f"<encrypted, {event.size}B>"
            lines.append(f"[{event.timestamp:9.3f}] {event.sender}: {body}")
        return "\n".join(lines)


class SessionReassembler:
    """Reconstructs conversations from a full intercept's captures.

    Args:
        key_id: Optional decryption key for encrypted payloads (e.g. the
            WLAN key recovered from a consenting owner); without it,
            encrypted messages appear as opaque sized events.
    """

    def __init__(self, key_id: str | None = None) -> None:
        self.key_id = key_id

    def reassemble(self, tap: FullInterceptTap) -> list[Session]:
        """Group a tap's captures into ordered sessions.

        Returns:
            Sessions ordered by their first capture time.
        """
        grouped: dict[SessionKey, list[InterceptedPacket]] = {}
        order: list[SessionKey] = []
        for capture in tap.captures:
            key = SessionKey.for_packet(capture)
            if key not in grouped:
                grouped[key] = []
                order.append(key)
            grouped[key].append(capture)

        sessions = []
        for key in order:
            events = tuple(
                self._event_for(capture) for capture in grouped[key]
            )
            sessions.append(Session(key=key, events=events))
        return sessions

    def session_for(
        self, tap: FullInterceptTap, ip: IpAddress
    ) -> list[Session]:
        """Sessions involving one address — the paper's 'particular IP'."""
        wanted = str(ip)
        return [
            session
            for session in self.reassemble(tap)
            if wanted in (session.key.endpoint_a[0], session.key.endpoint_b[0])
        ]

    def _event_for(self, capture: InterceptedPacket) -> SessionEvent:
        packet = capture.packet
        sender = f"{packet.src_ip}:{packet.src_port}"
        try:
            text = packet.payload_text(self.key_id)
            readable = True
        except PermissionError:
            text = ""
            readable = False
        return SessionEvent(
            timestamp=capture.timestamp,
            sender=sender,
            readable=readable,
            text=text,
            size=packet.size,
        )
