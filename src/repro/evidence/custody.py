"""Chain of custody.

A custody log records every hand-off and action performed on an evidence
item, with a content hash at each step.  A gap (missing transfer) or a
hash change between steps breaks the chain, and broken-chain evidence is
challengeable regardless of how lawfully it was first acquired.
"""

from __future__ import annotations

import dataclasses

from repro.evidence.items import EvidenceItem
from repro.storage.hashing import sha256_hex


@dataclasses.dataclass(frozen=True)
class CustodyEntry:
    """One custody event."""

    timestamp: float
    custodian: str
    event: str
    content_hash: str


class BrokenChainError(Exception):
    """Raised when a custody operation is inconsistent with the log."""


class ChainOfCustody:
    """The custody log for one evidence item.

    Example::

        chain = ChainOfCustody(item, custodian="det. rivera", time=10.0)
        chain.transfer("lab tech okafor", time=12.5)
        chain.record_event("imaged drive; verified hash", time=13.0)
        assert chain.intact()
    """

    def __init__(
        self, item: EvidenceItem, custodian: str, time: float
    ) -> None:
        self.item = item
        self._entries: list[CustodyEntry] = [
            CustodyEntry(
                timestamp=time,
                custodian=custodian,
                event="collected",
                content_hash=item.content_hash,
            )
        ]

    @classmethod
    def restore(
        cls,
        item: EvidenceItem,
        entries: "tuple[CustodyEntry, ...] | list[CustodyEntry]",
    ) -> "ChainOfCustody":
        """Rebuild a chain from journaled entries (workflow resume).

        The restored chain continues exactly where the recorded one
        stopped: the same entries, the same current custodian, and the
        same last timestamp for :meth:`_check_time` ordering.

        Raises:
            BrokenChainError: If ``entries`` is empty or out of order.
        """
        if not entries:
            raise BrokenChainError("cannot restore an empty custody log")
        for earlier, later in zip(entries, entries[1:]):
            if later.timestamp < earlier.timestamp:
                raise BrokenChainError(
                    f"restored entry at t={later.timestamp} predates "
                    f"t={earlier.timestamp}"
                )
        chain = cls.__new__(cls)
        chain.item = item
        chain._entries = list(entries)
        return chain

    @property
    def entries(self) -> tuple[CustodyEntry, ...]:
        """The custody log, oldest first."""
        return tuple(self._entries)

    @property
    def current_custodian(self) -> str:
        """Who holds the evidence now."""
        return self._entries[-1].custodian

    def transfer(self, to_custodian: str, time: float) -> None:
        """Hand the evidence to a new custodian.

        Raises:
            BrokenChainError: If the timestamp precedes the last entry.
        """
        self._check_time(time)
        self._entries.append(
            CustodyEntry(
                timestamp=time,
                custodian=to_custodian,
                event=f"transferred from {self.current_custodian}",
                content_hash=sha256_hex(self.item.content),
            )
        )

    def record_event(self, event: str, time: float) -> None:
        """Record an examination or handling event by the current custodian."""
        self._check_time(time)
        self._entries.append(
            CustodyEntry(
                timestamp=time,
                custodian=self.current_custodian,
                event=event,
                content_hash=sha256_hex(self.item.content),
            )
        )

    def _check_time(self, time: float) -> None:
        if time < self._entries[-1].timestamp:
            raise BrokenChainError(
                f"custody event at t={time} predates last entry at "
                f"t={self._entries[-1].timestamp}"
            )

    def intact(self) -> bool:
        """Whether the content hash is unchanged across every entry."""
        expected = self.item.content_hash
        if any(entry.content_hash != expected for entry in self._entries):
            return False
        return self.item.verify_integrity()
