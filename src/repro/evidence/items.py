"""Evidence items with provenance.

Every acquisition in the framework produces an :class:`EvidenceItem`
recording *how* it was acquired: the investigative action performed, the
process the investigator held at the time, and the items it derives from.
The suppression hearing later reads exactly these fields — the paper's
point that "incorrect use of new techniques may result in suppression of
the gathered evidence in court" (section I).
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.core.action import InvestigativeAction
from repro.core.enums import ProcessKind
from repro.storage.hashing import sha256_hex

_evidence_ids = itertools.count(1)


@dataclasses.dataclass
class EvidenceItem:
    """One piece of evidence and its acquisition provenance.

    Attributes:
        description: What the evidence is.
        content: The evidence data itself (text form).
        acquired_by: Name of the acquiring investigator/agency.
        acquired_at: Simulation (or wall) time of acquisition.
        action: The investigative action that produced it.
        process_held: The strongest process the investigator held when
            acquiring it.
        derived_from: Evidence ids this item was derived from (for
            fruit-of-the-poisonous-tree analysis).
        evidence_id: Unique id.
        content_hash: SHA-256 of the content at acquisition time.
    """

    description: str
    content: str
    acquired_by: str
    acquired_at: float
    action: InvestigativeAction
    process_held: ProcessKind = ProcessKind.NONE
    derived_from: tuple[int, ...] = ()
    evidence_id: int = dataclasses.field(
        default_factory=lambda: next(_evidence_ids)
    )
    content_hash: str = ""

    def __post_init__(self) -> None:
        if not self.content_hash:
            self.content_hash = sha256_hex(self.content)

    def verify_integrity(self) -> bool:
        """Whether the content still matches its acquisition-time hash."""
        return sha256_hex(self.content) == self.content_hash


def derive(
    parent: EvidenceItem,
    description: str,
    content: str,
    action: InvestigativeAction,
    process_held: ProcessKind | None = None,
    acquired_at: float | None = None,
) -> EvidenceItem:
    """Create evidence derived from existing evidence.

    Derived items inherit the parent's acquirer and, by default, the
    parent's process; the derivation link is what lets the suppression
    hearing taint fruits of an unlawful acquisition.
    """
    return EvidenceItem(
        description=description,
        content=content,
        acquired_by=parent.acquired_by,
        acquired_at=parent.acquired_at if acquired_at is None else acquired_at,
        action=action,
        process_held=(
            parent.process_held if process_held is None else process_held
        ),
        derived_from=(parent.evidence_id,),
    )
