"""Evidence handling: items, chain of custody, admissibility.

The machinery that makes the paper's warning operational: evidence records
its acquisition provenance, custody hands are logged with integrity
hashes, and the admissibility analyzer applies the exclusionary rule
(including fruit of the poisonous tree) against the compliance engine's
rulings.
"""

from repro.evidence.admissibility import (
    AdmissibilityAnalyzer,
    AdmissibilityFinding,
)
from repro.evidence.custody import (
    BrokenChainError,
    ChainOfCustody,
    CustodyEntry,
)
from repro.evidence.items import EvidenceItem, derive

__all__ = [
    "AdmissibilityAnalyzer",
    "AdmissibilityFinding",
    "BrokenChainError",
    "ChainOfCustody",
    "CustodyEntry",
    "EvidenceItem",
    "derive",
]
