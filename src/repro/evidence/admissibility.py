"""Admissibility analysis: the exclusionary rule, executable.

Combines four checks for each evidence item:

1. **legality** — did the investigator hold the process the compliance
   engine says the acquisition required?
2. **integrity** — does the chain of custody (if provided) hold?
3. **prosecution responses** — good-faith reliance, independent source,
   inevitable discovery, attenuation (see :mod:`repro.court.doctrines`)
   can save an item that fails (1);
4. **taint** — an item deriving from suppressed evidence falls with it
   (fruit of the poisonous tree), unless its own prosecution response
   prevails.

Resolution runs parents-first so taint propagates through derivation
chains after responses are weighed.
"""

from __future__ import annotations

import dataclasses

from repro.core.engine import ComplianceEngine
from repro.core.enums import Admissibility
from repro.core.ruling import Ruling
from repro.evidence.custody import ChainOfCustody
from repro.evidence.items import EvidenceItem


@dataclasses.dataclass(frozen=True)
class AdmissibilityFinding:
    """The analyzer's finding for one item."""

    evidence_id: int
    outcome: Admissibility
    ruling: Ruling
    reason: str


class AdmissibilityAnalyzer:
    """Applies the exclusionary rule over a body of evidence."""

    def __init__(self, engine: ComplianceEngine | None = None) -> None:
        self._engine = engine or ComplianceEngine()

    def analyze(
        self,
        items: list[EvidenceItem],
        custody: dict[int, ChainOfCustody] | None = None,
        responses: dict[int, "ProsecutionResponse"] | None = None,
    ) -> dict[int, AdmissibilityFinding]:
        """Analyze a body of evidence, propagating taint through derivation.

        Args:
            items: All evidence offered; derivation links are resolved
                within this list.
            custody: Optional custody chains keyed by evidence id.
            responses: Optional prosecution responses keyed by evidence
                id (see :mod:`repro.court.doctrines`).

        Returns:
            A finding per evidence id.
        """
        custody = custody or {}
        responses = responses or {}
        findings: dict[int, AdmissibilityFinding] = {}
        # Items must be processed parents-first so taint propagates; sort
        # by id, which increases monotonically with creation.
        for item in sorted(items, key=lambda i: i.evidence_id):
            findings[item.evidence_id] = self._analyze_one(
                item,
                findings,
                custody.get(item.evidence_id),
                responses.get(item.evidence_id),
            )
        return findings

    def _analyze_one(
        self,
        item: EvidenceItem,
        findings: dict[int, AdmissibilityFinding],
        chain: ChainOfCustody | None,
        response: "ProsecutionResponse | None",
    ) -> AdmissibilityFinding:
        ruling = self._engine.evaluate(item.action)

        intrinsic_failure = self._intrinsic_failure(item, ruling, chain)
        tainted_parent = self._tainted_parent(item, findings)

        if intrinsic_failure is None and tainted_parent is None:
            return AdmissibilityFinding(
                evidence_id=item.evidence_id,
                outcome=Admissibility.ADMISSIBLE,
                ruling=ruling,
                reason=(
                    "lawfully acquired with sufficient process; chain "
                    "intact"
                ),
            )

        if response is not None:
            prevails, doctrine_reason = self._weigh_response(
                response, findings
            )
            if prevails:
                return AdmissibilityFinding(
                    evidence_id=item.evidence_id,
                    outcome=Admissibility.ADMISSIBLE,
                    ruling=ruling,
                    reason=f"suppression denied: {doctrine_reason}",
                )

        if tainted_parent is not None:
            return AdmissibilityFinding(
                evidence_id=item.evidence_id,
                outcome=Admissibility.SUPPRESSED_DERIVATIVE,
                ruling=ruling,
                reason=(
                    f"fruit of the poisonous tree: derives from suppressed "
                    f"evidence #{tainted_parent}"
                ),
            )
        return AdmissibilityFinding(
            evidence_id=item.evidence_id,
            outcome=Admissibility.SUPPRESSED,
            ruling=ruling,
            reason=intrinsic_failure,
        )

    @staticmethod
    def _intrinsic_failure(
        item: EvidenceItem,
        ruling: Ruling,
        chain: ChainOfCustody | None,
    ) -> str | None:
        """The item's own defect (ignoring derivation), if any."""
        if not ruling.permits(item.process_held):
            return (
                f"acquisition required "
                f"{ruling.required_process.display_name} but the "
                f"investigator held {item.process_held.display_name}"
            )
        if chain is not None and not chain.intact():
            return "chain of custody broken (content hash mismatch)"
        if not item.verify_integrity():
            return "evidence content no longer matches acquisition hash"
        return None

    @staticmethod
    def _tainted_parent(
        item: EvidenceItem,
        findings: dict[int, AdmissibilityFinding],
    ) -> int | None:
        """The first suppressed ancestor this item derives from, if any."""
        for parent_id in item.derived_from:
            finding = findings.get(parent_id)
            if (
                finding is not None
                and finding.outcome is not Admissibility.ADMISSIBLE
            ):
                return parent_id
        return None

    @staticmethod
    def _weigh_response(
        response: "ProsecutionResponse",
        findings: dict[int, AdmissibilityFinding],
    ) -> tuple[bool, str]:
        from repro.court.doctrines import response_prevails

        independent_admitted = False
        if response.independent_evidence_id is not None:
            independent = findings.get(response.independent_evidence_id)
            independent_admitted = (
                independent is not None
                and independent.outcome is Admissibility.ADMISSIBLE
            )
        return response_prevails(response, independent_admitted)
