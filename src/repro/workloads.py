"""Synthetic workload generators.

Deterministic generators for scale testing and fuzzing: random (but
plausible) investigative actions for the compliance engine, and labelled
corpora for regression snapshots.  Everything is seeded — the same seed
always yields the same workload.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random

from repro.core.action import ConsentFacts, DoctrineFacts, InvestigativeAction
from repro.core.context import EnvironmentContext
from repro.core.engine import ComplianceEngine
from repro.core.enums import (
    Actor,
    ConsentScope,
    DataKind,
    Place,
    ProcessKind,
    Timing,
)


def random_action(rng: random.Random, index: int = 0) -> InvestigativeAction:
    """One random-but-plausible investigative action.

    Flag probabilities are biased toward realistic scenes (most actions
    have no consent, no exigency, and no special doctrine) so a corpus
    exercises the common paths heavily and the exceptional ones lightly.
    """
    place = rng.choice(list(Place))
    context = EnvironmentContext(
        place=place,
        encrypted=rng.random() < 0.3,
        knowingly_exposed=rng.random() < 0.2,
        shared_with_others=rng.random() < 0.1,
        delivered_to_recipient=rng.random() < 0.2,
        provider_serves_public=(
            rng.choice([None, True, False])
            if place is Place.THIRD_PARTY_PROVIDER
            else None
        ),
        policy_eliminates_rep=rng.random() < 0.1,
        home_interior=rng.random() < 0.05,
        technology_in_general_public_use=rng.random() < 0.5,
        abandoned=rng.random() < 0.05,
    )
    consent = ConsentFacts(
        scope=(
            rng.choice(list(ConsentScope))
            if rng.random() < 0.25
            else ConsentScope.NONE
        ),
        voluntary=rng.random() < 0.95,
        exceeds_authority=rng.random() < 0.1,
        revoked=rng.random() < 0.05,
        covers_target_data=rng.random() < 0.9,
    )
    doctrine = DoctrineFacts(
        exigent_circumstances=rng.random() < 0.05,
        plain_view=rng.random() < 0.05,
        target_on_probation=rng.random() < 0.05,
        emergency_pen_trap=rng.random() < 0.02,
        hash_search_of_lawful_media=rng.random() < 0.05,
        mining_of_lawful_data=rng.random() < 0.05,
        credentials_lawfully_obtained=rng.random() < 0.03,
        monitoring_own_network=rng.random() < 0.1,
        victim_invited_monitoring=rng.random() < 0.05,
    )
    return InvestigativeAction(
        description=f"generated action #{index}",
        actor=rng.choice(list(Actor)),
        data_kind=rng.choice(list(DataKind)),
        timing=rng.choice(list(Timing)),
        context=context,
        consent=consent,
        doctrine=doctrine,
    )


def action_corpus(n: int, seed: int = 0) -> list[InvestigativeAction]:
    """A deterministic corpus of ``n`` random actions."""
    rng = random.Random(seed)
    return [random_action(rng, index) for index in range(n)]


@dataclasses.dataclass(frozen=True)
class LabeledAction:
    """An action plus the engine's ruling on it."""

    action: InvestigativeAction
    required_process: ProcessKind
    needs_process: bool


def labeled_corpus(
    n: int, seed: int = 0, engine: ComplianceEngine | None = None
) -> list[LabeledAction]:
    """A corpus with engine labels attached (for regression snapshots).

    Labelling goes through :meth:`ComplianceEngine.evaluate_many`, which
    deduplicates equal-fingerprint actions within the batch — the labels
    are identical to a per-action ``evaluate`` loop, just cheaper.
    """
    engine = engine or ComplianceEngine()
    actions = action_corpus(n, seed)
    rulings = engine.evaluate_many(actions)
    return [
        LabeledAction(
            action=action,
            required_process=ruling.required_process,
            needs_process=ruling.needs_process,
        )
        for action, ruling in zip(actions, rulings)
    ]


def process_distribution(
    corpus: list[LabeledAction],
) -> dict[ProcessKind, int]:
    """Histogram of required processes across a labelled corpus."""
    distribution: dict[ProcessKind, int] = {kind: 0 for kind in ProcessKind}
    for item in corpus:
        distribution[item.required_process] += 1
    return distribution


def label_digest(corpus: list[LabeledAction]) -> str:
    """SHA-256 over a labelled corpus's ordered required-process labels.

    Stable across processes and platforms (enum *names*, not hashes), so
    it can be checked into a golden file: any rule or generator drift that
    changes even one label changes the digest.
    """
    joined = ",".join(item.required_process.name for item in corpus)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()
