"""The magistrate: grants or denies applications for process.

Implements the paper's section II.A ladder: a subpoena issues on mere
suspicion, a court order on specific and articulable facts, a search
warrant on probable cause (with particularity), and a Title III order on
probable cause plus necessity.  Staleness is handled the way the courts
do (section III.A.1(c)): old facts usually still support probable cause,
but the magistrate discounts facts past a staleness horizon when they are
the *only* support.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.core.enums import REQUIRED_SHOWING, ProcessKind, Standard
from repro.court.application import ProcessApplication
from repro.court.docket import DEFAULT_VALIDITY, Docket, IssuedProcess
from repro.faults.plan import FaultKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faults.injector import FaultInjector


@dataclasses.dataclass(frozen=True)
class Decision:
    """The magistrate's decision on one application.

    Attributes:
        granted: Whether an instrument issued.
        reason: The magistrate's stated ground.
        instrument: The issued instrument, when granted.
        delay: Seconds the court sat on the application before deciding
            (0 for a prompt ruling); the applicant cannot rely on the
            instrument before ``applied_at + delay``.
    """

    granted: bool
    reason: str
    instrument: IssuedProcess | None = None
    delay: float = 0.0


class Magistrate:
    """A deterministic magistrate applying the standards ladder.

    Args:
        docket: The docket to file issued instruments on.
        staleness_horizon: Age (seconds) past which a fact is treated as
            stale.  ``None`` disables staleness discounting entirely,
            matching the line of cases holding information "sufficient to
            establish the probable cause no matter how old it is".
        injector: Optional fault injector; the court may then deny
            otherwise sufficient applications (``COURT_DENIAL``), sit on
            them (``COURT_LATENCY``), or issue instruments with a
            drastically shortened validity window
            (``INSTRUMENT_EXPIRY``) — the hostile-court conditions a
            resilient pipeline must survive.
    """

    def __init__(
        self,
        docket: Docket | None = None,
        staleness_horizon: float | None = None,
        injector: "FaultInjector | None" = None,
    ) -> None:
        self.docket = docket or Docket()
        self.staleness_horizon = staleness_horizon
        self.injector = injector

    def review(self, application: ProcessApplication) -> Decision:
        """Review an application and issue an instrument if it qualifies."""
        required = REQUIRED_SHOWING[application.kind]
        showing = self._effective_showing(application)
        target = f"application:{application.applicant}"
        delay = 0.0
        if self.injector is not None and self.injector.fires(
            FaultKind.COURT_LATENCY,
            target=target,
            time=application.applied_at,
        ):
            delay = self.injector.magnitude(
                FaultKind.COURT_LATENCY, target=target
            )

        if self.injector is not None and self.injector.fires(
            FaultKind.COURT_DENIAL,
            target=target,
            time=application.applied_at,
        ):
            self.docket.record_application(False)
            return Decision(
                granted=False,
                reason=(
                    "application denied by the issuing court (injected "
                    "court fault; the showing was not reached)"
                ),
                delay=delay,
            )

        if application.kind is ProcessKind.NONE:
            decision = Decision(
                granted=False,
                reason="no instrument exists for 'no process'",
                delay=delay,
            )
            self.docket.record_application(False)
            return decision

        if not showing.satisfies(required):
            decision = Decision(
                granted=False,
                reason=(
                    f"showing of {showing.name.lower().replace('_', ' ')} "
                    f"does not meet the required "
                    f"{required.name.lower().replace('_', ' ')}"
                ),
                delay=delay,
            )
            self.docket.record_application(False)
            return decision

        if not application.is_particular():
            decision = Decision(
                granted=False,
                reason=(
                    "warrant application lacks particularity: it must "
                    "describe the place to be searched and the things to "
                    "be seized"
                ),
                delay=delay,
            )
            self.docket.record_application(False)
            return decision

        if not application.shows_necessity():
            decision = Decision(
                granted=False,
                reason=(
                    "Title III application lacks the 2518(1)(c) necessity "
                    "showing: it must explain why normal investigative "
                    "procedures have been tried and failed or appear "
                    "unlikely to succeed"
                ),
                delay=delay,
            )
            self.docket.record_application(False)
            return decision

        issued_at = application.applied_at + delay
        validity = DEFAULT_VALIDITY[application.kind]
        if self.injector is not None and self.injector.fires(
            FaultKind.INSTRUMENT_EXPIRY, target=target, time=issued_at
        ):
            validity = min(
                validity,
                self.injector.magnitude(
                    FaultKind.INSTRUMENT_EXPIRY, target=target
                ),
            )
        instrument = IssuedProcess(
            kind=application.kind,
            issued_to=application.applicant,
            issued_at=issued_at,
            expires_at=issued_at + validity,
            scope=application.target_place or "as described in application",
        )
        self.docket.record_application(True)
        self.docket.file(instrument)
        return Decision(
            granted=True,
            reason=f"showing satisfies {required.name.lower().replace('_', ' ')}",
            instrument=instrument,
            delay=delay,
        )

    def _effective_showing(self, application: ProcessApplication) -> Standard:
        """The application's showing after staleness discounting."""
        if self.staleness_horizon is None:
            return application.showing()
        fresh = [
            fact
            for fact in application.facts
            if application.applied_at - fact.observed_at
            <= self.staleness_horizon
        ]
        if not fresh:
            return Standard.NOTHING
        return max(fact.supports for fact in fresh)
