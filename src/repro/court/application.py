"""Applications for legal process.

An application bundles the facts an investigator can show, the standard
those facts support, and — for warrants — the particularity the Fourth
Amendment demands ("particularly describing the place to be searched, and
the persons or things to be seized").
"""

from __future__ import annotations

import dataclasses

from repro.core.enums import ProcessKind, Standard


@dataclasses.dataclass(frozen=True)
class Fact:
    """One fact offered in support of an application.

    Attributes:
        description: The fact, in plain English.
        supports: The strongest evidentiary standard this fact can carry
            on its own (e.g. an IP address tied to criminal traffic
            supports probable cause — paper section III.A.1(a); mere
            group membership supports only suspicion — Coreas).
        observed_at: When the fact was observed (staleness analysis).
    """

    description: str
    supports: Standard
    observed_at: float = 0.0


@dataclasses.dataclass(frozen=True)
class ProcessApplication:
    """An application for a subpoena, court order, or warrant.

    Attributes:
        kind: The process requested.
        applicant: Who applies.
        facts: Supporting facts.
        target_place: For warrants: the place to be searched.
        target_items: For warrants: the things to be seized.
        applied_at: Simulation time of the application.
        necessity_statement: For Title III orders: the 2518(1)(c)
            necessity/exhaustion showing — why "normal investigative
            procedures have been tried and have failed or reasonably
            appear to be unlikely to succeed".
    """

    kind: ProcessKind
    applicant: str
    facts: tuple[Fact, ...]
    target_place: str = ""
    target_items: tuple[str, ...] = ()
    applied_at: float = 0.0
    necessity_statement: str = ""

    def showing(self) -> Standard:
        """The strongest standard the offered facts support.

        Standards do not stack: ten mere suspicions are still mere
        suspicion; the application carries the *maximum* of its facts.
        """
        if not self.facts:
            return Standard.NOTHING
        return max(fact.supports for fact in self.facts)

    def is_particular(self) -> bool:
        """Whether the warrant-particularity requirement is met."""
        if self.kind not in (
            ProcessKind.SEARCH_WARRANT,
            ProcessKind.WIRETAP_ORDER,
        ):
            return True
        return bool(self.target_place) and bool(self.target_items)

    def shows_necessity(self) -> bool:
        """Whether the Title III necessity requirement is met.

        Only wiretap orders demand it; every other process trivially
        passes.
        """
        if self.kind is not ProcessKind.WIRETAP_ORDER:
            return True
        return bool(self.necessity_statement.strip())
