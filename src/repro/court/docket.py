"""Issued process instruments and the court docket.

A granted application becomes an :class:`IssuedProcess` — the thing an
investigator actually holds.  Instruments expire (section III.A.2(b): "a
search warrant may expire and revoke after a specific time period") and
may be revoked; both states invalidate later reliance.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.core.enums import ProcessKind

_instrument_ids = itertools.count(1)
_docket_ids = itertools.count(1)

#: Default validity windows, in simulated seconds.  Warrants are
#: deliberately the shortest-lived; subpoenas the longest.  "No
#: process" is never issued as an instrument, so its window is empty.
DEFAULT_VALIDITY: dict[ProcessKind, float] = {
    ProcessKind.NONE: 0.0,
    ProcessKind.SUBPOENA: 90 * 86400.0,
    ProcessKind.COURT_ORDER: 60 * 86400.0,
    ProcessKind.SEARCH_WARRANT: 14 * 86400.0,
    ProcessKind.WIRETAP_ORDER: 30 * 86400.0,
}


@dataclasses.dataclass
class IssuedProcess:
    """One issued instrument: its kind, scope, and validity window."""

    kind: ProcessKind
    issued_to: str
    issued_at: float
    expires_at: float
    scope: str = ""
    revoked: bool = False
    instrument_id: int = dataclasses.field(
        default_factory=lambda: next(_instrument_ids)
    )

    def valid_at(self, time: float) -> bool:
        """Whether the instrument may be relied on at a given time."""
        return (
            not self.revoked
            and self.issued_at <= time <= self.expires_at
        )

    def is_valid(self, time: float) -> bool:
        """Alias of :meth:`valid_at`, the name consumers read best."""
        return self.valid_at(time)

    def time_remaining(self, time: float) -> float:
        """Seconds of validity left at ``time`` (0 if expired/revoked)."""
        if not self.valid_at(time):
            return 0.0
        return self.expires_at - time

    def revoke(self) -> None:
        """Revoke the instrument (e.g. consent withdrawn, order quashed)."""
        self.revoked = True


class Docket:
    """The court's record of applications and issued instruments.

    Every docket carries a process-unique ``docket_id`` so telemetry can
    correlate an acquisition span back to the docket its authorizing
    instrument was filed on (the audit-trail query the paper's
    accountability argument asks for).
    """

    def __init__(self) -> None:
        self.docket_id = next(_docket_ids)
        self._instruments: list[IssuedProcess] = []
        self.applications_received = 0
        self.applications_denied = 0

    def record_application(self, granted: bool) -> None:
        """Count an application and its outcome."""
        self.applications_received += 1
        if not granted:
            self.applications_denied += 1

    def file(self, instrument: IssuedProcess) -> None:
        """File an issued instrument on the docket."""
        self._instruments.append(instrument)

    @property
    def instruments(self) -> tuple[IssuedProcess, ...]:
        """All instruments ever issued, oldest first."""
        return tuple(self._instruments)

    def active_for(
        self, holder: str, time: float
    ) -> list[IssuedProcess]:
        """Instruments a holder can rely on right now."""
        return [
            instrument
            for instrument in self._instruments
            if instrument.issued_to == holder and instrument.valid_at(time)
        ]

    def strongest_process(self, holder: str, time: float) -> ProcessKind:
        """The strongest process a holder currently has."""
        active = self.active_for(holder, time)
        if not active:
            return ProcessKind.NONE
        return max(instrument.kind for instrument in active)
