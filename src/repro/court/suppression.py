"""Suppression hearings.

The defense moves to suppress; the court applies the exclusionary rule via
the :class:`~repro.evidence.admissibility.AdmissibilityAnalyzer` and
reports what survives.  This is the end of the paper's causal chain:
technique → (il)legal acquisition → admission or suppression.
"""

from __future__ import annotations

import dataclasses

from repro.core.engine import ComplianceEngine
from repro.core.enums import Admissibility
from repro.evidence.admissibility import (
    AdmissibilityAnalyzer,
    AdmissibilityFinding,
)
from repro.court.doctrines import ProsecutionResponse
from repro.evidence.custody import ChainOfCustody
from repro.evidence.items import EvidenceItem


@dataclasses.dataclass(frozen=True)
class SuppressionOutcome:
    """The hearing's complete outcome."""

    findings: dict[int, AdmissibilityFinding]
    admitted: tuple[EvidenceItem, ...]
    suppressed: tuple[EvidenceItem, ...]

    @property
    def suppression_rate(self) -> float:
        """Fraction of offered items suppressed (either way)."""
        total = len(self.admitted) + len(self.suppressed)
        return len(self.suppressed) / total if total else 0.0

    def outcome_for(self, item: EvidenceItem) -> Admissibility:
        """The court's outcome for one item."""
        return self.findings[item.evidence_id].outcome


class SuppressionHearing:
    """Runs the exclusionary-rule analysis over offered evidence."""

    def __init__(self, engine: ComplianceEngine | None = None) -> None:
        self._analyzer = AdmissibilityAnalyzer(engine)

    def hear(
        self,
        items: list[EvidenceItem],
        custody: dict[int, ChainOfCustody] | None = None,
        responses: dict[int, "ProsecutionResponse"] | None = None,
    ) -> SuppressionOutcome:
        """Hold the hearing.

        Args:
            items: Evidence the prosecution offers.
            custody: Optional custody chains keyed by evidence id.
            responses: Optional prosecution responses (good faith,
                independent source, inevitable discovery, attenuation)
                keyed by evidence id.

        Returns:
            Findings per item plus the admitted/suppressed partition.
        """
        findings = self._analyzer.analyze(items, custody, responses)
        admitted = tuple(
            item
            for item in items
            if findings[item.evidence_id].outcome is Admissibility.ADMISSIBLE
        )
        suppressed = tuple(
            item
            for item in items
            if findings[item.evidence_id].outcome
            is not Admissibility.ADMISSIBLE
        )
        return SuppressionOutcome(
            findings=findings, admitted=admitted, suppressed=suppressed
        )
