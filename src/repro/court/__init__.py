"""The court substrate: applications, the magistrate, and suppression.

Implements the paper's process machinery: the standards ladder of section
II.A (suspicion → articulable facts → probable cause), warrant
particularity, instrument expiry, and the suppression hearing that closes
the loop on illegally gathered evidence.
"""

from repro.court.application import Fact, ProcessApplication
from repro.court.docket import (
    DEFAULT_VALIDITY,
    Docket,
    IssuedProcess,
)
from repro.court.doctrines import (
    INEVITABILITY_THRESHOLD,
    ProsecutionResponse,
    ResponseKind,
    response_prevails,
)
from repro.court.magistrate import Decision, Magistrate
from repro.court.suppression import SuppressionHearing, SuppressionOutcome

__all__ = [
    "DEFAULT_VALIDITY",
    "Decision",
    "Docket",
    "Fact",
    "INEVITABILITY_THRESHOLD",
    "IssuedProcess",
    "Magistrate",
    "ProcessApplication",
    "ProsecutionResponse",
    "ResponseKind",
    "SuppressionHearing",
    "SuppressionOutcome",
    "response_prevails",
]
