"""Prosecution responses to suppression motions.

The exclusionary rule has well-established limits; when the defense moves
to suppress, the prosecution may invoke:

* **good-faith reliance** (United States v. Leon): the officer reasonably
  relied on a facially valid warrant that was later invalidated — the
  deterrence rationale of exclusion does not apply;
* **independent source**: the same evidence was (or provably would have
  been) obtained through a lawful channel unconnected to the violation;
* **inevitable discovery** (Nix v. Williams): routine lawful procedure
  would inevitably have turned the evidence up;
* **attenuation**: the causal chain between the violation and the
  evidence is so long that the taint has dissipated.

These are modelled as per-item :class:`ProsecutionResponse` records the
hearing weighs after the baseline legality/taint analysis.
"""

from __future__ import annotations

import dataclasses
import enum


class ResponseKind(enum.Enum):
    """Which exclusionary-rule limit the prosecution invokes."""

    GOOD_FAITH_RELIANCE = "good-faith reliance on a facially valid warrant"
    INDEPENDENT_SOURCE = "independent source"
    INEVITABLE_DISCOVERY = "inevitable discovery"
    ATTENUATION = "attenuation of the taint"


@dataclasses.dataclass(frozen=True)
class ProsecutionResponse:
    """One argument offered against suppressing one evidence item.

    Attributes:
        evidence_id: The item the response defends.
        kind: The doctrine invoked.
        basis: The factual basis, in plain English.
        warrant_facially_valid: For good faith — whether the warrant the
            officer relied on appeared valid when executed.  A warrant so
            facially deficient no reasonable officer could rely on it
            (e.g. utterly lacking particularity) does not qualify.
        independent_evidence_id: For independent source — the evidence id
            of the untainted parallel acquisition, which must itself
            survive the hearing.
        discovery_probability: For inevitable discovery — the court's
            assessment that routine procedure would have found the item;
            must be a near-certainty (>= 0.9 here) to prevail.
    """

    evidence_id: int
    kind: ResponseKind
    basis: str
    warrant_facially_valid: bool = True
    independent_evidence_id: int | None = None
    discovery_probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.discovery_probability <= 1.0:
            raise ValueError(
                f"discovery_probability must be a probability, got "
                f"{self.discovery_probability}"
            )


#: Threshold for inevitable discovery to prevail.
INEVITABILITY_THRESHOLD = 0.9


def response_prevails(
    response: ProsecutionResponse,
    independent_source_admitted: bool,
) -> tuple[bool, str]:
    """Decide one prosecution response.

    Args:
        response: The argument offered.
        independent_source_admitted: For independent-source claims,
            whether the named parallel evidence itself was admitted.

    Returns:
        ``(prevails, reason)``.
    """
    if response.kind is ResponseKind.GOOD_FAITH_RELIANCE:
        if response.warrant_facially_valid:
            return True, (
                "officer reasonably relied on a facially valid warrant "
                "(Leon); exclusion would not deter misconduct"
            )
        return False, (
            "the warrant was so facially deficient no reasonable officer "
            "could have relied on it"
        )

    if response.kind is ResponseKind.INDEPENDENT_SOURCE:
        if response.independent_evidence_id is None:
            return False, "no independent acquisition identified"
        if independent_source_admitted:
            return True, (
                f"the same evidence was lawfully obtained through "
                f"evidence #{response.independent_evidence_id}"
            )
        return False, (
            f"the claimed independent source (evidence "
            f"#{response.independent_evidence_id}) did not itself survive"
        )

    if response.kind is ResponseKind.INEVITABLE_DISCOVERY:
        if response.discovery_probability >= INEVITABILITY_THRESHOLD:
            return True, (
                "routine lawful procedure would inevitably have "
                "discovered the evidence (Nix)"
            )
        return False, (
            f"discovery was merely possible "
            f"(p={response.discovery_probability:.2f}), not inevitable"
        )

    # Attenuation: we model it as prevailing only on an explicit factual
    # basis; the hearing treats a bare invocation as insufficient.
    if response.basis.strip():
        return True, f"the taint has attenuated: {response.basis}"
    return False, "no factual basis for attenuation offered"
