"""Structured diagnostics shared by both static-analysis targets.

The plan checker and the AST linter both answer the same shape of
question — "something about this artifact is wrong, here is where, here
is the law or invariant it violates, and here is how to fix it" — so
they share one :class:`Diagnostic` record.  Plan diagnostics anchor to a
plan step; lint diagnostics anchor to a file and line.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.core.enums import LegalSource


class Severity(enum.IntEnum):
    """How bad a finding is, ordered so ``max()`` picks the worst."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        """Lower-case label used in rendered diagnostics."""
        return self.name.lower()


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding from the plan checker or the linter.

    Attributes:
        severity: How bad the finding is.
        code: Stable machine-readable code (``PLAN0xx`` for plan
            findings, ``REPRO1xx`` for lint rules).
        message: Human-readable statement of the problem.
        path: Source file the finding anchors to (lint findings).
        line: 1-based line number within ``path`` (lint findings).
        col: 1-based column within ``line`` (lint findings; ``None``
            when the producing rule predates column tracking).
        step: 1-based plan step number (plan findings).
        source: The body of law the finding derives from, when one does.
        authorities: Citation keys into the
            :class:`~repro.core.caselaw.AuthorityRegistry`.
        fix_it: A concrete suggested fix ("obtain a search warrant
            before step 3").
    """

    severity: Severity
    code: str
    message: str
    path: str | None = None
    line: int | None = None
    col: int | None = None
    step: int | None = None
    source: LegalSource | None = None
    authorities: tuple[str, ...] = ()
    fix_it: str | None = None

    def render(self) -> str:
        """One diagnostic as a compiler-style line (plus fix-it line)."""
        where = ""
        if self.path is not None:
            where = f"{self.path}:{self.line if self.line else '?'}: "
            if self.line and self.col:
                where = f"{self.path}:{self.line}:{self.col}: "
        elif self.step is not None:
            where = f"step {self.step}: "
        cites = f" [{', '.join(self.authorities)}]" if self.authorities else ""
        text = (
            f"{where}{self.severity.label}: {self.code}: "
            f"{self.message}{cites}"
        )
        if self.fix_it:
            text += f"\n    fix: {self.fix_it}"
        return text


def worst_severity(diagnostics: list[Diagnostic]) -> Severity | None:
    """The worst severity present, or ``None`` for an empty list."""
    return max(
        (diagnostic.severity for diagnostic in diagnostics), default=None
    )


def has_errors(diagnostics: list[Diagnostic]) -> bool:
    """Whether any diagnostic is an :attr:`Severity.ERROR`."""
    return any(
        diagnostic.severity is Severity.ERROR for diagnostic in diagnostics
    )


def render_report(diagnostics: list[Diagnostic]) -> str:
    """Render a list of diagnostics as a multi-line report."""
    if not diagnostics:
        return "no findings"
    lines = [diagnostic.render() for diagnostic in diagnostics]
    errors = sum(
        1 for d in diagnostics if d.severity is Severity.ERROR
    )
    warnings = sum(
        1 for d in diagnostics if d.severity is Severity.WARNING
    )
    lines.append(
        f"{len(diagnostics)} finding(s): "
        f"{errors} error(s), {warnings} warning(s)"
    )
    return "\n".join(lines)
