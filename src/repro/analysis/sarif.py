"""SARIF 2.1.0 output for the linter.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning ingests; emitting it from
``repro lint --sarif`` puts the legality prover's findings in the same
pull-request annotation pipeline as any commercial analyzer.

The writer is hand-rolled (the repo takes no dependencies) and targets
the subset of the schema code scanning consumes: one ``run`` with a
``tool.driver`` carrying the rule catalog, and one ``result`` per
diagnostic with a physical location, the rule id, and a stable
``partialFingerprints`` entry so baseline matching survives line drift
when unrelated code moves.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.pylint_rules.base import LintRule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.NOTE: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def fingerprint(diagnostic: Diagnostic) -> str:
    """A stable identity for one finding, independent of line numbers.

    Hashes the path, code, and message — not the line — so pure line
    drift (an unrelated edit above the finding) keeps the identity, and
    the same is used by the baseline file.
    """
    payload = "\x1f".join(
        (
            diagnostic.path or "",
            diagnostic.code,
            diagnostic.message,
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def _result(diagnostic: Diagnostic) -> dict[str, object]:
    region: dict[str, object] = {
        "startLine": diagnostic.line or 1,
    }
    if diagnostic.col:
        region["startColumn"] = diagnostic.col
    message = diagnostic.message
    if diagnostic.fix_it:
        message = f"{message}\nfix: {diagnostic.fix_it}"
    return {
        "ruleId": diagnostic.code,
        "level": _LEVELS[diagnostic.severity],
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": (diagnostic.path or "<unknown>").replace(
                            "\\", "/"
                        ),
                    },
                    "region": region,
                }
            }
        ],
        "partialFingerprints": {
            "reproLint/v1": fingerprint(diagnostic),
        },
    }


def _rule_descriptor(rule: LintRule) -> dict[str, object]:
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.description or rule.name},
    }


def to_sarif(
    diagnostics: list[Diagnostic],
    rules: tuple[LintRule, ...],
) -> dict[str, object]:
    """The SARIF log object for one lint run."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro-lint"
                        ),
                        "rules": [
                            _rule_descriptor(rule) for rule in rules
                        ],
                    }
                },
                "results": [
                    _result(diagnostic) for diagnostic in diagnostics
                ],
            }
        ],
    }


def write_sarif(
    path: Path,
    diagnostics: list[Diagnostic],
    rules: tuple[LintRule, ...],
) -> None:
    """Serialize one run to a SARIF file (sorted keys, trailing newline)."""
    log = to_sarif(diagnostics, rules)
    path.write_text(
        json.dumps(log, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
