"""REPRO102: catalogue scenes must carry the paper's answer.

The Table 1 and extended-scene catalogues are the repo's ground truth;
a ``Scenario`` constructed without ``paper_needs_process`` (or an
``ExtendedScene`` without ``expected_process``) compiles fine but makes
the benchmark vacuous for that row.  The rule runs only on the two
catalogue modules.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.pylint_rules.base import (
    LintRule,
    ModuleUnderLint,
    register,
)

#: Constructor name -> (answer keyword, positional arity that covers it).
_REQUIRED_ANSWERS: dict[str, tuple[str, int]] = {
    "Scenario": ("paper_needs_process", 3),
    "ExtendedScene": ("expected_process", 3),
}

_CATALOGUE_FILES = {"scenarios.py", "extended_scenarios.py"}


@register
class ScenarioAnswerRule(LintRule):
    """Catalogue ``Scenario``/``ExtendedScene`` calls declare answers."""

    code = "REPRO102"
    name = "scenario-answer"
    description = (
        "every Scenario/ExtendedScene built in the catalogues carries "
        "the paper's published answer"
    )

    def applies_to(self, module: ModuleUnderLint) -> bool:
        return module.parts()[-1] in _CATALOGUE_FILES

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Name):
                continue
            required = _REQUIRED_ANSWERS.get(node.func.id)
            if required is None:
                continue
            keyword_name, covering_arity = required
            keywords = {
                keyword.arg
                for keyword in node.keywords
                if keyword.arg is not None
            }
            has_star_kwargs = any(
                keyword.arg is None for keyword in node.keywords
            )
            if (
                keyword_name in keywords
                or len(node.args) >= covering_arity
                or has_star_kwargs
            ):
                continue
            yield self.diagnostic(
                module,
                node,
                f"{node.func.id} constructed without "
                f"`{keyword_name}`; the benchmark cannot check this "
                "scene against the paper",
                fix_it=(
                    f"pass `{keyword_name}=...` with the paper's "
                    "published answer"
                ),
            )
