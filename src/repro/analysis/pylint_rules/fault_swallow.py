"""REPRO107: techniques may not silently swallow injected faults.

The resilience contract for Section IV techniques is *graceful
degradation, honestly reported*: on degraded input a ``run``/``detect``
style method returns a confidence-scored partial result instead of
raising.  The failure mode this rule guards against is the dishonest
half of that bargain — an ``except FaultError: pass`` that eats the
fault and lets a full-confidence result escape, which is exactly the
kind of silent evidence-quality laundering a suppression hearing exists
to catch.

A handler that catches a fault-family exception inside a technique entry
point must either re-raise or visibly record the degradation: mention
``confidence`` or ``provenance``, or call a ``record*`` method — and it
must do so on **every** path through the handler.  The check runs a
must-pass analysis over the handler body's own CFG, so a handler that
records only inside one branch (``if partial: confidence = 0.5``) is
still a finding: the other branch launders the fault.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.flow.cfg import (
    build_statements_cfg,
    iter_element_nodes,
)
from repro.analysis.flow.dataflow import all_paths_cross
from repro.analysis.pylint_rules.base import (
    LintRule,
    ModuleUnderLint,
    register,
)

#: Exception-name suffixes treated as the injected-fault family.
_FAULT_NAME_SUFFIXES = ("FaultError", "Fault", "ReadError")

#: Method-name prefixes that are technique entry points.
_ENTRY_POINT_PREFIXES = (
    "run",
    "detect",
    "correlate",
    "investigate",
    "assess",
)

#: Identifiers whose presence in a handler counts as recording the
#: degradation in the result.
_RECORDING_NAMES = {"confidence", "provenance"}


def _terminal_name(node: ast.expr | None) -> str:
    """``a.b.C`` or ``C`` -> ``"C"``; anything else -> ``""``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _caught_fault_names(handler: ast.ExceptHandler) -> list[str]:
    """Fault-family exception names this handler catches."""
    exception_type = handler.type
    if exception_type is None:
        # A bare ``except:`` catches FaultError along with everything
        # else and is flagged the same way.
        return ["<bare except>"]
    types = (
        exception_type.elts
        if isinstance(exception_type, ast.Tuple)
        else [exception_type]
    )
    return [
        name
        for name in (_terminal_name(t) for t in types)
        if name.endswith(_FAULT_NAME_SUFFIXES)
    ]


def _records_element(element: ast.AST) -> bool:
    """Whether evaluating this CFG element records the degradation."""
    for node in iter_element_nodes(element):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Name) and node.id in _RECORDING_NAMES:
            return True
        if isinstance(node, ast.Attribute) and (
            node.attr in _RECORDING_NAMES or node.attr.startswith("record")
        ):
            return True
        if isinstance(node, ast.keyword) and node.arg in _RECORDING_NAMES:
            return True
    return False


def _records_on_all_paths(handler: ast.ExceptHandler) -> bool:
    """Whether every path through the handler re-raises or records.

    Built on the handler body's own CFG: a recording statement guarded
    by a condition covers only the paths that execute it.
    """
    cfg = build_statements_cfg(list(handler.body))
    return all_paths_cross(cfg, _records_element)


def _is_entry_point(function: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return function.name.startswith(_ENTRY_POINT_PREFIXES)


@register
class FaultSwallowRule(LintRule):
    """Fault-family exceptions must surface in confidence/provenance."""

    code = "REPRO107"
    name = "fault-swallow"
    description = (
        "technique run/detect methods may not catch FaultError without "
        "recording it in the result's confidence or provenance on "
        "every handler path"
    )

    def applies_to(self, module: ModuleUnderLint) -> bool:
        return "techniques" in module.parts()

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        for function in ast.walk(module.tree):
            if not isinstance(
                function, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if not _is_entry_point(function):
                continue
            for node in ast.walk(function):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                caught = _caught_fault_names(node)
                if not caught or _records_on_all_paths(node):
                    continue
                names = ", ".join(dict.fromkeys(caught))
                yield self.diagnostic(
                    module,
                    node,
                    f"`{function.name}` catches {names} without "
                    "recording the degradation on every handler path; "
                    "the caller can receive a full-confidence result "
                    "built from faulted input",
                    fix_it=(
                        "re-raise, or reflect the fault in the result's "
                        "`confidence`/`provenance` (or a `record*` call) "
                        "on every path through the handler"
                    ),
                )
