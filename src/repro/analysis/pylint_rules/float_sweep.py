"""REPRO108: technique sweeps may not accumulate floats in a while loop.

The pattern this rule hunts is the scalar offset sweep the vectorized
signal kernels replaced::

    offset = 0.0
    while offset <= max_offset:
        ...one full pass over the arrivals...
        offset += offset_step

It is slow — one O(packets) pass per trial offset instead of one batched
kernel call — and subtly wrong at the edges: accumulated floating-point
error decides whether the final offset makes the cut, and a zero or
negative step loops forever.  Detector hot paths should build the trial
grid once with :func:`repro.signal.offset_grid` (which validates both
parameters) and hand the whole offset axis to the kernels in
:mod:`repro.signal`.

The scalar twins kept for the differential suite are exempt: a function
whose name starts with ``_reference`` exists precisely to preserve the
legacy loop for equivalence testing.  Increments that call out (for
example ``t += rng.expovariate(rate)``) model arrival processes, not
sweep grids, and integer-constant increments are counters — neither is
flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.pylint_rules.base import (
    LintRule,
    ModuleUnderLint,
    register,
)


def _swept_variable(loop: ast.While) -> str | None:
    """The loop variable of a ``while x <= bound`` / ``while x < bound``."""
    test = loop.test
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return None
    if not isinstance(test.ops[0], (ast.Lt, ast.LtE)):
        return None
    if not isinstance(test.left, ast.Name):
        return None
    return test.left.id


def _is_float_accumulation(statement: ast.stmt, variable: str) -> bool:
    """Whether the statement is ``variable += <non-call, non-int>``."""
    if not isinstance(statement, ast.AugAssign):
        return False
    if not isinstance(statement.op, ast.Add):
        return False
    target = statement.target
    if not isinstance(target, ast.Name) or target.id != variable:
        return False
    value = statement.value
    if isinstance(value, ast.Call):
        # ``t += rng.expovariate(rate)`` — an arrival process, not a grid.
        return False
    if isinstance(value, ast.Constant) and isinstance(value.value, int):
        # Integer counters never accumulate representation error.
        return False
    return True


@register
class FloatSweepRule(LintRule):
    """Offset sweeps must use the vectorized grid, not += accumulation."""

    code = "REPRO108"
    name = "float-accumulation-sweep"
    description = (
        "technique loops may not sweep offsets by accumulating floats "
        "(while x <= bound: ... x += step); build the grid once with "
        "repro.signal.offset_grid and batch through the signal kernels"
    )

    def applies_to(self, module: ModuleUnderLint) -> bool:
        return "techniques" in module.parts()

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        for function in ast.walk(module.tree):
            if not isinstance(
                function, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if function.name.startswith("_reference"):
                # The scalar twin kept for the differential suite.
                continue
            for loop in ast.walk(function):
                if not isinstance(loop, ast.While):
                    continue
                variable = _swept_variable(loop)
                if variable is None:
                    continue
                if not any(
                    _is_float_accumulation(node, variable)
                    for node in ast.walk(loop)
                    if node is not loop
                ):
                    continue
                yield self.diagnostic(
                    module,
                    loop,
                    f"`{function.name}` sweeps `{variable}` by float "
                    "accumulation; the grid's edge behaviour depends on "
                    "rounding and a non-positive step never terminates",
                    fix_it=(
                        "build the trial grid once with "
                        "repro.signal.offset_grid(max_offset, step) and "
                        "evaluate all offsets through the batched kernels "
                        "in repro.signal"
                    ),
                )
