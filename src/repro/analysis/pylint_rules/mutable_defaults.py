"""REPRO106: no mutable default arguments.

A ``def f(x, seen=[])`` shares one list across every call — in this
codebase that turns a pure compliance check into one that remembers
earlier scenes, which is exactly the class of bug the determinism
benchmarks cannot catch (results stay deterministic, just wrong).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.pylint_rules.base import (
    LintRule,
    ModuleUnderLint,
    register,
)

_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "deque"}
_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def _is_mutable_default(node: ast.expr) -> bool:
    """Whether a default expression evaluates to a shared mutable."""
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
    )


@register
class MutableDefaultRule(LintRule):
    """Function defaults must not be mutable objects."""

    code = "REPRO106"
    name = "mutable-default-argument"
    description = "no list/dict/set literals as function defaults"

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            defaults = list(node.args.defaults)
            defaults.extend(
                default
                for default in node.args.kw_defaults
                if default is not None
            )
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.diagnostic(
                        module,
                        default,
                        f"function {node.name!r} uses a mutable "
                        "default argument; the object is shared "
                        "across calls",
                        fix_it=(
                            "default to None and construct the "
                            "mutable inside the function body"
                        ),
                    )
