"""REPRO101: concrete Technique subclasses must declare their contract.

A technique that keeps the base class's ``name`` shows up as "unnamed
technique" in every assessment, and one without ``required_actions``
cannot be classified at all — both silently break the Section IV
advisor.  The rule flags any concrete class deriving from ``Technique``
that does not override both members in its own body.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.pylint_rules.base import (
    LintRule,
    ModuleUnderLint,
    register,
)

_ABSTRACT_DECORATORS = {"abstractmethod", "abstractproperty"}


def _base_names(node: ast.ClassDef) -> list[str]:
    """Terminal names of a class's bases (``a.b.C`` -> ``C``)."""
    names: list[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _is_abstract(node: ast.ClassDef) -> bool:
    """Whether the class itself declares abstract members."""
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for decorator in item.decorator_list:
            terminal = (
                decorator.attr
                if isinstance(decorator, ast.Attribute)
                else decorator.id if isinstance(decorator, ast.Name) else ""
            )
            if terminal in _ABSTRACT_DECORATORS:
                return True
    return False


def _class_assigns(node: ast.ClassDef) -> set[str]:
    """Names bound by class-level assignments."""
    bound: set[str] = set()
    for item in node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(item, ast.AnnAssign):
            if isinstance(item.target, ast.Name) and item.value is not None:
                bound.add(item.target.id)
    return bound


def _class_methods(node: ast.ClassDef) -> set[str]:
    """Names of functions defined directly in the class body."""
    return {
        item.name
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


@register
class TechniqueContractRule(LintRule):
    """Concrete ``Technique`` subclasses override name/required_actions."""

    code = "REPRO101"
    name = "technique-contract"
    description = (
        "every concrete Technique subclass overrides `name` and "
        "`required_actions`"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = _base_names(node)
            if "Technique" not in bases or node.name == "Technique":
                continue
            if _is_abstract(node):
                continue
            assigns = _class_assigns(node)
            methods = _class_methods(node)
            if "name" not in assigns and "name" not in methods:
                yield self.diagnostic(
                    module,
                    node,
                    f"Technique subclass {node.name!r} does not "
                    "override the `name` class attribute; assessments "
                    "will report it as 'unnamed technique'",
                    fix_it=(
                        f"add `name = \"...\"` to the body of "
                        f"{node.name}"
                    ),
                )
            if "required_actions" not in methods:
                yield self.diagnostic(
                    module,
                    node,
                    f"Technique subclass {node.name!r} does not define "
                    "`required_actions`; the advisor cannot classify "
                    "its legal feasibility",
                    fix_it=(
                        f"define `required_actions(self)` on "
                        f"{node.name} returning every acquisition the "
                        "technique performs"
                    ),
                )
