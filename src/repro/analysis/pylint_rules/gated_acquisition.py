"""REPRO110: every acquisition must be dominated by a legal gate.

The paper's Table 1 maps each acquisition technique to the minimum legal
process it requires; the runtime enforces that mapping dynamically (the
compliance engine refuses, the suppression hearing excludes).  This rule
is the *static* half of the same contract: at every call site that
exercises an acquisition capability — tap installation, device imaging,
stored-record fetches, investigator actions, relay queries — **all**
control-flow paths from the function entry to the call must first cross
a legal gate: a process-validity or compliance-engine check, an
application to the magistrate, a raise of ``InsufficientProcess``, or a
conscious dispatch on a statutory-exception predicate (the provider
exception, consent, emergency).

This is a must-pass dataflow problem on the function's CFG, not a
syntactic pattern: an ``if``/``else`` where only one arm checks, a
``try`` body whose handler skips the check, a loop that can bypass the
gate on its back edge — all produce a concrete *ungated path*, which the
diagnostic renders block by block so the offending route is reviewable.

Sanctioned exceptions are suppressed inline with a mandatory
justification (``# repro-lint: disable=REPRO110 -- <legal basis>``);
the taint analysis (REPRO111) treats those sites as lawful and every
other ungated site as a poison source.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.flow.cfg import Cfg
from repro.analysis.flow.dataflow import (
    find_unguarded_path,
    must_pass_positions,
)
from repro.analysis.flow.legality import (
    capability_calls,
    is_gate_element,
    terminal_name,
)
from repro.analysis.pylint_rules.base import (
    LintRule,
    ModuleUnderLint,
    register,
)


def _render_path(cfg: Cfg, path: list[int]) -> str:
    """One ungated path as ``entry -> then@L12 -> ...`` for the message."""
    hops: list[str] = []
    for index in path:
        block = cfg.block(index)
        line = block.first_line()
        hops.append(
            f"{block.label}@L{line}" if line is not None else block.label
        )
    return " -> ".join(hops)


@register
class GatedAcquisitionRule(LintRule):
    """Acquisition capabilities must be gated on all CFG paths."""

    code = "REPRO110"
    name = "gated-acquisition"
    description = (
        "every path to an acquisition call (attach_tap, image_device, "
        "compelled_disclosure, act, query, ...) must cross a legal gate "
        "(validity check, compliance evaluation, or statutory exception)"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        project = self.project_for(module)
        for info in project.functions():
            if info.module is not module:
                continue
            cfg = project.cfg(info)
            gated_at = must_pass_positions(cfg, is_gate_element)
            for block in cfg.reachable_blocks():
                for position, element in enumerate(block.elements):
                    calls = list(capability_calls(element))
                    if not calls:
                        continue
                    # A gate evaluated within the same element (a
                    # validity call in the arguments, an explicit
                    # exception keyword) executes before the capability.
                    if gated_at[(block.index, position)] or is_gate_element(
                        element
                    ):
                        continue
                    path = find_unguarded_path(
                        cfg, block.index, position, is_gate_element
                    )
                    rendered = (
                        _render_path(cfg, path) if path else "<entry>"
                    )
                    for call in calls:
                        capability = terminal_name(call.func)
                        yield self.diagnostic(
                            module,
                            call,
                            f"`{info.qualname}` reaches the acquisition "
                            f"`{capability}(...)` with no legal gate on "
                            f"the path [{rendered}]; every path from the "
                            "entry must first check process validity or "
                            "a statutory exception",
                            fix_it=(
                                "dominate this call with a compliance "
                                "check (engine.evaluate / "
                                "process.satisfies / apply_for) or, if a "
                                "statutory exception applies, branch on "
                                "its predicate or suppress with "
                                "`# repro-lint: disable=REPRO110 -- "
                                "<legal basis>`"
                            ),
                        )
