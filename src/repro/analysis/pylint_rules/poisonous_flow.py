"""REPRO111: fruit of the poisonous tree, proven by dataflow.

The plan checker already propagates taint along *declared* evidence
edges (``PLAN003``).  This rule proves the same doctrine over the actual
code: a value derived from an **ungated** acquisition (any REPRO110
violation that is not suppressed with a legal justification) is poison,
and feeding it into a further acquisition or into an application for
legal process would be suppressed under *Wong Sun* — the derivative use
is unlawful even though the second step looks valid in isolation.

Facts are ``derived-from-acquisition`` origins propagated through:

* assignments, tuple unpacking, augmented assignment, ``for`` targets,
  ``with ... as`` bindings, and walrus expressions;
* expressions — attribute access and arbitrary operators pass taint
  through, so ``hits[0].peer`` stays derived from ``hits``;
* calls — **interprocedurally**, via memoized per-function summaries:
  whether a function returns taint from its own ungated source, which
  parameters flow to its return value, and which parameters reach an
  acquisition or application sink inside it.  Call targets resolve
  through the project index (:mod:`repro.analysis.flow.project`);
  unresolved calls conservatively pass taint from arguments to result.

``derived_from=`` keywords are exempt sinks: passing an evidence id
there *records* provenance honestly (the plan-IR edge PLAN003 audits),
which is the lawful way to consume derived evidence.
"""

from __future__ import annotations

import ast
import dataclasses
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.flow.cfg import iter_element_nodes
from repro.analysis.flow.dataflow import must_pass_positions
from repro.analysis.flow.legality import (
    ACQUISITION_CAPABILITIES,
    capability_calls,
    is_gate_element,
    terminal_name,
)
from repro.analysis.flow.project import FunctionInfo, Project
from repro.analysis.pylint_rules.base import (
    LintRule,
    ModuleUnderLint,
    register,
)
from repro.analysis.suppress import is_suppressed, parse_suppressions
from repro.core.enums import LegalSource

#: Calls that *consume* evidence in a legally significant way: further
#: acquisitions, and applications for legal process built on the facts.
_APPLICATION_SINKS: frozenset[str] = frozenset(
    {"apply_for", "apply_with", "to_application", "add_fact"}
)

_SINKS: frozenset[str] = ACQUISITION_CAPABILITIES | _APPLICATION_SINKS

#: The taint origin for "derived from an ungated acquisition here".
_SOURCE = "<acquisition>"

_EMPTY: frozenset[object] = frozenset()


@dataclasses.dataclass(frozen=True)
class _Hit:
    """One source-to-sink flow found inside a function."""

    sink: ast.Call
    sink_name: str
    source_desc: str
    via: str | None = None  # callee qualname for interprocedural flows


@dataclasses.dataclass
class _Facts:
    """Everything the analysis learns about one function."""

    returns_taint: bool = False
    params_to_return: frozenset[int] = frozenset()
    params_to_sink: dict[int, str] = dataclasses.field(
        default_factory=dict
    )
    hits: list[_Hit] = dataclasses.field(default_factory=list)


def _body_statements(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.stmt]:
    """Every statement of a function body, nested scopes excluded."""
    out: list[ast.stmt] = []
    stack: list[ast.stmt] = list(reversed(function.body))
    while stack:
        statement = stack.pop()
        if isinstance(
            statement,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            continue
        out.append(statement)
        inner: list[ast.stmt] = []
        for field in (
            "body",
            "orelse",
            "finalbody",
        ):
            inner.extend(getattr(statement, field, []) or [])
        for handler in getattr(statement, "handlers", []) or []:
            inner.extend(handler.body)
        for case in getattr(statement, "cases", []) or []:
            inner.extend(case.body)
        stack.extend(reversed(inner))
    return out


class _Analyzer:
    """The per-project taint engine, memoizing function facts."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self._facts: dict[int, _Facts] = {}
        self._in_progress: set[int] = set()

    # -- sources ----------------------------------------------------------------

    def _ungated_sources(self, info: FunctionInfo) -> dict[int, ast.Call]:
        """Unsanctioned acquisition calls, keyed by ``id(call)``.

        A call is a poison source when it is ungated per REPRO110 *and*
        not suppressed with a justification — a justified suppression
        asserts a statutory exception, which makes the acquisition (and
        everything derived from it) lawful.
        """
        suppressions = parse_suppressions(info.module.source)
        cfg = self.project.cfg(info)
        gated = must_pass_positions(cfg, is_gate_element)
        sources: dict[int, ast.Call] = {}
        for block in cfg.reachable_blocks():
            for position, element in enumerate(block.elements):
                for call in capability_calls(element):
                    if gated[(block.index, position)]:
                        continue
                    if is_gate_element(element):
                        continue
                    if is_suppressed(
                        suppressions, "REPRO110", call.lineno
                    ):
                        continue
                    sources[id(call)] = call
        return sources

    # -- per-function facts ------------------------------------------------------

    def facts(self, info: FunctionInfo) -> _Facts:
        key = id(info.node)
        cached = self._facts.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            # Recursion: answer optimistically for the inner query; the
            # outer computation is what gets cached.
            return _Facts()
        self._in_progress.add(key)
        try:
            computed = self._compute(info)
        finally:
            self._in_progress.discard(key)
        self._facts[key] = computed
        return computed

    def _compute(self, info: FunctionInfo) -> _Facts:
        sources = self._ungated_sources(info)
        source_desc = self._describe_sources(sources)
        parameters = info.parameter_names()
        env: dict[str, frozenset[object]] = {
            name: frozenset({index})
            for index, name in enumerate(parameters)
        }
        statements = _body_statements(info.node)

        # Fixpoint over the (flow-insensitive) assignment relation.
        for _ in range(len(statements) + 2):
            changed = False
            for statement in statements:
                changed |= self._bind_statement(
                    statement, env, sources, info
                )
            if not changed:
                break

        facts = _Facts()
        for statement in statements:
            self._scan_statement(
                statement, env, sources, source_desc, info, facts
            )
        return facts

    @staticmethod
    def _describe_sources(sources: dict[int, ast.Call]) -> str:
        if not sources:
            return "an ungated acquisition"
        first = min(sources.values(), key=lambda c: c.lineno)
        return (
            f"the ungated `{terminal_name(first.func)}(...)` "
            f"at line {first.lineno}"
        )

    # -- binding pass ------------------------------------------------------------

    def _bind_statement(
        self,
        statement: ast.stmt,
        env: dict[str, frozenset[object]],
        sources: dict[int, ast.Call],
        info: FunctionInfo,
    ) -> bool:
        changed = False

        def bind(target: ast.expr, origins: frozenset[object]) -> None:
            nonlocal changed
            if isinstance(target, ast.Name):
                before = env.get(target.id, _EMPTY)
                after = before | origins
                if after != before:
                    env[target.id] = after
                    changed = True
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    bind(element, origins)
            elif isinstance(target, ast.Starred):
                bind(target.value, origins)

        if isinstance(statement, ast.Assign):
            origins = self._origins(statement.value, env, sources, info)
            for target in statement.targets:
                bind(target, origins)
        elif isinstance(statement, ast.AnnAssign):
            if statement.value is not None:
                bind(
                    statement.target,
                    self._origins(statement.value, env, sources, info),
                )
        elif isinstance(statement, ast.AugAssign):
            bind(
                statement.target,
                self._origins(statement.value, env, sources, info),
            )
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            bind(
                statement.target,
                self._origins(statement.iter, env, sources, info),
            )
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                if item.optional_vars is not None:
                    bind(
                        item.optional_vars,
                        self._origins(
                            item.context_expr, env, sources, info
                        ),
                    )
        # Walrus targets, wherever they hide in an expression.
        for node in ast.walk(statement):
            if isinstance(node, ast.NamedExpr):
                bind(
                    node.target,
                    self._origins(node.value, env, sources, info),
                )
        return changed

    # -- expression origins ------------------------------------------------------

    def _origins(
        self,
        expr: ast.expr,
        env: dict[str, frozenset[object]],
        sources: dict[int, ast.Call],
        info: FunctionInfo,
    ) -> frozenset[object]:
        if isinstance(expr, ast.Name):
            return env.get(expr.id, _EMPTY)
        if isinstance(expr, ast.Lambda):
            return _EMPTY
        if isinstance(expr, ast.Call):
            return self._call_origins(expr, env, sources, info)
        combined: frozenset[object] = _EMPTY
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                combined |= self._origins(child, env, sources, info)
            elif isinstance(child, ast.keyword):
                combined |= self._origins(
                    child.value, env, sources, info
                )
        return combined

    def _call_origins(
        self,
        call: ast.Call,
        env: dict[str, frozenset[object]],
        sources: dict[int, ast.Call],
        info: FunctionInfo,
    ) -> frozenset[object]:
        out: frozenset[object] = _EMPTY
        if id(call) in sources:
            out |= {_SOURCE}
        # A derived result stays derived: taint on the receiver (or on a
        # callable-valued name) flows to the call's value.
        out |= self._origins(call.func, env, sources, info)

        argument_origins = [
            self._origins(argument, env, sources, info)
            for argument in call.args
        ]
        keyword_origins = {
            keyword.arg: self._origins(
                keyword.value, env, sources, info
            )
            for keyword in call.keywords
            if keyword.arg is not None
        }

        targets = self.project.resolve_call(info.module, call)
        if len(targets) != 1:
            # Unknown callee: conservatively pass every argument's taint
            # through to the result.
            for origins in argument_origins:
                out |= origins
            for origins in keyword_origins.values():
                out |= origins
            return out

        callee = targets[0]
        summary = self.facts(callee)
        if summary.returns_taint:
            out |= {_SOURCE}
        for index, origins in self._map_arguments(
            call, callee, argument_origins, keyword_origins
        ):
            if index in summary.params_to_return:
                out |= origins
        return out

    @staticmethod
    def _map_arguments(
        call: ast.Call,
        callee: FunctionInfo,
        argument_origins: list[frozenset[object]],
        keyword_origins: dict[str, frozenset[object]],
    ) -> list[tuple[int, frozenset[object]]]:
        """Pair caller argument origins with callee parameter indexes."""
        parameters = callee.parameter_names()
        offset = (
            1
            if isinstance(call.func, ast.Attribute)
            and parameters[:1] in (["self"], ["cls"])
            else 0
        )
        mapped: list[tuple[int, frozenset[object]]] = []
        for position, origins in enumerate(argument_origins):
            index = position + offset
            if index < len(parameters):
                mapped.append((index, origins))
        for name, origins in keyword_origins.items():
            if name in parameters:
                mapped.append((parameters.index(name), origins))
        return mapped

    # -- sink scan ---------------------------------------------------------------

    def _scan_statement(
        self,
        statement: ast.stmt,
        env: dict[str, frozenset[object]],
        sources: dict[int, ast.Call],
        source_desc: str,
        info: FunctionInfo,
        facts: _Facts,
    ) -> None:
        if isinstance(statement, ast.Return) and statement.value is not None:
            origins = self._origins(statement.value, env, sources, info)
            if _SOURCE in origins:
                facts.returns_taint = True
            facts.params_to_return = facts.params_to_return | frozenset(
                origin for origin in origins if isinstance(origin, int)
            )
        for node in iter_element_nodes(statement):
            if isinstance(node, ast.Call):
                self._scan_call(
                    node, env, sources, source_desc, info, facts
                )

    def _scan_call(
        self,
        call: ast.Call,
        env: dict[str, frozenset[object]],
        sources: dict[int, ast.Call],
        source_desc: str,
        info: FunctionInfo,
        facts: _Facts,
    ) -> None:
        name = terminal_name(call.func)

        def consume(origins: frozenset[object], sink_name: str,
                    via: str | None) -> None:
            if _SOURCE in origins:
                facts.hits.append(
                    _Hit(
                        sink=call,
                        sink_name=sink_name,
                        source_desc=source_desc,
                        via=via,
                    )
                )
            for origin in origins:
                if isinstance(origin, int):
                    facts.params_to_sink.setdefault(origin, sink_name)

        if name in _SINKS:
            for argument in call.args:
                consume(
                    self._origins(argument, env, sources, info),
                    name,
                    None,
                )
            for keyword in call.keywords:
                if keyword.arg == "derived_from":
                    # Recording provenance is the lawful channel.
                    continue
                consume(
                    self._origins(keyword.value, env, sources, info),
                    name,
                    None,
                )
            return

        targets = self.project.resolve_call(info.module, call)
        if len(targets) != 1:
            return
        callee = targets[0]
        summary = self.facts(callee)
        if not summary.params_to_sink:
            return
        argument_origins = [
            self._origins(argument, env, sources, info)
            for argument in call.args
        ]
        keyword_origins = {
            keyword.arg: self._origins(keyword.value, env, sources, info)
            for keyword in call.keywords
            if keyword.arg is not None
        }
        for index, origins in self._map_arguments(
            call, callee, argument_origins, keyword_origins
        ):
            sink_name = summary.params_to_sink.get(index)
            if sink_name is not None:
                consume(origins, sink_name, callee.qualname)


@register
class PoisonousFlowRule(LintRule):
    """Derived-from-ungated-acquisition values may not feed acquisitions."""

    code = "REPRO111"
    name = "poisonous-flow"
    description = (
        "values derived from an ungated acquisition must not flow into "
        "further acquisitions or process applications (fruit of the "
        "poisonous tree), tracked interprocedurally"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        project = self.project_for(module)
        analyzer = self._analyzer(project)
        for info in project.functions():
            if info.module is not module:
                continue
            for hit in analyzer.facts(info).hits:
                route = (
                    f" (reaching the acquisition inside "
                    f"`{hit.via}`)"
                    if hit.via
                    else ""
                )
                diagnostic = self.diagnostic(
                    module,
                    hit.sink,
                    f"value derived from {hit.source_desc} flows into "
                    f"`{hit.sink_name}(...)`{route}; the derivative "
                    "product would be suppressed as fruit of the "
                    "poisonous tree",
                    fix_it=(
                        "gate the originating acquisition (cure the "
                        "REPRO110 above it), or establish an "
                        "independent source for this input"
                    ),
                )
                yield dataclasses.replace(
                    diagnostic,
                    source=LegalSource.DOCTRINE,
                    authorities=("wong_sun", "nix_v_williams"),
                )

    def _analyzer(self, project: Project) -> _Analyzer:
        cached: _Analyzer | None = getattr(self, "_cached_analyzer", None)
        if cached is not None and cached.project is project:
            return cached
        analyzer = _Analyzer(project)
        self._cached_analyzer = analyzer
        return analyzer
