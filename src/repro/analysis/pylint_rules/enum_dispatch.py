"""REPRO105: dispatch over core enums must be exhaustive.

``ProcessKind`` and ``Admissibility`` are the two enums whose members
gate Table 1 answers and suppression outcomes.  A dict table or
``match`` statement that covers only some members fails at a distance —
usually as a ``KeyError`` deep inside a benchmark — when the missing
member finally shows up.  The rule checks any dict literal whose keys
are all ``Enum.MEMBER`` attributes, and any ``match`` over those enums
without a wildcard, against the real member list imported from
:mod:`repro.core.enums`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.pylint_rules.base import (
    LintRule,
    ModuleUnderLint,
    register,
)
from repro.core.enums import Admissibility, ProcessKind

#: Enum name -> the full set of member names dispatch must cover.
_WATCHED_ENUMS: dict[str, frozenset[str]] = {
    "ProcessKind": frozenset(member.name for member in ProcessKind),
    "Admissibility": frozenset(member.name for member in Admissibility),
}


def _enum_member_key(node: ast.expr) -> tuple[str, str] | None:
    """``ProcessKind.WARRANT`` -> ("ProcessKind", "WARRANT")."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in _WATCHED_ENUMS
    ):
        return node.value.id, node.attr
    return None


def _missing_members(
    enum_name: str, covered: set[str]
) -> tuple[str, ...]:
    """Members of a watched enum a dispatch site failed to cover."""
    return tuple(sorted(_WATCHED_ENUMS[enum_name] - covered))


@register
class EnumDispatchRule(LintRule):
    """Dict tables / match statements over watched enums cover members."""

    code = "REPRO105"
    name = "exhaustive-enum-dispatch"
    description = (
        "dict tables and match statements over ProcessKind/"
        "Admissibility must cover every member"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Dict):
                yield from self._check_dict(module, node)
            elif isinstance(node, ast.Match):
                yield from self._check_match(module, node)

    def _check_dict(
        self, module: ModuleUnderLint, node: ast.Dict
    ) -> Iterator[Diagnostic]:
        keys = [
            _enum_member_key(key) for key in node.keys if key is not None
        ]
        if len(keys) < 2 or any(key is None for key in keys):
            return
        if len(node.keys) != len(keys):  # had a **splat entry
            return
        enum_names = {key[0] for key in keys if key is not None}
        if len(enum_names) != 1:
            return
        (enum_name,) = enum_names
        covered = {key[1] for key in keys if key is not None}
        missing = _missing_members(enum_name, covered)
        if missing:
            yield self.diagnostic(
                module,
                node,
                f"dict dispatch over {enum_name} misses "
                f"{', '.join(missing)}; lookups for those members "
                "will raise KeyError",
                fix_it=(
                    f"add entries for {', '.join(missing)} (or switch "
                    "to .get() with an explicit default)"
                ),
            )

    def _check_match(
        self, module: ModuleUnderLint, node: ast.Match
    ) -> Iterator[Diagnostic]:
        covered: set[str] = set()
        enum_names: set[str] = set()
        for case in node.cases:
            pattern = case.pattern
            if isinstance(pattern, ast.MatchAs) and pattern.pattern is None:
                return  # wildcard `case _:` — exhaustive by construction
            if isinstance(pattern, ast.MatchValue):
                key = _enum_member_key(pattern.value)
                if key is None:
                    return  # matching something other than watched enums
                enum_names.add(key[0])
                covered.add(key[1])
            else:
                return  # structural pattern — out of scope
        if len(enum_names) != 1:
            return
        (enum_name,) = enum_names
        missing = _missing_members(enum_name, covered)
        if missing:
            yield self.diagnostic(
                module,
                node,
                f"match over {enum_name} misses {', '.join(missing)} "
                "and has no wildcard case; those members fall through "
                "silently",
                fix_it=(
                    f"add cases for {', '.join(missing)} or a "
                    "`case _:` arm that fails loudly"
                ),
            )
