"""REPRO113: re-application loops must back off in simulated time.

The growth chapter on resilient process acquisition gave investigators
:meth:`~repro.investigation.investigator.Investigator.apply_with_retry`,
which advances the simulation clock by ``RetryPolicy.delay(attempt)``
between applications — a denied application is re-reviewed by the
magistrate only after a realistic interval.  A hand-rolled loop that
re-applies *without* advancing time models an investigator hammering
the court with identical applications in the same instant, which both
distorts the simulation's timelines and hides the cost of denial.

Loops are discovered structurally: back edges of the function's CFG
(edges ``u -> v`` where ``v`` dominates ``u``) and their natural loops.
A loop whose body applies for process — directly, or through a helper
the project index resolves — must also contain backoff evidence: a
``delay``/``backoff`` computation or a clock advance.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.flow.cfg import iter_element_nodes
from repro.analysis.flow.dominance import back_edges, natural_loop
from repro.analysis.flow.legality import terminal_name
from repro.analysis.flow.project import FunctionInfo, Project
from repro.analysis.pylint_rules.base import (
    LintRule,
    ModuleUnderLint,
    register,
)

#: Calls that submit (or resubmit) a request for legal process.
_RETRY_CALLS = frozenset({"apply_for", "apply_with", "review"})

#: Call names that advance simulated time between attempts.
_BACKOFF_CALLS = frozenset(
    {"delay", "backoff", "sleep", "advance", "run_until", "wait"}
)


def _element_backs_off(element: ast.AST) -> bool:
    for node in iter_element_nodes(element):
        if isinstance(node, ast.Call):
            name = terminal_name(node.func)
            if name in _BACKOFF_CALLS or (
                name is not None and "backoff" in name
            ):
                return True
    return False


@register
class RetryBackoffRule(LintRule):
    """Process re-application loops must advance simulated time."""

    code = "REPRO113"
    name = "retry-backoff"
    description = (
        "a loop that re-applies for legal process must advance "
        "simulated time between attempts (RetryPolicy.delay or an "
        "explicit clock advance)"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        project = self.project_for(module)
        for info in project.functions():
            if info.module is not module:
                continue
            cfg = project.cfg(info)
            loops: dict[int, set[int]] = {}
            for tail, head in back_edges(cfg):
                loops.setdefault(head, set()).update(
                    natural_loop(cfg, tail, head)
                )
            reported: set[int] = set()
            for head, members in sorted(loops.items()):
                elements = [
                    element
                    for index in sorted(members)
                    for element in cfg.block(index).elements
                ]
                retries = [
                    call
                    for element in elements
                    for call in self._retry_calls(project, info, element)
                ]
                if not retries:
                    continue
                if any(_element_backs_off(e) for e in elements):
                    continue
                first = min(
                    retries,
                    key=lambda c: (c.lineno, c.col_offset),
                    default=None,
                )
                if first is None or id(first) in reported:
                    continue
                reported.add(id(first))
                yield self.diagnostic(
                    module,
                    first,
                    f"`{info.qualname}` re-applies for process inside "
                    "a loop with no backoff; every attempt lands at "
                    "the same simulated instant",
                    fix_it=(
                        "advance the clock between attempts "
                        "(`now += policy.delay(attempt)`) or use "
                        "`apply_with_retry`, which does"
                    ),
                )

    def _retry_calls(
        self,
        project: Project,
        info: FunctionInfo,
        element: ast.AST,
    ) -> list[ast.Call]:
        """Retry-family calls in one element, helpers resolved one hop."""
        found: list[ast.Call] = []
        for node in iter_element_nodes(element):
            if not isinstance(node, ast.Call):
                continue
            name = terminal_name(node.func)
            if name in _RETRY_CALLS:
                found.append(node)
                continue
            targets = project.resolve_call(info.module, node)
            if len(targets) == 1 and self._applies_inside(targets[0]):
                found.append(node)
        return found

    @staticmethod
    def _applies_inside(callee: FunctionInfo) -> bool:
        """Whether a helper's own body submits a process application."""
        for statement in callee.node.body:
            for node in iter_element_nodes(statement):
                if (
                    isinstance(node, ast.Call)
                    and terminal_name(node.func) in _RETRY_CALLS
                ):
                    return True
        return False
