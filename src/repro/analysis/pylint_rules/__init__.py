"""The AST lint-rule plugin package.

Importing this package populates the rule registry: each rule module
self-registers via :func:`~repro.analysis.pylint_rules.base.register`.
To add a rule, create a module here with a registered
:class:`~repro.analysis.pylint_rules.base.LintRule` subclass and import
it below.
"""

from repro.analysis.pylint_rules import (  # noqa: F401  (registration)
    determinism,
    empty_iterable,
    enum_dispatch,
    fault_swallow,
    float_sweep,
    gated_acquisition,
    hash_checkpoint,
    mutable_defaults,
    poisonous_flow,
    retry_backoff,
    scenario_answers,
    technique_contract,
    telemetry,
)
from repro.analysis.pylint_rules.base import (
    LintRule,
    ModuleUnderLint,
    all_rules,
    register,
)

__all__ = [
    "LintRule",
    "ModuleUnderLint",
    "all_rules",
    "register",
]
