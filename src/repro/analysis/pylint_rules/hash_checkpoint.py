"""REPRO112: an acquired image must be hash-checkpointed before use.

Chain of custody for imaged media starts at acquisition: the first
thing done with a freshly acquired image must be a digest computation
(compared against the source, or recorded), because any examination
performed *before* the checkpoint is an examination of bytes nobody can
later prove were the seized bytes.  The shipped imaging pipeline
(:func:`repro.storage.blockdev.image_device`) verifies internally, and
every shipped caller still re-checks at the call site — this rule keeps
that discipline mandatory.

The analysis is a forward may-analysis on the CFG: a name assigned from
an imaging call is *possibly unhashed* until some element computes its
digest (``image.sha256()``, or passing it to a ``hash``/``digest``/
``verify``-flavoured call); any other use — attribute access, carving,
returning it to a caller — while possibly unhashed is a finding.  Facts
join by union, so a hash checkpoint on only one branch does not clear
the other.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.flow.cfg import Cfg, iter_element_nodes
from repro.analysis.flow.dataflow import solve
from repro.analysis.flow.legality import terminal_name
from repro.analysis.pylint_rules.base import (
    LintRule,
    ModuleUnderLint,
    register,
)

#: Calls whose result is an acquired image requiring a checkpoint.
_IMAGING_CALLS = frozenset({"image_device"})

#: Call names that constitute a hash checkpoint for their operands.
_HASH_CALLS = frozenset(
    {
        "sha256",
        "sha1",
        "md5",
        "digest",
        "hexdigest",
        "checksum",
        "hash",
        "verify_hash",
        "record_hash",
        "checkpoint",
    }
)


def _imaging_assignment(element: ast.AST) -> list[str]:
    """Names bound to a fresh image by this element, if any."""
    if not isinstance(element, (ast.Assign, ast.AnnAssign)):
        return []
    value = getattr(element, "value", None)
    if not (
        isinstance(value, ast.Call)
        and terminal_name(value.func) in _IMAGING_CALLS
    ):
        return []
    targets = (
        element.targets
        if isinstance(element, ast.Assign)
        else [element.target]
    )
    return [t.id for t in targets if isinstance(t, ast.Name)]


def _assigned_names(element: ast.AST) -> set[str]:
    """Every name (re)bound by this element (kills tracking)."""
    names: set[str] = set()
    if isinstance(element, ast.Assign):
        targets = element.targets
    elif isinstance(element, (ast.AnnAssign, ast.AugAssign)):
        targets = [element.target]
    else:
        return names
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.add(node.id)
    return names


def _hash_checkpointed(element: ast.AST) -> set[str]:
    """Names whose digest this element computes."""
    hashed: set[str] = set()
    for node in iter_element_nodes(element):
        if not isinstance(node, ast.Call):
            continue
        name = terminal_name(node.func)
        if name not in _HASH_CALLS:
            continue
        # ``image.sha256()`` checkpoints the receiver; ``digest(image)``
        # checkpoints the arguments.
        if isinstance(node.func, ast.Attribute):
            for inner in ast.walk(node.func.value):
                if isinstance(inner, ast.Name):
                    hashed.add(inner.id)
        for argument in node.args:
            for inner in ast.walk(argument):
                if isinstance(inner, ast.Name):
                    hashed.add(inner.id)
    return hashed


def _used_names(element: ast.AST) -> set[str]:
    """Names read by this element (assignment targets excluded)."""
    targets = {id(n) for t in _targets_of(element) for n in ast.walk(t)}
    used: set[str] = set()
    for node in iter_element_nodes(element):
        if isinstance(node, ast.Name) and id(node) not in targets:
            used.add(node.id)
    return used


def _targets_of(element: ast.AST) -> list[ast.expr]:
    if isinstance(element, ast.Assign):
        return list(element.targets)
    if isinstance(element, (ast.AnnAssign, ast.AugAssign)):
        return [element.target]
    return []


def _apply_element(
    element: ast.AST,
    fact: frozenset[str],
    report: list[tuple[ast.AST, str]] | None,
) -> frozenset[str]:
    """Transfer one element; optionally record use-before-hash sites."""
    hashed = _hash_checkpointed(element)
    if report is not None:
        for name in sorted(_used_names(element) & fact):
            # A digest computed in the same element sanctions that
            # element's other reads (`assert img.sha256() == src.sha256()`).
            if name in hashed:
                continue
            report.append((element, name))
    fact -= hashed
    fact -= _assigned_names(element)
    fact |= frozenset(_imaging_assignment(element))
    return fact


@register
class HashCheckpointRule(LintRule):
    """Freshly imaged media must be digested before any other use."""

    code = "REPRO112"
    name = "hash-checkpoint"
    description = (
        "a value acquired via image_device() must have its digest "
        "computed (and compared or recorded) before any other use"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        project = self.project_for(module)
        for info in project.functions():
            if info.module is not module:
                continue
            cfg = project.cfg(info)
            if not self._has_imaging(cfg):
                continue
            solution = solve(
                cfg,
                boundary=frozenset(),
                top=frozenset(),
                transfer=lambda block, fact, cfg=cfg: self._transfer(
                    cfg, block, fact
                ),
                join=lambda a, b: a | b,
            )
            reported: set[str] = set()
            for block in cfg.reachable_blocks():
                fact = solution[block.index][0]
                findings: list[tuple[ast.AST, str]] = []
                for element in block.elements:
                    fact = _apply_element(element, fact, findings)
                for element, name in findings:
                    if name in reported:
                        continue
                    reported.add(name)
                    yield self.diagnostic(
                        module,
                        element,
                        f"acquired image `{name}` is used before a "
                        "hash checkpoint on at least one path; an "
                        "examination of unverified bytes cannot be "
                        "tied to the seized media",
                        fix_it=(
                            f"compute `{name}.sha256()` (and compare "
                            "it against the source or record it) "
                            "immediately after acquisition, on every "
                            "path"
                        ),
                    )

    @staticmethod
    def _has_imaging(cfg: Cfg) -> bool:
        return any(
            _imaging_assignment(element)
            for block in cfg.reachable_blocks()
            for element in block.elements
        )

    @staticmethod
    def _transfer(
        cfg: Cfg, block: int, fact: frozenset[str]
    ) -> frozenset[str]:
        for element in cfg.block(block).elements:
            fact = _apply_element(element, fact, None)
        return fact
