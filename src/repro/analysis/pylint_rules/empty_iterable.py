"""REPRO104: ``max()``/``min()`` over a possibly-empty iterable.

``max(iterable)`` raises ``ValueError`` on an empty iterable; with no
``default=`` the call is a latent crash on every degenerate input (a
technique with zero declared actions took down ``required_process``
this way).  The rule flags single-argument ``max``/``min`` calls with
no ``default=``, unless the enclosing function already established an
emptiness guard — an earlier ``if not x: return``/``raise`` — before
the call.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.pylint_rules.base import (
    LintRule,
    ModuleUnderLint,
    register,
)


def _is_emptiness_guard(statement: ast.stmt) -> bool:
    """Whether a statement is ``if <emptiness-test>: return/raise``."""
    if not isinstance(statement, ast.If):
        return False
    if not statement.body:
        return False
    if not isinstance(statement.body[-1], (ast.Return, ast.Raise)):
        return False
    test = statement.test
    # `if not x`, `if not x.y`, `if not len(x)`
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return True
    # `if len(x) == 0`
    if (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Call)
        and isinstance(test.left.func, ast.Name)
        and test.left.func.id == "len"
    ):
        return True
    return False


def _walk_same_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk an AST without descending into nested function/class scopes."""
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield child
        yield from _walk_same_scope(child)


def _bare_extremum_calls(statement: ast.stmt) -> Iterator[ast.Call]:
    """``max``/``min`` calls in a statement that lack a safe shape.

    Safe shapes: two or more positional arguments (``max(a, b)``), a
    ``default=`` keyword, or starred arguments (which we cannot reason
    about statically).
    """
    candidates = [statement]
    candidates.extend(_walk_same_scope(statement))
    for node in candidates:
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Name):
            continue
        if node.func.id not in {"max", "min"}:
            continue
        if len(node.args) != 1:
            continue
        if any(isinstance(arg, ast.Starred) for arg in node.args):
            continue
        if any(keyword.arg == "default" for keyword in node.keywords):
            continue
        yield node


@register
class EmptyIterableExtremumRule(LintRule):
    """Single-argument ``max``/``min`` needs ``default=`` or a guard."""

    code = "REPRO104"
    name = "empty-iterable-extremum"
    description = (
        "max()/min() over a possibly-empty iterable must pass "
        "default= (or follow an emptiness guard)"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_body(module, node.body)

    def _check_body(
        self, module: ModuleUnderLint, body: list[ast.stmt]
    ) -> Iterator[Diagnostic]:
        guarded = False
        for statement in body:
            if guarded:
                break
            for call in _bare_extremum_calls(statement):
                function = call.func.id  # type: ignore[union-attr]
                yield self.diagnostic(
                    module,
                    call,
                    f"`{function}()` over a single iterable with no "
                    "`default=`; raises ValueError when the iterable "
                    "is empty",
                    fix_it=(
                        f"pass `default=...` to `{function}()`, or "
                        "guard the call with an explicit emptiness "
                        "check that returns early"
                    ),
                )
            if _is_emptiness_guard(statement):
                guarded = True
