"""REPRO103: deterministic subsystems must not read ambient entropy.

The Table 1 benchmark and the suppression split are exact claims; a
``time.time()`` or unseeded ``random.random()`` anywhere in the
simulation or legal core turns them flaky.  The sanctioned patterns are
seeded instances — ``random.Random(seed)``, ``numpy.random
.default_rng(seed)`` — and simulation-clock time.  The rule runs only
on the deterministic subsystems: ``netsim/``, ``techniques/``, and
``core/``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.pylint_rules.base import (
    LintRule,
    ModuleUnderLint,
    register,
)

_GUARDED_DIRECTORIES = {"netsim", "techniques", "core"}

#: Wall-clock reads, as (module, attribute) chains.
_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: ``random.<attr>`` calls that are fine: seeded-generator constructors.
_ALLOWED_RANDOM_ATTRS = {"Random", "SystemRandom", "default_rng", "Generator"}


def _attribute_chain(node: ast.expr) -> tuple[str, ...]:
    """``a.b.c`` -> ("a", "b", "c"); empty when not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


@register
class DeterminismRule(LintRule):
    """No wall-clock or unseeded randomness in deterministic subsystems."""

    code = "REPRO103"
    name = "determinism-guard"
    description = (
        "no datetime.now/time.time/bare random.* in netsim/, "
        "techniques/, or core/"
    )

    def applies_to(self, module: ModuleUnderLint) -> bool:
        return bool(_GUARDED_DIRECTORIES.intersection(module.parts()))

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attribute_chain(node.func)
            if len(chain) < 2:
                continue
            dotted = ".".join(chain)
            if chain[-2:] in _CLOCK_CALLS:
                yield self.diagnostic(
                    module,
                    node,
                    f"wall-clock read `{dotted}()` in a deterministic "
                    "subsystem; benchmark results become "
                    "irreproducible",
                    fix_it=(
                        "thread the simulation clock (or an explicit "
                        "timestamp parameter) through instead"
                    ),
                )
            elif (
                chain[0] == "random"
                and len(chain) == 2
                and chain[1] not in _ALLOWED_RANDOM_ATTRS
            ):
                yield self.diagnostic(
                    module,
                    node,
                    f"unseeded module-level `{dotted}()` in a "
                    "deterministic subsystem",
                    fix_it=(
                        "construct `random.Random(seed)` and call the "
                        "method on that instance"
                    ),
                )
            elif (
                len(chain) == 3
                and chain[1] == "random"
                and chain[0] in {"np", "numpy"}
                and chain[2] not in _ALLOWED_RANDOM_ATTRS
            ):
                yield self.diagnostic(
                    module,
                    node,
                    f"global numpy RNG call `{dotted}()` in a "
                    "deterministic subsystem",
                    fix_it=(
                        "construct a generator with "
                        "`numpy.random.default_rng(seed)` and use it"
                    ),
                )
