"""REPRO109: telemetry must route through ``repro.obs``, not stdout.

A library module that ``print()``\\ s cannot be consumed as a library,
and a module timing itself with ``time.time()`` produces numbers nobody
can collect, aggregate, or gate.  Now that :mod:`repro.obs` exists,
spans and metrics are the sanctioned channel: a bare ``print(`` or an
ad-hoc wall-clock timing read inside ``src/repro/`` is a diagnostic.

Detection is symbol-table backed rather than textual: ``clock.time()``
is flagged when ``clock`` is bound by ``import time as clock``, a bare
``perf_counter()`` is flagged when bound by ``from time import
perf_counter``, and a local ``print`` binding shadowing the builtin is
*not* flagged — the rule resolves what the name at the call site
actually refers to.

User-facing CLI modules are allowlisted (printing *is* their job), and
so are the benchmark drivers (timing *is* their job) and the telemetry
package itself (it owns the clock).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.flow.symbols import Binding, BindingKind
from repro.analysis.pylint_rules.base import (
    LintRule,
    ModuleUnderLint,
    register,
)

#: Modules whose *purpose* is terminal output or timing measurement.
_ALLOWLISTED_FILES = {
    "cli.py",
    "__main__.py",
    "bench.py",
    "bench_techniques.py",
}

#: Directories whose modules own the clock or the terminal.
_ALLOWLISTED_DIRECTORIES = {"obs"}

#: ``time.<attr>`` reads that are ad-hoc timing when used for telemetry.
_TIMING_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
}


def _attribute_chain(node: ast.expr) -> tuple[str, ...]:
    """``a.b.c`` -> ("a", "b", "c"); empty when not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _is_time_module(binding: Binding | None, bare_name: str) -> bool:
    """Whether a base name refers to the stdlib ``time`` module.

    An explicit ``import time [as alias]`` binding settles it; an
    unresolved bare ``time`` is assumed to be the module (the
    conventional name), while any other binding — a parameter, an
    assignment, an import of a different module — is not timing.
    """
    if binding is None:
        return bare_name == "time"
    return binding.kind is BindingKind.IMPORT and binding.module == "time"


@register
class TelemetryChannelRule(LintRule):
    """No bare print() or ad-hoc time.time() timing outside the CLI."""

    code = "REPRO109"
    name = "telemetry-channel"
    description = (
        "no bare print() or ad-hoc time.time() timing in library "
        "modules; route telemetry through repro.obs (CLI and bench "
        "modules allowlisted)"
    )

    def applies_to(self, module: ModuleUnderLint) -> bool:
        parts = module.parts()
        if "repro" not in parts:
            return False
        if _ALLOWLISTED_DIRECTORIES.intersection(parts):
            return False
        return parts[-1] not in _ALLOWLISTED_FILES

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        table = self.project_for(module).symbols(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                binding = table.resolve(func.id, within=func)
                if func.id == "print" and binding is None:
                    yield self.diagnostic(
                        module,
                        node,
                        "bare `print()` in a library module; nothing "
                        "can collect or silence it",
                        fix_it=(
                            "return the text (let the CLI print it) or "
                            "emit a repro.obs span/metric"
                        ),
                    )
                elif (
                    binding is not None
                    and binding.kind is BindingKind.FROM_IMPORT
                    and binding.module == "time"
                    and binding.origin in _TIMING_ATTRS
                ):
                    yield self._timing_diagnostic(
                        module, node, binding.origin
                    )
                continue
            chain = _attribute_chain(func)
            if len(chain) == 2 and chain[1] in _TIMING_ATTRS:
                binding = table.resolve(chain[0], within=func)
                if _is_time_module(binding, chain[0]):
                    yield self._timing_diagnostic(module, node, chain[1])

    def _timing_diagnostic(
        self, module: ModuleUnderLint, node: ast.Call, attr: str
    ) -> Diagnostic:
        return self.diagnostic(
            module,
            node,
            f"ad-hoc `time.{attr}()` timing in a library "
            "module; the measurement is invisible to telemetry",
            fix_it=(
                "wrap the region in `repro.obs.span(...)` (or "
                "observe into a registry histogram) instead"
            ),
        )
