"""REPRO109: telemetry must route through ``repro.obs``, not stdout.

A library module that ``print()``\\ s cannot be consumed as a library,
and a module timing itself with ``time.time()`` produces numbers nobody
can collect, aggregate, or gate.  Now that :mod:`repro.obs` exists,
spans and metrics are the sanctioned channel: a bare ``print(`` or an
ad-hoc wall-clock timing read inside ``src/repro/`` is a diagnostic.

User-facing CLI modules are allowlisted (printing *is* their job), and
so are the benchmark drivers (timing *is* their job) and the telemetry
package itself (it owns the clock).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.pylint_rules.base import (
    LintRule,
    ModuleUnderLint,
    register,
)

#: Modules whose *purpose* is terminal output or timing measurement.
_ALLOWLISTED_FILES = {
    "cli.py",
    "__main__.py",
    "bench.py",
    "bench_techniques.py",
}

#: Directories whose modules own the clock or the terminal.
_ALLOWLISTED_DIRECTORIES = {"obs"}

#: ``time.<attr>`` reads that are ad-hoc timing when used for telemetry.
_TIMING_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
}


def _attribute_chain(node: ast.expr) -> tuple[str, ...]:
    """``a.b.c`` -> ("a", "b", "c"); empty when not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


@register
class TelemetryChannelRule(LintRule):
    """No bare print() or ad-hoc time.time() timing outside the CLI."""

    code = "REPRO109"
    name = "telemetry-channel"
    description = (
        "no bare print() or ad-hoc time.time() timing in library "
        "modules; route telemetry through repro.obs (CLI and bench "
        "modules allowlisted)"
    )

    def applies_to(self, module: ModuleUnderLint) -> bool:
        parts = module.parts()
        if "repro" not in parts:
            return False
        if _ALLOWLISTED_DIRECTORIES.intersection(parts):
            return False
        return parts[-1] not in _ALLOWLISTED_FILES

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                yield self.diagnostic(
                    module,
                    node,
                    "bare `print()` in a library module; nothing can "
                    "collect or silence it",
                    fix_it=(
                        "return the text (let the CLI print it) or emit "
                        "a repro.obs span/metric"
                    ),
                )
                continue
            chain = _attribute_chain(node.func)
            if (
                len(chain) == 2
                and chain[0] == "time"
                and chain[1] in _TIMING_ATTRS
            ):
                yield self.diagnostic(
                    module,
                    node,
                    f"ad-hoc `time.{chain[1]}()` timing in a library "
                    "module; the measurement is invisible to telemetry",
                    fix_it=(
                        "wrap the region in `repro.obs.span(...)` (or "
                        "observe into a registry histogram) instead"
                    ),
                )
