"""The lint-rule plugin contract and registry.

A rule is a class with a stable ``code``, a short ``name``, and a
``check`` method that walks one parsed module and yields
:class:`~repro.analysis.diagnostics.Diagnostic`s.  Rules self-register
via the :func:`register` decorator; the runner instantiates whatever the
registry holds, so adding a rule is: write the class, decorate it,
import its module from :mod:`repro.analysis.pylint_rules`.
"""

from __future__ import annotations

import abc
import ast
import dataclasses
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.flow.project import Project


@dataclasses.dataclass(frozen=True)
class ModuleUnderLint:
    """One parsed module handed to every applicable rule.

    Attributes:
        path: The file's path as given to the runner (used in
            diagnostics and in per-rule applicability tests).
        tree: The parsed AST.
        source: The raw source text.
    """

    path: str
    tree: ast.Module
    source: str

    def parts(self) -> tuple[str, ...]:
        """Path components, for directory-scoped applicability tests."""
        return tuple(self.path.replace("\\", "/").split("/"))


class LintRule(abc.ABC):
    """Base class every lint rule extends."""

    #: Stable machine-readable code (``REPRO1xx``).
    code: str = "REPRO100"
    #: Short kebab-case rule name.
    name: str = "unnamed-rule"
    #: One-line description shown by ``repro lint --rules``.
    description: str = ""

    def bind(self, project: "Project") -> None:
        """Give the rule the whole-file-set view before any check.

        The runner calls this once per run with a
        :class:`~repro.analysis.flow.project.Project` holding every
        module being linted, so interprocedural rules can resolve calls
        across files.  Rules run standalone (unit tests) never get
        bound; :meth:`project_for` falls back to a one-module project.
        """
        self._project: Project | None = project

    def project_for(self, module: ModuleUnderLint) -> "Project":
        """The bound project, or a single-module project as fallback."""
        project: Project | None = getattr(self, "_project", None)
        if project is not None and project.module_for(module.path) is module:
            return project
        from repro.analysis.flow.project import Project

        return Project.single(module)

    def applies_to(self, module: ModuleUnderLint) -> bool:
        """Whether this rule should run on the module (default: yes)."""
        return True

    @abc.abstractmethod
    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        """Yield one diagnostic per violation found in the module."""

    def diagnostic(
        self,
        module: ModuleUnderLint,
        node: ast.AST,
        message: str,
        fix_it: str | None = None,
        severity: Severity = Severity.ERROR,
    ) -> Diagnostic:
        """Build a diagnostic anchored to an AST node of this module."""
        col_offset = getattr(node, "col_offset", None)
        return Diagnostic(
            severity=severity,
            code=self.code,
            message=message,
            path=module.path,
            line=getattr(node, "lineno", None),
            col=None if col_offset is None else col_offset + 1,
            fix_it=fix_it,
        )


_REGISTRY: dict[str, type[LintRule]] = {}


def register(rule_class: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    if rule_class.code in _REGISTRY:
        raise ValueError(
            f"duplicate lint rule code {rule_class.code!r}: "
            f"{_REGISTRY[rule_class.code].__name__} vs "
            f"{rule_class.__name__}"
        )
    _REGISTRY[rule_class.code] = rule_class
    return rule_class


def all_rules() -> tuple[LintRule, ...]:
    """Fresh instances of every registered rule, in code order."""
    return tuple(
        _REGISTRY[code]() for code in sorted(_REGISTRY)
    )
