"""The investigation-plan IR the static checker walks.

A :class:`Plan` is an ordered sequence of :class:`PlanStep`s — each one
:class:`~repro.core.action.InvestigativeAction` plus the evidence edges
to earlier steps — together with the legal-process instruments the
investigator declares they will hold.  Plans are pure data: building one
never touches the netsim, so a plan can be analyzed (and rejected)
before anything runs.

Plans come from three places:

* :func:`plan_from_technique` — the acquisitions a
  :class:`~repro.techniques.base.Technique` declares, in order;
* :func:`plan_from_scenario` — a single Table 1 scene as a one-step plan;
* hand-written :class:`Plan` literals, for multi-step investigations
  with cross-step structure the per-action engine cannot see.
"""

from __future__ import annotations

import dataclasses

from repro.core.action import ConsentFacts, InvestigativeAction
from repro.core.context import EnvironmentContext
from repro.core.enums import (
    Actor,
    ConsentScope,
    DataKind,
    Place,
    ProcessKind,
    Timing,
)
from repro.core.scenarios import Scenario, build_table1
from repro.techniques.base import Technique


@dataclasses.dataclass(frozen=True)
class PlanStep:
    """One step of an investigation plan.

    Attributes:
        action: The acquisition this step performs.
        uses: 1-based numbers of earlier steps whose *evidence* this step
            consumes (e.g. a subpoena naming an IP address learned in
            step 1).  These edges drive fruit-of-the-poisonous-tree
            propagation.
        note: Optional free-text annotation shown in reports.
    """

    action: InvestigativeAction
    uses: tuple[int, ...] = ()
    note: str = ""


@dataclasses.dataclass(frozen=True)
class Plan:
    """An ordered investigation plan plus declared instruments.

    Attributes:
        name: Human-readable plan name.
        steps: The ordered acquisitions.
        instruments: The legal-process instruments the investigator
            declares they will hold while executing the plan.  An empty
            tuple means the plan claims to need no process at all.
    """

    name: str
    steps: tuple[PlanStep, ...]
    instruments: tuple[ProcessKind, ...] = ()

    def __post_init__(self) -> None:
        for number, step in enumerate(self.steps, 1):
            for used in step.uses:
                if not 1 <= used < number:
                    raise ValueError(
                        f"step {number} of plan {self.name!r} uses "
                        f"step {used}, which is not an earlier step"
                    )

    @property
    def held_process(self) -> ProcessKind:
        """The strongest instrument the plan declares."""
        return max(self.instruments, default=ProcessKind.NONE)

    def step_number(self, step: PlanStep) -> int:
        """The 1-based number of a step within this plan."""
        return self.steps.index(step) + 1


def plan_from_technique(
    technique: Technique,
    instruments: tuple[ProcessKind, ...] = (),
) -> Plan:
    """Lift a technique's declared acquisitions into a linear plan.

    Later acquisitions are assumed to build on earlier ones — a
    technique is one coherent procedure, so each step records an
    evidence edge to its predecessor.
    """
    actions = technique.required_actions()
    steps = tuple(
        PlanStep(action=action, uses=(index,) if index else ())
        for index, action in enumerate(actions)
    )
    return Plan(
        name=technique.name, steps=steps, instruments=instruments
    )


def plan_from_scenario(
    scenario: Scenario,
    instruments: tuple[ProcessKind, ...] = (),
) -> Plan:
    """A Table 1 scene as a one-step plan."""
    return Plan(
        name=f"Table 1 scene {scenario.number}",
        steps=(PlanStep(action=scenario.action),),
        instruments=instruments,
    )


def plan_from_scene_number(
    number: int, instruments: tuple[ProcessKind, ...] = ()
) -> Plan:
    """A Table 1 scene, by row number, as a one-step plan."""
    for scenario in build_table1():
        if scenario.number == number:
            return plan_from_scenario(scenario, instruments)
    raise KeyError(f"no Table 1 scene {number}; scenes are 1-20")


def tainted_downstream_plan() -> Plan:
    """The demo plan only cross-step analysis can reject.

    Step 1 intercepts content in real time with no process — plainly
    unlawful.  Step 2 subpoenas subscriber records for the IP address
    *learned in step 1*; judged alone, a subpoena is exactly what the
    SCA requires for subscriber information, so the per-action engine
    passes it.  The plan checker sees the evidence edge: step 2 is fruit
    of step 1's poisonous tree (Wong Sun) and would be suppressed as
    derivative evidence.
    """
    interception = InvestigativeAction(
        description=(
            "intercept the suspect's traffic content in transit, "
            "without any process, to learn the originating IP"
        ),
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.REAL_TIME,
        context=EnvironmentContext(place=Place.TRANSMISSION_PATH),
    )
    subpoena_records = InvestigativeAction(
        description=(
            "subpoena the ISP for subscriber information matching the "
            "IP address learned from the interception"
        ),
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.SUBSCRIBER_INFO,
        timing=Timing.STORED,
        context=EnvironmentContext(place=Place.THIRD_PARTY_PROVIDER),
    )
    return Plan(
        name="warrantless interception feeding a subpoena",
        steps=(
            PlanStep(action=interception, note="no process obtained"),
            PlanStep(
                action=subpoena_records,
                uses=(1,),
                note="names the IP from step 1",
            ),
        ),
        instruments=(ProcessKind.SUBPOENA,),
    )


def forfeited_consent_plan() -> Plan:
    """A plan claiming a consent an earlier step already extinguished.

    Step 1's facts record that the target revoked consent; step 2
    nevertheless claims the same consent for a further search.  Each
    action judged alone is internally consistent, but across the plan
    the claim in step 2 was forfeited at step 1 (Megahed: revocation
    stops future searching).
    """
    first_search = InvestigativeAction(
        description=(
            "search the target's laptop under consent, which the "
            "target revokes mid-search"
        ),
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.STORED,
        context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
        consent=ConsentFacts(scope=ConsentScope.TARGET, revoked=True),
    )
    second_search = InvestigativeAction(
        description=(
            "return the next day and search the same laptop again, "
            "still relying on the original consent"
        ),
        actor=Actor.GOVERNMENT,
        data_kind=DataKind.CONTENT,
        timing=Timing.STORED,
        context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
        consent=ConsentFacts(scope=ConsentScope.TARGET),
    )
    return Plan(
        name="search on a consent revoked one step earlier",
        steps=(
            PlanStep(action=first_search, note="consent revoked here"),
            PlanStep(
                action=second_search,
                uses=(1,),
                note="claims the revoked consent",
            ),
        ),
    )


#: Named demo plans exercised by the CLI and the test suite.
DEMO_PLANS = {
    "tainted-downstream": tainted_downstream_plan,
    "forfeited-consent": forfeited_consent_plan,
}
