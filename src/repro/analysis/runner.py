"""The lint runner: parse files, apply every registered rule.

The runner is filesystem-aware so the rules never have to be: it finds
Python files, parses them once, asks each registered rule whether it
applies, and collects diagnostics in a stable (path, line, code) order.
A file that fails to parse yields a single ``REPRO100`` diagnostic
rather than crashing the run.
"""

from __future__ import annotations

import ast
from pathlib import Path

import repro
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.pylint_rules import ModuleUnderLint, all_rules
from repro.analysis.pylint_rules.base import LintRule


def default_lint_root() -> Path:
    """The installed ``repro`` package — what ``repro lint`` checks."""
    return Path(repro.__file__).resolve().parent


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def lint_file(
    path: Path, rules: tuple[LintRule, ...] | None = None
) -> list[Diagnostic]:
    """Run every applicable rule over one file."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as error:
        return [
            Diagnostic(
                severity=Severity.ERROR,
                code="REPRO100",
                message=f"cannot read file: {error.strerror or error}",
                path=str(path),
            )
        ]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [
            Diagnostic(
                severity=Severity.ERROR,
                code="REPRO100",
                message=f"syntax error: {error.msg}",
                path=str(path),
                line=error.lineno,
            )
        ]
    module = ModuleUnderLint(
        path=str(path), tree=tree, source=source
    )
    diagnostics: list[Diagnostic] = []
    for rule in rules if rules is not None else all_rules():
        if rule.applies_to(module):
            diagnostics.extend(rule.check(module))
    return diagnostics


def lint_paths(
    paths: list[Path] | None = None,
    rules: tuple[LintRule, ...] | None = None,
) -> list[Diagnostic]:
    """Lint files/directories; defaults to the whole ``repro`` package."""
    targets = paths if paths else [default_lint_root()]
    diagnostics: list[Diagnostic] = []
    for path in iter_python_files(targets):
        diagnostics.extend(lint_file(path, rules))
    diagnostics.sort(
        key=lambda d: (d.path or "", d.line or 0, d.code)
    )
    return diagnostics
