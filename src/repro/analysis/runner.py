"""The lint runner: parse files once, run every rule project-wide.

The runner is filesystem-aware so the rules never have to be: it finds
Python files, parses each exactly once, builds one
:class:`~repro.analysis.flow.project.Project` over the whole file set
(so interprocedural rules can resolve calls across modules), binds every
registered rule to it, and collects diagnostics.  A file that fails to
parse yields a single ``REPRO100`` diagnostic rather than crashing the
run.

Output is deterministic: diagnostics are deduplicated and sorted by
``(path, line, col, code, message)``, so two runs over the same tree
are byte-identical.  Findings matching an inline suppression comment
(``# repro-lint: disable=CODE -- justification``, see
:mod:`repro.analysis.suppress`) are dropped and counted.  Per-rule
wall-clock timings are collected through the :mod:`repro.obs` clock and
surfaced on the :class:`LintRun` result for ``repro lint --timings``.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path

import repro
from repro import obs
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.project import Project
from repro.analysis.pylint_rules import ModuleUnderLint, all_rules
from repro.analysis.pylint_rules.base import LintRule
from repro.analysis.suppress import is_suppressed, parse_suppressions


def default_lint_root() -> Path:
    """The installed ``repro`` package — what ``repro lint`` checks."""
    return Path(repro.__file__).resolve().parent


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


@dataclasses.dataclass
class LintRun:
    """Everything one lint run produced.

    Attributes:
        diagnostics: Surviving findings, deduplicated and sorted by
            ``(path, line, col, code, message)``.
        timings: Per-rule wall-clock seconds, keyed by rule code
            (``"<parse>"`` covers reading and parsing the file set).
        files: Number of Python files linted.
        suppressed: Findings dropped by inline suppression comments.
    """

    diagnostics: list[Diagnostic]
    timings: dict[str, float]
    files: int
    suppressed: int


def _sort_key(
    diagnostic: Diagnostic,
) -> tuple[str, int, int, str, str]:
    return (
        diagnostic.path or "",
        diagnostic.line or 0,
        diagnostic.col or 0,
        diagnostic.code,
        diagnostic.message,
    )


def _parse_file(
    path: Path,
) -> ModuleUnderLint | Diagnostic:
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as error:
        return Diagnostic(
            severity=Severity.ERROR,
            code="REPRO100",
            message=f"cannot read file: {error.strerror or error}",
            path=str(path),
        )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return Diagnostic(
            severity=Severity.ERROR,
            code="REPRO100",
            message=f"syntax error: {error.msg}",
            path=str(path),
            line=error.lineno,
        )
    return ModuleUnderLint(path=str(path), tree=tree, source=source)


def run_lint(
    paths: list[Path] | None = None,
    rules: tuple[LintRule, ...] | None = None,
) -> LintRun:
    """Lint files/directories; defaults to the whole ``repro`` package."""
    targets = paths if paths else [default_lint_root()]
    files = iter_python_files(targets)

    timings: dict[str, float] = {}
    started = obs.clock()
    modules: list[ModuleUnderLint] = []
    diagnostics: list[Diagnostic] = []
    for path in files:
        parsed = _parse_file(path)
        if isinstance(parsed, Diagnostic):
            diagnostics.append(parsed)
        else:
            modules.append(parsed)
    timings["<parse>"] = obs.clock() - started

    project = Project(modules)
    active = tuple(rules) if rules is not None else all_rules()
    for rule in active:
        rule.bind(project)
        started = obs.clock()
        for module in modules:
            if rule.applies_to(module):
                diagnostics.extend(rule.check(module))
        timings[rule.code] = (
            timings.get(rule.code, 0.0) + obs.clock() - started
        )

    suppressions = {
        module.path: parse_suppressions(module.source)
        for module in modules
    }
    kept: list[Diagnostic] = []
    suppressed = 0
    for diagnostic in diagnostics:
        per_file = suppressions.get(diagnostic.path or "", {})
        if is_suppressed(per_file, diagnostic.code, diagnostic.line):
            suppressed += 1
        else:
            kept.append(diagnostic)

    unique = sorted(set(kept), key=_sort_key)
    return LintRun(
        diagnostics=unique,
        timings=timings,
        files=len(files),
        suppressed=suppressed,
    )


def lint_file(
    path: Path, rules: tuple[LintRule, ...] | None = None
) -> list[Diagnostic]:
    """Run every applicable rule over one file."""
    return run_lint([path], rules).diagnostics


def lint_paths(
    paths: list[Path] | None = None,
    rules: tuple[LintRule, ...] | None = None,
) -> list[Diagnostic]:
    """Lint files/directories; defaults to the whole ``repro`` package."""
    return run_lint(paths, rules).diagnostics
