"""Control-flow graphs over Python function bodies.

A :class:`Cfg` is a list of basic blocks.  Each block holds *elements* —
the AST nodes evaluated in that block, in evaluation order: plain
statements appear as themselves, and a compound statement contributes
the expression actually evaluated at the branch point (an ``if``'s or
``while``'s test, a ``for``'s iterable and target, a ``with``'s context
expressions) to the block that ends with the branch.

The builder models:

* ``if``/``elif``/``else`` — branch and join;
* ``while``/``for`` with ``else`` — the else clause runs only on normal
  loop exit, ``break`` skips it (real Python semantics);
* ``break``/``continue``/``return``/``raise`` — abrupt edges;
* ``try``/``except``/``else``/``finally`` — every block built inside the
  ``try`` body gets an exceptional edge to each handler; ``return`` and
  ``raise`` crossing a ``finally`` are routed through it;
* ``with`` (and ``async with``) — context expressions evaluate in line;
* ``match`` — one branch per case, with a fall-through edge unless a
  wildcard case exists.

Deliberate approximations, all conservative for the must-pass analyses
built on top (they can only *add* paths, never hide one): exceptions may
enter a handler from any block of the ``try`` body regardless of
position within the block; abrupt exits route through the nearest
enclosing ``finally`` only; ``break``/``continue`` do not detour through
``finally`` bodies.
"""

from __future__ import annotations

import ast
import dataclasses
from collections.abc import Iterator

#: Statements that open a new code object; element walks stop at them.
_NEW_SCOPE_NODES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.Lambda,
)


def iter_element_nodes(element: ast.AST) -> Iterator[ast.AST]:
    """Walk one block element without descending into nested scopes.

    Yields the element itself and its descendants, but a nested function,
    class, or lambda is yielded as a single node — its body belongs to a
    different CFG.
    """
    stack: list[ast.AST] = [element]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _NEW_SCOPE_NODES):
            # The body belongs to another scope, but decorators and
            # parameter defaults evaluate here.
            for decorator in getattr(node, "decorator_list", []):
                stack.append(decorator)
            arguments = getattr(node, "args", None)
            if isinstance(arguments, ast.arguments):
                stack.extend(
                    d for d in arguments.defaults if d is not None
                )
                stack.extend(
                    d for d in arguments.kw_defaults if d is not None
                )
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


@dataclasses.dataclass
class CfgBlock:
    """One basic block.

    Attributes:
        index: Position in :attr:`Cfg.blocks` (block ids are indexes).
        label: Structural role, for rendering and debugging.
        elements: AST nodes evaluated in this block, in order.
        successors: Indexes of successor blocks (no duplicates).
        predecessors: Indexes of predecessor blocks (filled at seal).
    """

    index: int
    label: str
    elements: list[ast.AST] = dataclasses.field(default_factory=list)
    successors: list[int] = dataclasses.field(default_factory=list)
    predecessors: list[int] = dataclasses.field(default_factory=list)

    def first_line(self) -> int | None:
        """Line of the first element carrying a location, if any."""
        for element in self.elements:
            line = getattr(element, "lineno", None)
            if line is not None:
                return int(line)
        return None


@dataclasses.dataclass
class Cfg:
    """A control-flow graph for one function (or module) body."""

    blocks: list[CfgBlock]
    entry: int
    exit: int
    reachable: frozenset[int]

    def block(self, index: int) -> CfgBlock:
        """The block with the given index."""
        return self.blocks[index]

    def reachable_blocks(self) -> list[CfgBlock]:
        """Reachable blocks, in index order."""
        return [b for b in self.blocks if b.index in self.reachable]


@dataclasses.dataclass
class _Frame:
    """One entry of the builder's nesting stack (a loop or a try)."""

    kind: str  # "loop" | "try"
    # Loop frames:
    continue_target: int = -1
    break_sources: list[int] = dataclasses.field(default_factory=list)
    # Try frames:
    handler_entries: list[int] = dataclasses.field(default_factory=list)
    finally_entry: int = -1
    finally_out: list[int] = dataclasses.field(default_factory=list)
    body_blocks: list[int] = dataclasses.field(default_factory=list)


class _Builder:
    """Single-use CFG builder for one statement list."""

    def __init__(self) -> None:
        self.blocks: list[CfgBlock] = []
        self.exit_sources: list[int] = []
        self.frames: list[_Frame] = []
        self.current = self.new_block("entry")

    # -- plumbing ---------------------------------------------------------------

    def new_block(self, label: str) -> int:
        block = CfgBlock(index=len(self.blocks), label=label)
        self.blocks.append(block)
        self._record_try_block(block.index)
        return block.index

    def _record_try_block(self, index: int) -> None:
        for frame in reversed(self.frames):
            if frame.kind == "try" and frame.handler_entries:
                frame.body_blocks.append(index)
                # Only the innermost handler-bearing try catches first.
                return

    def edge(self, a: int, b: int) -> None:
        if b not in self.blocks[a].successors:
            self.blocks[a].successors.append(b)

    def add(self, element: ast.AST) -> None:
        self.blocks[self.current].elements.append(element)

    def to_exit(self, source: int) -> None:
        if source not in self.exit_sources:
            self.exit_sources.append(source)

    def start_block(self, label: str, *preds: int) -> int:
        index = self.new_block(label)
        for pred in preds:
            self.edge(pred, index)
        self.current = index
        return index

    # -- abrupt-exit routing ----------------------------------------------------

    def _route_through_finally(self, real_target: str | int) -> bool:
        """Route an abrupt exit via the nearest ``finally``, if any.

        ``real_target`` is either a block index or the string ``"exit"``;
        it is registered as an out-edge of that finally region.  Returns
        whether a finally intercepted the exit.
        """
        for frame in reversed(self.frames):
            if frame.kind == "try" and frame.finally_entry >= 0:
                self.edge(self.current, frame.finally_entry)
                if real_target not in frame.finally_out:
                    frame.finally_out.append(real_target)  # type: ignore[arg-type]
                return True
        return False

    def do_return(self, node: ast.stmt) -> None:
        self.add(node)
        if not self._route_through_finally("exit"):
            self.to_exit(self.current)
        self.start_block("unreachable")

    def do_raise(self, node: ast.stmt) -> None:
        self.add(node)
        routed = False
        for frame in reversed(self.frames):
            if frame.kind != "try":
                continue
            if frame.handler_entries:
                for handler in frame.handler_entries:
                    self.edge(self.current, handler)
                routed = True
                break
            if frame.finally_entry >= 0:
                self.edge(self.current, frame.finally_entry)
                if "exit" not in frame.finally_out:
                    frame.finally_out.append("exit")  # type: ignore[arg-type]
                routed = True
                break
        if not routed:
            self.to_exit(self.current)
        self.start_block("unreachable")

    def nearest_loop(self) -> _Frame | None:
        for frame in reversed(self.frames):
            if frame.kind == "loop":
                return frame
        return None

    # -- statement dispatch -----------------------------------------------------

    def build_body(self, body: list[ast.stmt]) -> None:
        for statement in body:
            self.build_statement(statement)

    def build_statement(self, node: ast.stmt) -> None:
        # Inside a handler-bearing try, every statement opens a fresh
        # block: the exceptional edge to a handler must not carry facts
        # established by statements after the one that raised.
        if self.blocks[self.current].elements and any(
            frame.kind == "try" and frame.handler_entries
            for frame in self.frames
        ):
            self.start_block(self.blocks[self.current].label, self.current)
        if isinstance(node, ast.If):
            self._build_if(node)
        elif isinstance(node, (ast.While,)):
            self._build_while(node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._build_for(node)
        elif isinstance(node, ast.Try):
            self._build_try(node)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._build_with(node)
        elif isinstance(node, ast.Match):
            self._build_match(node)
        elif isinstance(node, ast.Return):
            self.do_return(node)
        elif isinstance(node, ast.Raise):
            self.do_raise(node)
        elif isinstance(node, ast.Break):
            self.add(node)
            loop = self.nearest_loop()
            if loop is not None:
                loop.break_sources.append(self.current)
            self.start_block("unreachable")
        elif isinstance(node, ast.Continue):
            self.add(node)
            loop = self.nearest_loop()
            if loop is not None:
                self.edge(self.current, loop.continue_target)
            self.start_block("unreachable")
        else:
            self.add(node)

    # -- compound statements ----------------------------------------------------

    def _build_if(self, node: ast.If) -> None:
        self.add(node.test)
        test_block = self.current
        then_entry = self.start_block("then", test_block)
        self.build_body(node.body)
        then_exit = self.current
        if node.orelse:
            else_entry = self.new_block("else")
            self.edge(test_block, else_entry)
            self.current = else_entry
            self.build_body(node.orelse)
            else_exit = self.current
            after = self.start_block("after-if", then_exit, else_exit)
        else:
            after = self.start_block("after-if", test_block, then_exit)
        del then_entry, after

    def _build_while(self, node: ast.While) -> None:
        head = self.start_block("loop-head", self.current)
        self.add(node.test)
        frame = _Frame(kind="loop", continue_target=head)
        self.frames.append(frame)
        self.start_block("loop-body", head)
        self.build_body(node.body)
        self.edge(self.current, head)
        self.frames.pop()
        if node.orelse:
            self.start_block("loop-else", head)
            self.build_body(node.orelse)
            after = self.start_block("after-loop", self.current)
        else:
            after = self.start_block("after-loop", head)
        for source in frame.break_sources:
            self.edge(source, after)

    def _build_for(self, node: ast.For | ast.AsyncFor) -> None:
        head = self.start_block("loop-head", self.current)
        self.add(node.iter)
        self.add(node.target)
        frame = _Frame(kind="loop", continue_target=head)
        self.frames.append(frame)
        self.start_block("loop-body", head)
        self.build_body(node.body)
        self.edge(self.current, head)
        self.frames.pop()
        if node.orelse:
            self.start_block("loop-else", head)
            self.build_body(node.orelse)
            after = self.start_block("after-loop", self.current)
        else:
            after = self.start_block("after-loop", head)
        for source in frame.break_sources:
            self.edge(source, after)

    def _build_try(self, node: ast.Try) -> None:
        frame = _Frame(kind="try")
        # Create handler entry blocks up front so raises inside the body
        # (and the exceptional edges) have somewhere to land.
        handler_entries: list[int] = []
        for handler in node.handlers:
            entry = self.new_block("except")
            if handler.type is not None:
                self.blocks[entry].elements.append(handler.type)
            handler_entries.append(entry)
        frame.handler_entries = handler_entries
        if node.finalbody:
            frame.finally_entry = self.new_block("finally")

        self.frames.append(frame)
        self.start_block("try", *(self.current,))
        self.build_body(node.body)
        body_exit = self.current
        # Exceptional edges: any block built inside the try body may jump
        # to any handler.
        for block_index in frame.body_blocks:
            for handler in handler_entries:
                self.edge(block_index, handler)
        # Stop collecting before building the handlers themselves.
        self.frames.pop()

        normal_exits: list[int] = []
        if node.orelse:
            self.start_block("try-else", body_exit)
            self.build_body(node.orelse)
            normal_exits.append(self.current)
        else:
            normal_exits.append(body_exit)

        outer_frame = (
            _Frame(kind="try", finally_entry=frame.finally_entry)
            if node.finalbody
            else None
        )
        if outer_frame is not None:
            # Abrupt exits from the handlers still cross the finally.
            self.frames.append(outer_frame)
        for handler, entry in zip(node.handlers, handler_entries):
            self.current = entry
            self.build_body(handler.body)
            normal_exits.append(self.current)
        if outer_frame is not None:
            self.frames.pop()
            frame.finally_out.extend(
                target
                for target in outer_frame.finally_out
                if target not in frame.finally_out
            )

        if node.finalbody:
            finally_entry = frame.finally_entry
            for source in normal_exits:
                self.edge(source, finally_entry)
            self.current = finally_entry
            self.build_body(node.finalbody)
            finally_exit = self.current
            after = self.start_block("after-try", finally_exit)
            for target in frame.finally_out:
                if target == "exit":
                    self.to_exit(finally_exit)
                else:
                    self.edge(finally_exit, int(target))
        else:
            after = self.start_block("after-try", *normal_exits)
        del after

    def _build_with(self, node: ast.With | ast.AsyncWith) -> None:
        for item in node.items:
            self.add(item.context_expr)
            if item.optional_vars is not None:
                self.add(item.optional_vars)
        self.start_block("with-body", self.current)
        self.build_body(node.body)
        self.start_block("after-with", self.current)

    def _build_match(self, node: ast.Match) -> None:
        self.add(node.subject)
        subject_block = self.current
        case_exits: list[int] = []
        has_wildcard = False
        for case in node.cases:
            self.start_block("case", subject_block)
            if case.guard is not None:
                self.add(case.guard)
            self.build_body(case.body)
            case_exits.append(self.current)
            if (
                isinstance(case.pattern, ast.MatchAs)
                and case.pattern.pattern is None
                and case.guard is None
            ):
                has_wildcard = True
        preds = case_exits if has_wildcard else [subject_block, *case_exits]
        self.start_block("after-match", *preds)

    # -- finish -----------------------------------------------------------------

    def finish(self) -> Cfg:
        self.to_exit(self.current)
        exit_index = self.new_block("exit")
        for source in self.exit_sources:
            self.edge(source, exit_index)
        for block in self.blocks:
            for successor in block.successors:
                if block.index not in self.blocks[successor].predecessors:
                    self.blocks[successor].predecessors.append(block.index)
        return Cfg(
            blocks=self.blocks,
            entry=0,
            exit=exit_index,
            reachable=_reachable_from(self.blocks, 0),
        )


def _reachable_from(blocks: list[CfgBlock], entry: int) -> frozenset[int]:
    seen: set[int] = set()
    stack = [entry]
    while stack:
        index = stack.pop()
        if index in seen:
            continue
        seen.add(index)
        stack.extend(blocks[index].successors)
    return frozenset(seen)


def build_cfg(
    function: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
) -> Cfg:
    """Build the CFG of a function (or module) body."""
    return build_statements_cfg(list(function.body))


def build_statements_cfg(statements: list[ast.stmt]) -> Cfg:
    """Build a CFG over a bare statement list.

    Used for sub-graphs that are not whole functions — for example an
    ``except`` handler body, when a rule needs "on every path through
    this handler" semantics.
    """
    builder = _Builder()
    builder.build_body(statements)
    return builder.finish()


def _describe(element: ast.AST) -> str:
    line = getattr(element, "lineno", "?")
    try:
        text = ast.unparse(element)
    except Exception:  # pragma: no cover - unparse covers all our nodes
        text = type(element).__name__
    text = " ".join(text.split())
    if len(text) > 48:
        text = text[:45] + "..."
    return f"L{line}:{text}"


def render_cfg(cfg: Cfg, include_unreachable: bool = False) -> str:
    """A stable text rendering, for golden tests and debugging."""
    lines: list[str] = []
    for block in cfg.blocks:
        if not include_unreachable and block.index not in cfg.reachable:
            continue
        elements = "; ".join(_describe(e) for e in block.elements)
        successors = ", ".join(f"b{s}" for s in block.successors)
        suffix = f" -> {successors}" if successors else ""
        body = f" {elements}" if elements else ""
        lines.append(f"b{block.index}[{block.label}]{body}{suffix}")
    return "\n".join(lines)
