"""The shared legal vocabulary of the flow-based lint rules.

The paper's core claim is that each acquisition technique maps to a
minimum legal process, so the analyses need one agreed answer to three
questions: *which calls acquire evidence*, *which calls (or raises, or
predicates) count as consciously clearing the legal gate first*, and
*which exception predicates make warrantless acquisition lawful*.  The
gated-acquisition prover (REPRO110) and the provenance taint analysis
(REPRO111) both import these sets so "gated" means the same thing to
the prover and to the taint seeder.

The sets are keyed by terminal call name, matching how the simulation
exposes the capabilities (``isp.attach_tap``, ``image_device``,
``officer.act``, ...).  Name-based matching is the honest level of
precision for a single-package lint: the names are specific enough that
the shipped tree has no accidental collisions, and the dogfood test
(``tests/analysis/test_repo_clean.py``) keeps it that way.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.flow.cfg import iter_element_nodes

#: Terminal call names that acquire evidence and therefore require legal
#: process (or a recognised exception) first.  Drawn from the simulation
#: surface: live interception, device imaging, stored-record fetches,
#: investigator actions, and anonymity-network relay queries.
ACQUISITION_CAPABILITIES: frozenset[str] = frozenset(
    {
        "attach_tap",
        "image_device",
        "compelled_disclosure",
        "voluntary_disclosure",
        "subscriber_for_ip",
        "act",
        "query",
    }
)

#: Terminal call names whose evaluation demonstrates the caller consulted
#: the legal layer: validity checks on issued process, compliance-engine
#: evaluations, and applications to a magistrate.
GATE_CALLS: frozenset[str] = frozenset(
    {
        "satisfies",
        "is_valid",
        "valid_at",
        "current_process",
        "evaluate",
        "evaluate_many",
        "permits",
        "may_voluntarily_disclose",
        "assess",
        "apply_for",
        "apply_with",
        "apply_with_retry",
        "require_process",
    }
)

#: Raising one of these is itself a gate: the code path consciously
#: refuses to proceed on a legal shortfall.
GATE_EXCEPTIONS: frozenset[str] = frozenset(
    {"InsufficientProcess", "LegalViolation"}
)

#: Statutory-exception predicates.  Branching on one of these (or passing
#: it as an explicit keyword) is a conscious dispatch on a recognised
#: exception to the process requirement — the provider exception of
#: 18 U.S.C. 2511(2)(a)(i), consent, emergency disclosure.
EXCEPTION_PREDICATES: frozenset[str] = frozenset(
    {
        "provider_own_monitoring",
        "protects_provider",
        "user_consented",
        "consent",
        "emergency",
        "comply",
        "obtain_process",
        "private_search",
    }
)


def terminal_name(func: ast.expr) -> str | None:
    """The rightmost name of a call target (``a.b.c()`` -> ``"c"``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def capability_calls(element: ast.AST) -> Iterator[ast.Call]:
    """Acquisition-capability calls within one CFG element."""
    for node in iter_element_nodes(element):
        if (
            isinstance(node, ast.Call)
            and terminal_name(node.func) in ACQUISITION_CAPABILITIES
        ):
            yield node


def call_claims_exception(call: ast.Call) -> bool:
    """Whether a call carries an explicit exception-predicate keyword.

    ``isp.voluntary_disclosure(..., user_consented=True)`` states the
    statutory basis at the call site; that is a gate in itself.
    """
    return any(
        keyword.arg in EXCEPTION_PREDICATES
        for keyword in call.keywords
        if keyword.arg is not None
    )


def _is_gate_node(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        name = terminal_name(node.func)
        if name in GATE_CALLS:
            return True
        return call_claims_exception(node)
    if isinstance(node, ast.Raise) and node.exc is not None:
        exc = node.exc
        raised = exc.func if isinstance(exc, ast.Call) else exc
        return terminal_name(raised) in GATE_EXCEPTIONS
    if isinstance(node, ast.Name):
        return node.id in EXCEPTION_PREDICATES
    if isinstance(node, ast.Attribute):
        return node.attr in EXCEPTION_PREDICATES
    return False


def is_gate_element(element: ast.AST) -> bool:
    """Whether evaluating this CFG element crosses a legal gate.

    A gate is a validity/compliance call, a raise of a legal-shortfall
    exception, or any reference to a statutory-exception predicate
    (reading ``link.provider_own_monitoring`` in a branch test is a
    conscious dispatch on the provider exception).
    """
    return any(_is_gate_node(node) for node in iter_element_nodes(element))
