"""The whole-file-set view the interprocedural analyses run against.

A :class:`Project` wraps every module handed to one lint run and builds,
lazily and exactly once, the artifacts that cross function boundaries:
a function index keyed by bare name and by qualified name, per-function
CFGs, and per-module symbol tables.  Call resolution is name-based and
deliberately honest about its limits: a bare call resolves through the
module's symbol table (local defs and project-internal imports), an
attribute call resolves by unique method name across the index, and
anything else resolves to nothing rather than to a guess.
"""

from __future__ import annotations

import ast
import dataclasses
from collections.abc import Iterable

from repro.analysis.flow.cfg import Cfg, build_cfg
from repro.analysis.flow.symbols import (
    BindingKind,
    ScopedSymbolTable,
)
from repro.analysis.pylint_rules.base import ModuleUnderLint


@dataclasses.dataclass(frozen=True)
class FunctionInfo:
    """One function (or method) of the linted file set.

    Attributes:
        qualname: Dotted path within the module (``Class.method``).
        module: The module the function lives in.
        node: The function's AST node.
    """

    qualname: str
    module: ModuleUnderLint
    node: ast.FunctionDef | ast.AsyncFunctionDef

    @property
    def name(self) -> str:
        """The function's bare name."""
        return self.node.name

    def parameter_names(self) -> list[str]:
        """Positional parameter names, ``self``/``cls`` included."""
        args = self.node.args
        return [a.arg for a in [*args.posonlyargs, *args.args]]


def _module_functions(
    module: ModuleUnderLint,
) -> list[FunctionInfo]:
    found: list[FunctionInfo] = []

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                qualname = (
                    f"{prefix}.{child.name}" if prefix else child.name
                )
                found.append(
                    FunctionInfo(
                        qualname=qualname, module=module, node=child
                    )
                )
                walk(child, qualname)
            elif isinstance(child, ast.ClassDef):
                walk(
                    child,
                    f"{prefix}.{child.name}" if prefix else child.name,
                )
    walk(module.tree, "")
    return found


class Project:
    """Every module of one lint run, plus cached flow artifacts."""

    def __init__(self, modules: Iterable[ModuleUnderLint]) -> None:
        self.modules: list[ModuleUnderLint] = list(modules)
        self._by_path = {m.path: m for m in self.modules}
        self._functions: list[FunctionInfo] | None = None
        self._by_name: dict[str, list[FunctionInfo]] | None = None
        self._cfgs: dict[int, Cfg] = {}
        self._symtabs: dict[str, ScopedSymbolTable] = {}

    @classmethod
    def single(cls, module: ModuleUnderLint) -> "Project":
        """A one-module project, for rules run outside a full lint."""
        return cls([module])

    # -- indexes ----------------------------------------------------------------

    def functions(self) -> list[FunctionInfo]:
        """Every function in the project, in (path, position) order."""
        if self._functions is None:
            self._functions = [
                info
                for module in self.modules
                for info in _module_functions(module)
            ]
        return self._functions

    def functions_named(self, name: str) -> list[FunctionInfo]:
        """All project functions with the given bare name."""
        if self._by_name is None:
            index: dict[str, list[FunctionInfo]] = {}
            for info in self.functions():
                index.setdefault(info.name, []).append(info)
            self._by_name = index
        return self._by_name.get(name, [])

    def module_for(self, path: str) -> ModuleUnderLint | None:
        """The module with the given path, if it is in this project."""
        return self._by_path.get(path)

    # -- cached artifacts --------------------------------------------------------

    def cfg(self, info: FunctionInfo) -> Cfg:
        """The (cached) CFG of one function."""
        key = id(info.node)
        cached = self._cfgs.get(key)
        if cached is None:
            cached = build_cfg(info.node)
            self._cfgs[key] = cached
        return cached

    def symbols(self, module: ModuleUnderLint) -> ScopedSymbolTable:
        """The (cached) symbol table of one module."""
        cached = self._symtabs.get(module.path)
        if cached is None:
            cached = ScopedSymbolTable(module.tree)
            self._symtabs[module.path] = cached
        return cached

    # -- call resolution ---------------------------------------------------------

    def resolve_call(
        self, module: ModuleUnderLint, call: ast.Call
    ) -> list[FunctionInfo]:
        """Project functions a call might target (empty when unknown).

        Bare names resolve through the module's symbol table to local
        definitions; attribute calls resolve by method name when exactly
        one project function carries that name (ambiguity resolves to
        nothing — the analyses stay conservative rather than guessing).
        """
        func = call.func
        if isinstance(func, ast.Name):
            table = self.symbols(module)
            binding = table.resolve(func.id, within=func)
            if binding is not None and binding.kind is BindingKind.FUNCTION:
                return [
                    info
                    for info in self.functions()
                    if info.module is module
                    and info.node is binding.node
                ]
            if (
                binding is not None
                and binding.kind is BindingKind.FROM_IMPORT
                and binding.origin is not None
            ):
                candidates = self.functions_named(binding.origin)
                # Only module-level functions are importable by name.
                return [
                    c for c in candidates if "." not in c.qualname
                ]
            return []
        if isinstance(func, ast.Attribute):
            candidates = [
                c
                for c in self.functions_named(func.attr)
                # Attribute calls target methods (or module attributes);
                # a unique name either way is an unambiguous target.
            ]
            if len(candidates) == 1:
                return candidates
            return []
        return []
