"""A scoped symbol table over one module's AST.

Binds every name a module introduces — imports, assignments, function
and class definitions, parameters, comprehension targets — into a scope
tree with Python's actual lookup rules: functions see enclosing
*function* and module scopes but **not** enclosing class bodies, and
comprehensions are their own scope on Python 3.

The linter uses this to resolve what a name at a use site actually
refers to: ``clock.time()`` is ad-hoc wall-clock timing when ``clock``
is bound by ``import time as clock``, and ``print(...)`` is not a
diagnostic when ``print`` is a local binding shadowing the builtin.
"""

from __future__ import annotations

import ast
import dataclasses
import enum


class BindingKind(enum.Enum):
    """How a name came to be bound in its scope."""

    IMPORT = "import"
    FROM_IMPORT = "from-import"
    ASSIGNMENT = "assignment"
    PARAMETER = "parameter"
    FUNCTION = "function"
    CLASS = "class"
    COMPREHENSION = "comprehension"


@dataclasses.dataclass(frozen=True)
class Binding:
    """One name binding.

    Attributes:
        name: The bound name as visible in the scope.
        kind: How the binding was introduced.
        node: The AST node that introduced it.
        module: For imports, the source module path (``import a.b as c``
            binds ``c`` with module ``a.b``; ``from a import b`` binds
            ``b`` with module ``a``).
        origin: For from-imports, the original name in the source module.
    """

    name: str
    kind: BindingKind
    node: ast.AST
    module: str | None = None
    origin: str | None = None


class Scope:
    """One lexical scope: a module, class, function, or comprehension."""

    def __init__(
        self, node: ast.AST, parent: "Scope | None", kind: str
    ) -> None:
        self.node = node
        self.parent = parent
        self.kind = kind  # "module" | "class" | "function" | "comprehension"
        self.bindings: dict[str, Binding] = {}
        self.children: list[Scope] = []
        if parent is not None:
            parent.children.append(self)

    def bind(self, binding: Binding) -> None:
        """Record a binding (first introduction wins for lint purposes)."""
        self.bindings.setdefault(binding.name, binding)

    def lookup(self, name: str) -> Binding | None:
        """Resolve a name with Python's scoping rules.

        Walks outward, skipping class scopes (a method does not see its
        class body's names as bare names).
        """
        scope: Scope | None = self
        first = True
        while scope is not None:
            if first or scope.kind != "class":
                binding = scope.bindings.get(name)
                if binding is not None:
                    return binding
            first = False
            scope = scope.parent
        return None


_COMPREHENSIONS = (
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


class ScopedSymbolTable:
    """The scope tree of one module, with a node-to-scope map."""

    def __init__(self, tree: ast.Module) -> None:
        self.module_scope = Scope(tree, None, "module")
        self._scope_of: dict[int, Scope] = {id(tree): self.module_scope}
        self._populate(tree, self.module_scope)

    # -- construction -----------------------------------------------------------

    def _populate(self, node: ast.AST, scope: Scope) -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child, scope)

    def _visit(self, node: ast.AST, scope: Scope) -> None:
        self._scope_of.setdefault(id(node), scope)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope.bind(
                Binding(node.name, BindingKind.FUNCTION, node)
            )
            inner = Scope(node, scope, "function")
            self._scope_of[id(node)] = inner
            self._bind_parameters(node.args, inner)
            # Decorators and defaults evaluate in the enclosing scope.
            for decorator in node.decorator_list:
                self._visit(decorator, scope)
            for default in [
                *node.args.defaults,
                *[d for d in node.args.kw_defaults if d is not None],
            ]:
                self._visit(default, scope)
            for statement in node.body:
                self._visit(statement, inner)
            return
        if isinstance(node, ast.Lambda):
            inner = Scope(node, scope, "function")
            self._scope_of[id(node)] = inner
            self._bind_parameters(node.args, inner)
            self._visit(node.body, inner)
            return
        if isinstance(node, ast.ClassDef):
            scope.bind(Binding(node.name, BindingKind.CLASS, node))
            inner = Scope(node, scope, "class")
            self._scope_of[id(node)] = inner
            for decorator in node.decorator_list:
                self._visit(decorator, scope)
            for base in [*node.bases, *node.keywords]:
                self._visit(base, scope)
            for statement in node.body:
                self._visit(statement, inner)
            return
        if isinstance(node, _COMPREHENSIONS):
            inner = Scope(node, scope, "comprehension")
            self._scope_of[id(node)] = inner
            for comp in node.generators:
                self._bind_targets(
                    comp.target, inner, BindingKind.COMPREHENSION
                )
                # The leftmost iterable evaluates in the outer scope.
                self._visit(comp.iter, scope)
                for condition in comp.ifs:
                    self._visit(condition, inner)
            if isinstance(node, ast.DictComp):
                self._visit(node.key, inner)
                self._visit(node.value, inner)
            else:
                self._visit(node.elt, inner)
            return
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                scope.bind(
                    Binding(
                        bound,
                        BindingKind.IMPORT,
                        node,
                        module=alias.name,
                    )
                )
            return
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound = alias.asname or alias.name
                scope.bind(
                    Binding(
                        bound,
                        BindingKind.FROM_IMPORT,
                        node,
                        module=node.module,
                        origin=alias.name,
                    )
                )
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._bind_targets(
                    target, scope, BindingKind.ASSIGNMENT
                )
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            self._bind_targets(
                node.target, scope, BindingKind.ASSIGNMENT
            )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._bind_targets(
                node.target, scope, BindingKind.ASSIGNMENT
            )
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    self._bind_targets(
                        item.optional_vars,
                        scope,
                        BindingKind.ASSIGNMENT,
                    )
        elif isinstance(node, ast.ExceptHandler) and node.name:
            scope.bind(
                Binding(node.name, BindingKind.ASSIGNMENT, node)
            )
        elif isinstance(node, (ast.NamedExpr,)):
            self._bind_targets(
                node.target, scope, BindingKind.ASSIGNMENT
            )
        self._populate(node, scope)

    def _bind_parameters(
        self, args: ast.arguments, scope: Scope
    ) -> None:
        every = [
            *args.posonlyargs,
            *args.args,
            *([args.vararg] if args.vararg else []),
            *args.kwonlyargs,
            *([args.kwarg] if args.kwarg else []),
        ]
        for arg in every:
            scope.bind(Binding(arg.arg, BindingKind.PARAMETER, arg))

    def _bind_targets(
        self, target: ast.AST, scope: Scope, kind: BindingKind
    ) -> None:
        if isinstance(target, ast.Name):
            scope.bind(Binding(target.id, kind, target))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_targets(element, scope, kind)
        elif isinstance(target, ast.Starred):
            self._bind_targets(target.value, scope, kind)
        # Attribute/Subscript targets bind no new name.

    # -- queries ----------------------------------------------------------------

    def scope_of(self, node: ast.AST) -> Scope | None:
        """The scope a function/class/comprehension node opens, if any."""
        return self._scope_of.get(id(node))

    def enclosing_scope(self, node: ast.AST) -> Scope:
        """The innermost scope containing a node."""
        mapped = self._scope_of.get(id(node))
        if mapped is not None:
            return mapped
        found = self._find_scope(self.module_scope, node)
        return found or self.module_scope

    def _find_scope(self, scope: Scope, node: ast.AST) -> Scope | None:
        for child in scope.children:
            within = self._find_scope(child, node)
            if within is not None:
                return within
        if self._contains(scope.node, node):
            return scope
        return None

    @staticmethod
    def _contains(root: ast.AST, node: ast.AST) -> bool:
        return any(candidate is node for candidate in ast.walk(root))

    def resolve(
        self, name: str, within: ast.AST | None = None
    ) -> Binding | None:
        """Resolve a bare name from (the scope containing) ``within``.

        With no ``within`` the module scope is used.
        """
        scope = (
            self.module_scope
            if within is None
            else self.enclosing_scope(within)
        )
        return scope.lookup(name)
