"""Intra-/inter-procedural static-analysis infrastructure.

The flow layer turns a parsed function into artifacts the lint rules
can reason about *soundly* instead of pattern-matching on ``ast.walk``:

* :mod:`~repro.analysis.flow.cfg` — a control-flow graph per function
  (branches, loops with ``else``, ``try``/``except``/``finally``,
  ``with``, ``break``/``continue``/``return``/``raise``);
* :mod:`~repro.analysis.flow.dominance` — immediate dominators, the
  dominator tree, and back-edge/natural-loop discovery on top of it;
* :mod:`~repro.analysis.flow.dataflow` — a generic worklist solver with
  pluggable join/transfer, plus the must-pass ("every path from entry
  crosses a barrier") analysis the gated-acquisition prover is built on;
* :mod:`~repro.analysis.flow.symbols` — a scoped symbol table with
  Python lookup rules (class bodies are not enclosing scopes);
* :mod:`~repro.analysis.flow.project` — the whole-file-set view: a
  function index, call resolution, and per-function CFG caching, which
  is what makes the taint analysis interprocedural.
"""

from repro.analysis.flow.cfg import Cfg, CfgBlock, build_cfg, render_cfg
from repro.analysis.flow.dataflow import (
    Direction,
    find_unguarded_path,
    must_pass_positions,
    solve,
)
from repro.analysis.flow.dominance import (
    back_edges,
    dominator_sets,
    dominator_tree_children,
    immediate_dominators,
    natural_loop,
)
from repro.analysis.flow.project import FunctionInfo, Project
from repro.analysis.flow.symbols import (
    Binding,
    BindingKind,
    ScopedSymbolTable,
)

__all__ = [
    "Binding",
    "BindingKind",
    "Cfg",
    "CfgBlock",
    "Direction",
    "FunctionInfo",
    "Project",
    "ScopedSymbolTable",
    "back_edges",
    "build_cfg",
    "dominator_sets",
    "dominator_tree_children",
    "find_unguarded_path",
    "immediate_dominators",
    "must_pass_positions",
    "natural_loop",
    "render_cfg",
    "solve",
]
