"""A worklist dataflow solver with pluggable lattices.

:func:`solve` runs any monotone framework to a fixpoint over a
:class:`~repro.analysis.flow.cfg.Cfg`: the caller supplies the lattice
as plain callables (``join``, ``transfer``) plus the boundary fact and
the optimistic initial value (``top``).  Facts are opaque to the solver.

:func:`must_pass_positions` is the all-paths analysis the
gated-acquisition prover is built on: for every element position it
answers "does *every* path from the entry to this element cross a
barrier first?" — the lattice is the two-point must lattice (``True`` =
gated on all paths so far, join = logical and).
"""

from __future__ import annotations

import ast
import enum
from collections.abc import Callable
from typing import TypeVar

from repro.analysis.flow.cfg import Cfg

T = TypeVar("T")


class Direction(enum.Enum):
    """Which way facts propagate."""

    FORWARD = "forward"
    BACKWARD = "backward"


def solve(
    cfg: Cfg,
    *,
    boundary: T,
    top: T,
    transfer: Callable[[int, T], T],
    join: Callable[[T, T], T],
    direction: Direction = Direction.FORWARD,
    equals: Callable[[T, T], bool] | None = None,
) -> dict[int, tuple[T, T]]:
    """Run a dataflow problem to fixpoint.

    Args:
        cfg: The graph to solve over (only reachable blocks participate).
        boundary: The fact at the entry (forward) or exit (backward).
        top: The optimistic initial fact for every other block.
        transfer: ``transfer(block_index, in_fact) -> out_fact``.
        join: Combine facts where paths meet.
        direction: Forward or backward propagation.
        equals: Fact equality (defaults to ``==``).

    Returns:
        ``{block_index: (in_fact, out_fact)}`` for reachable blocks, where
        "in" is the fact entering the transfer function (so, for a
        backward problem, the fact at the block's *exit*).
    """
    same = equals or (lambda a, b: bool(a == b))
    if direction is Direction.FORWARD:
        start = cfg.entry
        incoming = {
            b.index: [
                p for p in b.predecessors if p in cfg.reachable
            ]
            for b in cfg.reachable_blocks()
        }
        outgoing = {
            b.index: [
                s for s in b.successors if s in cfg.reachable
            ]
            for b in cfg.reachable_blocks()
        }
    else:
        start = cfg.exit
        incoming = {
            b.index: [
                s for s in b.successors if s in cfg.reachable
            ]
            for b in cfg.reachable_blocks()
        }
        outgoing = {
            b.index: [
                p for p in b.predecessors if p in cfg.reachable
            ]
            for b in cfg.reachable_blocks()
        }

    in_facts: dict[int, T] = {
        b.index: top for b in cfg.reachable_blocks()
    }
    out_facts: dict[int, T] = {}
    in_facts[start] = boundary

    worklist = [b.index for b in cfg.reachable_blocks()]
    pending = set(worklist)
    while worklist:
        block = worklist.pop(0)
        pending.discard(block)
        sources = incoming[block]
        if block != start and sources:
            fact = out_facts.get(sources[0], top)
            for other in sources[1:]:
                fact = join(fact, out_facts.get(other, top))
            in_facts[block] = fact
        new_out = transfer(block, in_facts[block])
        old_out = out_facts.get(block)
        if old_out is None or not same(old_out, new_out):
            out_facts[block] = new_out
            for target in outgoing[block]:
                if target not in pending:
                    pending.add(target)
                    worklist.append(target)
    return {
        index: (in_facts[index], out_facts[index])
        for index in in_facts
        if index in out_facts
    }


def must_pass_positions(
    cfg: Cfg,
    is_barrier: Callable[[ast.AST], bool],
) -> dict[tuple[int, int], bool]:
    """All-paths barrier coverage for every element position.

    Returns ``{(block_index, element_index): gated}`` where ``gated``
    means every path from the entry to just *before* that element crosses
    at least one barrier element.
    """
    barrier_positions: dict[int, list[bool]] = {
        block.index: [is_barrier(e) for e in block.elements]
        for block in cfg.reachable_blocks()
    }

    def transfer(block: int, fact: bool) -> bool:
        return fact or any(barrier_positions[block])

    solution = solve(
        cfg,
        boundary=False,
        top=True,
        transfer=transfer,
        join=lambda a, b: a and b,
    )

    positions: dict[tuple[int, int], bool] = {}
    for block in cfg.reachable_blocks():
        fact = solution[block.index][0]
        for index, barrier in enumerate(
            barrier_positions[block.index]
        ):
            positions[(block.index, index)] = fact
            if barrier:
                fact = True
    return positions


def all_paths_cross(
    cfg: Cfg,
    is_barrier: Callable[[ast.AST], bool],
) -> bool:
    """Whether every entry-to-exit path crosses at least one barrier.

    The exit-block variant of :func:`must_pass_positions`: ``True`` when
    no path can run from entry to exit without evaluating a barrier
    element.
    """
    barrier_blocks = {
        block.index: any(is_barrier(e) for e in block.elements)
        for block in cfg.reachable_blocks()
    }
    solution = solve(
        cfg,
        boundary=False,
        top=True,
        transfer=lambda block, fact: fact or barrier_blocks[block],
        join=lambda a, b: a and b,
    )
    return bool(solution[cfg.exit][0])


def find_unguarded_path(
    cfg: Cfg,
    target_block: int,
    target_position: int,
    is_barrier: Callable[[ast.AST], bool],
) -> list[int] | None:
    """A shortest entry-to-target path crossing no barrier, if one exists.

    Used to render *why* a call site is unproven: the returned list of
    block indexes traces one concrete ungated path.  ``None`` when every
    path is gated (or the target is unreachable).
    """
    if target_block not in cfg.reachable:
        return None

    def blocked_before(block: int, upto: int | None) -> bool:
        elements = cfg.blocks[block].elements
        stop = len(elements) if upto is None else upto
        return any(is_barrier(e) for e in elements[:stop])

    # BFS over blocks; a block may be traversed only if it contains no
    # barrier (for the target block, no barrier before the target
    # position).
    from collections import deque

    queue: deque[list[int]] = deque([[cfg.entry]])
    seen = {cfg.entry}
    while queue:
        path = queue.popleft()
        block = path[-1]
        if block == target_block:
            if not blocked_before(block, target_position):
                return path
            continue
        if blocked_before(block, None):
            continue
        for successor in cfg.blocks[block].successors:
            if successor in seen or successor not in cfg.reachable:
                continue
            seen.add(successor)
            queue.append(path + [successor])
    return None
