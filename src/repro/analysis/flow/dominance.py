"""Dominance computation over a :class:`~repro.analysis.flow.cfg.Cfg`.

Implements the Cooper–Harvey–Kennedy iterative algorithm: immediate
dominators converge in a few passes over the reverse postorder, and the
full dominator sets / tree / back edges are derived from them.  Only
blocks reachable from the entry participate; unreachable blocks have no
dominator information.
"""

from __future__ import annotations

from repro.analysis.flow.cfg import Cfg


def _reverse_postorder(cfg: Cfg) -> list[int]:
    order: list[int] = []
    seen: set[int] = set()

    def visit(start: int) -> None:
        # Iterative DFS with an explicit done-marker, so deep CFGs do
        # not hit the recursion limit.
        stack: list[tuple[int, bool]] = [(start, False)]
        while stack:
            index, done = stack.pop()
            if done:
                order.append(index)
                continue
            if index in seen:
                continue
            seen.add(index)
            stack.append((index, True))
            for successor in reversed(cfg.blocks[index].successors):
                if successor not in seen:
                    stack.append((successor, False))

    visit(cfg.entry)
    order.reverse()
    return order


def immediate_dominators(cfg: Cfg) -> dict[int, int | None]:
    """Immediate dominator of every reachable block (entry maps to None)."""
    order = _reverse_postorder(cfg)
    position = {block: i for i, block in enumerate(order)}
    idom: dict[int, int | None] = {cfg.entry: None}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                parent = idom[a]
                assert parent is not None
                a = parent
            while position[b] > position[a]:
                parent = idom[b]
                assert parent is not None
                b = parent
        return a

    changed = True
    while changed:
        changed = False
        for block in order:
            if block == cfg.entry:
                continue
            candidates = [
                p
                for p in cfg.blocks[block].predecessors
                if p in idom
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(block) != new_idom:
                idom[block] = new_idom
                changed = True
    return idom


def dominator_sets(cfg: Cfg) -> dict[int, frozenset[int]]:
    """The full dominator set of every reachable block (including itself)."""
    idom = immediate_dominators(cfg)
    sets: dict[int, frozenset[int]] = {}

    def doms(block: int) -> frozenset[int]:
        cached = sets.get(block)
        if cached is not None:
            return cached
        parent = idom.get(block)
        result = (
            frozenset({block})
            if parent is None
            else doms(parent) | {block}
        )
        sets[block] = result
        return result

    for block in idom:
        doms(block)
    return sets


def dominates(
    idom: dict[int, int | None], dominator: int, block: int
) -> bool:
    """Whether ``dominator`` dominates ``block`` under the given idoms."""
    current: int | None = block
    while current is not None:
        if current == dominator:
            return True
        current = idom.get(current)
    return False


def dominator_tree_children(
    idom: dict[int, int | None],
) -> dict[int, list[int]]:
    """Children lists of the dominator tree, sorted for determinism."""
    children: dict[int, list[int]] = {block: [] for block in idom}
    for block, parent in idom.items():
        if parent is not None:
            children[parent].append(block)
    for block in children:
        children[block].sort()
    return children


def back_edges(cfg: Cfg) -> list[tuple[int, int]]:
    """Edges ``u -> v`` where ``v`` dominates ``u`` (loop back edges)."""
    idom = immediate_dominators(cfg)
    edges: list[tuple[int, int]] = []
    for block in cfg.reachable_blocks():
        for successor in block.successors:
            if successor in idom and dominates(
                idom, successor, block.index
            ):
                edges.append((block.index, successor))
    return edges


def natural_loop(cfg: Cfg, tail: int, head: int) -> frozenset[int]:
    """The natural loop of back edge ``tail -> head``.

    All blocks that can reach ``tail`` without passing through ``head``,
    plus ``head`` itself.
    """
    loop: set[int] = {head, tail}
    stack = [tail]
    while stack:
        block = stack.pop()
        for predecessor in cfg.blocks[block].predecessors:
            if (
                predecessor not in loop
                and predecessor in cfg.reachable
            ):
                loop.add(predecessor)
                stack.append(predecessor)
    return frozenset(loop)
