"""Static analysis of investigation plans.

The checker walks a :class:`~repro.analysis.plan.Plan` with the
:class:`~repro.core.engine.ComplianceEngine` in pure-ruling mode — no
netsim, no magistrate, no evidence objects — and emits structured
:class:`~repro.analysis.diagnostics.Diagnostic`s.  Three analyses run:

1. **Process shortfall** (per step): the engine's required process for
   the step's action exceeds the strongest instrument the plan declares.
2. **Forfeited exception** (cross-step): a step claims a consent that an
   earlier step's own facts already extinguished — revoked, involuntary,
   or beyond the consenter's authority (Megahed: revocation stops future
   searching).  Judged alone, the later step looks fine; only the plan
   shows the contradiction.
3. **Taint propagation** (cross-step): evidence acquired unlawfully at
   one step poisons every step that uses it downstream (Wong Sun), even
   when the downstream acquisition is impeccable on its own — the case
   the per-action engine structurally cannot see.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    has_errors,
    render_report,
)
from repro.analysis.plan import Plan, PlanStep
from repro.core.engine import ComplianceEngine
from repro.core.enums import LegalSource, ProcessKind
from repro.core.ruling import Requirement, Ruling


@dataclasses.dataclass(frozen=True)
class PlanReport:
    """Everything the static checker concluded about one plan.

    Attributes:
        plan: The plan analyzed.
        rulings: The engine's ruling for each step, in step order.
        diagnostics: All findings, in step order.
    """

    plan: Plan
    rulings: tuple[Ruling, ...]
    diagnostics: tuple[Diagnostic, ...]

    @property
    def ok(self) -> bool:
        """Whether the plan is free of error-severity findings."""
        return not has_errors(list(self.diagnostics))

    @property
    def required_process(self) -> ProcessKind:
        """The strongest process any step of the plan requires."""
        return max(
            (ruling.required_process for ruling in self.rulings),
            default=ProcessKind.NONE,
        )

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [f"plan: {self.plan.name}"]
        for number, (step, ruling) in enumerate(
            zip(self.plan.steps, self.rulings), 1
        ):
            lines.append(
                f"  step {number}: {step.action.description}"
            )
            lines.append(
                "    requires: "
                f"{ruling.required_process.display_name}"
            )
        lines.append(
            f"plan requires: {self.required_process.display_name}; "
            f"plan declares: {self.plan.held_process.display_name}"
        )
        lines.append(render_report(list(self.diagnostics)))
        return "\n".join(lines)


class PlanAnalyzer:
    """Walks plans with the engine in pure-ruling mode."""

    def __init__(self, engine: ComplianceEngine | None = None) -> None:
        self._engine = engine or ComplianceEngine()

    def analyze(self, plan: Plan) -> PlanReport:
        """Produce the complete static report for one plan."""
        rulings = tuple(
            self._engine.evaluate(step.action) for step in plan.steps
        )
        diagnostics: list[Diagnostic] = []
        unlawful: set[int] = set()

        for number, (step, ruling) in enumerate(
            zip(plan.steps, rulings), 1
        ):
            shortfall = self._check_process(plan, number, ruling)
            if shortfall is not None:
                diagnostics.append(shortfall)
                unlawful.add(number)
            forfeited = self._check_forfeited_consent(plan, number, step)
            if forfeited is not None:
                diagnostics.append(forfeited)
                unlawful.add(number)

        diagnostics.extend(self._propagate_taint(plan, unlawful))
        diagnostics.extend(self._check_overprocess(plan, rulings))
        diagnostics.sort(key=lambda d: (d.step or 0, d.code))
        return PlanReport(
            plan=plan, rulings=rulings, diagnostics=tuple(diagnostics)
        )

    def _check_process(
        self, plan: Plan, number: int, ruling: Ruling
    ) -> Diagnostic | None:
        """Per-step check: does the declared process cover the step?"""
        required = ruling.required_process
        if plan.held_process.satisfies(required):
            return None
        binding = self._binding_requirement(ruling)
        return Diagnostic(
            severity=Severity.ERROR,
            code="PLAN001",
            step=number,
            message=(
                f"step {number} requires a {required.display_name} but "
                f"the plan declares only "
                f"{plan.held_process.display_name}"
            ),
            source=binding.source if binding else None,
            authorities=(
                self._requirement_authorities(binding) if binding else ()
            ),
            fix_it=(
                f"obtain a {required.display_name} before step {number}"
            ),
        )

    @staticmethod
    def _binding_requirement(ruling: Ruling) -> Requirement | None:
        """The surviving requirement that sets the required process."""
        eliminated: frozenset[LegalSource] = frozenset()
        for exception in ruling.exceptions:
            eliminated = eliminated | exception.eliminates
        candidates = [
            requirement
            for requirement in ruling.requirements
            if requirement.source not in eliminated
            and requirement.process is ruling.required_process
        ]
        return candidates[0] if candidates else None

    @staticmethod
    def _requirement_authorities(
        requirement: Requirement,
    ) -> tuple[str, ...]:
        """Flattened, de-duplicated citations behind a requirement."""
        seen: list[str] = []
        for step in requirement.steps:
            for key in step.authorities:
                if key not in seen:
                    seen.append(key)
        return tuple(seen)

    @staticmethod
    def _check_forfeited_consent(
        plan: Plan, number: int, step: PlanStep
    ) -> Diagnostic | None:
        """Cross-step check: consent already extinguished upstream."""
        consent = step.action.consent
        if not consent.effective():
            return None
        for earlier_number in range(1, number):
            earlier = plan.steps[earlier_number - 1].action.consent
            if earlier.scope is not consent.scope:
                continue
            if earlier.revoked:
                reason = "revoked"
            elif not earlier.voluntary:
                reason = "found involuntary"
            elif earlier.exceeds_authority:
                reason = "held to exceed the consenter's authority"
            else:
                continue
            return Diagnostic(
                severity=Severity.ERROR,
                code="PLAN002",
                step=number,
                source=LegalSource.DOCTRINE,
                authorities=("megahed", "matlock"),
                message=(
                    f"step {number} claims consent from "
                    f"{consent.scope.value!r}, but that consent was "
                    f"{reason} as of step {earlier_number}; a later "
                    "step cannot revive it"
                ),
                fix_it=(
                    f"re-obtain valid consent before step {number}, or "
                    f"obtain a search warrant instead"
                ),
            )
        return None

    @staticmethod
    def _propagate_taint(
        plan: Plan, unlawful: set[int]
    ) -> list[Diagnostic]:
        """Fruit-of-the-poisonous-tree propagation along evidence edges."""
        tainted: dict[int, int] = {}  # step -> originating unlawful step
        diagnostics: list[Diagnostic] = []
        for number, step in enumerate(plan.steps, 1):
            if number in unlawful:
                tainted[number] = number
                continue
            poisoned_parents = [
                used for used in step.uses if used in tainted
            ]
            if not poisoned_parents:
                continue
            origin = tainted[poisoned_parents[0]]
            tainted[number] = origin
            diagnostics.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="PLAN003",
                    step=number,
                    source=LegalSource.DOCTRINE,
                    authorities=("wong_sun", "nix_v_williams"),
                    message=(
                        f"step {number} is lawful in isolation but "
                        f"consumes evidence from step "
                        f"{poisoned_parents[0]}, which traces to the "
                        f"unlawful acquisition at step {origin}; its "
                        "product would be suppressed as fruit of the "
                        "poisonous tree"
                    ),
                    fix_it=(
                        f"cure step {origin} (obtain the process it "
                        "needs) or establish an independent source "
                        f"for the facts step {number} relies on"
                    ),
                )
            )
        return diagnostics

    @staticmethod
    def _check_overprocess(
        plan: Plan, rulings: tuple[Ruling, ...]
    ) -> list[Diagnostic]:
        """Note when the plan declares more process than any step needs."""
        strongest_needed = max(
            (ruling.required_process for ruling in rulings),
            default=ProcessKind.NONE,
        )
        if plan.held_process <= strongest_needed:
            return []
        return [
            Diagnostic(
                severity=Severity.NOTE,
                code="PLAN004",
                message=(
                    f"plan declares a "
                    f"{plan.held_process.display_name} but no step "
                    f"requires more than a "
                    f"{strongest_needed.display_name}; stronger "
                    "process is lawful but costlier to obtain"
                ),
            )
        ]
