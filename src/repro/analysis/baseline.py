"""Baseline files: adopt a tree's current findings, fail only on new ones.

A baseline is the adoption path for turning a strict rule on over an
existing tree: ``repro lint --write-baseline lint-baseline.json``
records every current finding's fingerprint, and subsequent runs with
``--baseline lint-baseline.json`` report only findings **not** in the
baseline.  Fingerprints come from :func:`repro.analysis.sarif.fingerprint`
— path, code, and message, but not line — so unrelated edits above a
baselined finding do not resurrect it.

The file is sorted JSON, so regenerating it over an unchanged tree is a
no-op diff.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.sarif import fingerprint

_FORMAT = "repro-lint-baseline/v1"


def write_baseline(path: Path, diagnostics: list[Diagnostic]) -> int:
    """Record the given findings as accepted; returns how many."""
    entries = sorted(
        {
            fingerprint(diagnostic): {
                "code": diagnostic.code,
                "path": diagnostic.path,
                "message": diagnostic.message,
            }
            for diagnostic in diagnostics
        }.items()
    )
    payload = {
        "format": _FORMAT,
        "findings": dict(entries),
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)


def load_baseline(path: Path) -> frozenset[str]:
    """The accepted fingerprints of a baseline file.

    Raises:
        ValueError: When the file is not a recognised baseline.
    """
    payload = json.loads(path.read_text(encoding="utf-8"))
    if (
        not isinstance(payload, dict)
        or payload.get("format") != _FORMAT
        or not isinstance(payload.get("findings"), dict)
    ):
        raise ValueError(f"not a repro-lint baseline file: {path}")
    return frozenset(payload["findings"])


def filter_baselined(
    diagnostics: list[Diagnostic], accepted: frozenset[str]
) -> tuple[list[Diagnostic], int]:
    """Split findings into (new, number-baselined)."""
    fresh = [
        diagnostic
        for diagnostic in diagnostics
        if fingerprint(diagnostic) not in accepted
    ]
    return fresh, len(diagnostics) - len(fresh)
