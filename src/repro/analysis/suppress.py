"""Inline suppression comments for the linter.

A finding is suppressed by a comment of the form::

    isp.attach_tap(...)  # repro-lint: disable=REPRO110 -- provider exception

The justification after ``--`` is **mandatory**: a suppression without
one is ignored, so every accepted deviation carries its legal reasoning
in the tree.  A comment on its own line suppresses the next code line,
so long call chains can keep their annotation above them.

Suppressions feed two consumers: the runner drops matching diagnostics,
and the provenance taint analysis (REPRO111) treats a site whose
REPRO110 finding is suppressed as *sanctioned* — its results are not
poisoned, because the justification asserts a recognised exception.
"""

from __future__ import annotations

import dataclasses
import re

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Z0-9, ]+?)"
    r"\s*--\s*(?P<why>\S.*)$"
)


@dataclasses.dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment.

    Attributes:
        line: The 1-based source line the suppression applies to.
        codes: The diagnostic codes it silences.
        justification: The stated reason (never empty).
    """

    line: int
    codes: frozenset[str]
    justification: str


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """All effective suppressions of one module, keyed by target line.

    A trailing comment targets its own line; a comment-only line targets
    the next *code* line — blank lines and further comment lines (a
    multi-line justification) are skipped, so an annotation block above
    a statement covers the statement itself.
    """
    found: dict[int, Suppression] = {}
    lines = source.splitlines()
    for lineno, text in enumerate(lines, start=1):
        match = _PATTERN.search(text)
        if match is None:
            continue
        codes = frozenset(
            code.strip()
            for code in match.group("codes").split(",")
            if code.strip()
        )
        if not codes:
            continue
        if text.lstrip().startswith("#"):
            target = lineno + 1
            while target <= len(lines):
                following = lines[target - 1].strip()
                if following and not following.startswith("#"):
                    break
                target += 1
        else:
            target = lineno
        existing = found.get(target)
        if existing is not None:
            codes = codes | existing.codes
        found[target] = Suppression(
            line=target,
            codes=codes,
            justification=match.group("why").strip(),
        )
    return found


def is_suppressed(
    suppressions: dict[int, Suppression], code: str, line: int | None
) -> bool:
    """Whether a finding with the given code and line is suppressed."""
    if line is None:
        return False
    suppression = suppressions.get(line)
    return suppression is not None and code in suppression.codes
