"""Static compliance analysis: lint plans and code before anything runs.

Two targets, one diagnostic vocabulary:

* **Plan analysis** — :class:`PlanAnalyzer` walks a :class:`Plan` (an
  ordered IR over :class:`~repro.core.action.InvestigativeAction`s) with
  the compliance engine in pure-ruling mode, including the cross-step
  checks the per-action engine cannot see (forfeited exceptions,
  fruit-of-the-poisonous-tree propagation).
* **Code analysis** — a plugin AST linter
  (:mod:`repro.analysis.pylint_rules`) enforcing the repo's own
  invariants: technique contracts, catalogue answers, determinism,
  ``max()``/``min()`` emptiness safety, exhaustive enum dispatch, and
  mutable-default hygiene.

Public API::

    from repro.analysis import (
        Diagnostic, Severity, Plan, PlanStep, PlanAnalyzer,
        plan_from_technique, plan_from_scenario, lint_paths,
    )
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    has_errors,
    render_report,
    worst_severity,
)
from repro.analysis.plan import (
    DEMO_PLANS,
    Plan,
    PlanStep,
    forfeited_consent_plan,
    plan_from_scenario,
    plan_from_scene_number,
    plan_from_technique,
    tainted_downstream_plan,
)
from repro.analysis.baseline import (
    filter_baselined,
    load_baseline,
    write_baseline,
)
from repro.analysis.plan_checker import PlanAnalyzer, PlanReport
from repro.analysis.runner import (
    LintRun,
    default_lint_root,
    iter_python_files,
    lint_file,
    lint_paths,
    run_lint,
)
from repro.analysis.sarif import to_sarif, write_sarif

__all__ = [
    "DEMO_PLANS",
    "Diagnostic",
    "LintRun",
    "Plan",
    "PlanAnalyzer",
    "PlanReport",
    "PlanStep",
    "Severity",
    "default_lint_root",
    "filter_baselined",
    "forfeited_consent_plan",
    "has_errors",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "plan_from_scenario",
    "plan_from_scene_number",
    "plan_from_technique",
    "render_report",
    "run_lint",
    "tainted_downstream_plan",
    "to_sarif",
    "worst_severity",
    "write_baseline",
    "write_sarif",
]
