"""The engine benchmark harness behind ``repro bench``.

Measures what the ROADMAP's production story depends on — bulk ruling
throughput, cache behaviour, and per-ruling tail latency — and proves
while measuring: the run includes a differential check (cached vs. fresh
engines must produce byte-identical rulings over the whole corpus) and
fails, loudly and with a nonzero exit code, if memoization ever changes a
ruling.

Output is one JSON document (``BENCH_engine.json`` by default) with four
sections:

``corpus``
    The 5k-corpus benchmark: an uncached per-action ``evaluate`` loop vs.
    ``evaluate_many`` on a cached engine, cold (empty cache) and hot
    (steady state).  ``speedup_hot`` is the headline number.
``latency``
    Per-ruling p50/p99 microseconds, uncached vs. cache-hot.
``table1``
    Throughput of ruling the paper's 20 scenes in a loop, plus agreement.
``chaos``
    Wall time for a small fault-plan sweep through the process pool.
``differential``
    The correctness gate: ruling-for-ruling equality and the hot hit rate.
"""

from __future__ import annotations

import gc
import json
import platform
import time
from pathlib import Path

from repro import obs
from repro.core import ComplianceEngine, RulingCache, action_fingerprint
from repro.core.scenarios import build_table1
from repro.faults.chaos import resolve_workers, run_chaos
from repro.workloads import action_corpus

#: Default benchmark corpus size (matches ``benchmarks/test_engine_scale``).
CORPUS_SIZE = 5000
#: ``--quick`` corpus size, for CI smoke runs.
QUICK_CORPUS_SIZE = 1000
#: Actions sampled for the per-ruling latency percentiles.
LATENCY_SAMPLE = 2000


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[rank]


#: Repetitions for the uncached/cold corpus timings.  The cold-floor gate
#: (``speedup_cold >= COLD_SPEEDUP_FLOOR``) compares two ~equal times, so
#: each side takes its best of five runs — minimum wall time estimates
#: the structural cost, since scheduler noise only ever inflates it.
CORPUS_TIMING_REPS = 5

#: The cold-batch floor asserted by the benchmark gate: filling the cache
#: must cost no more than ~5% over the uncached loop it replaces.
COLD_SPEEDUP_FLOOR = 0.95

#: Smallest corpus the cold floor is *enforced* at.  Below this the timed
#: sections are a few milliseconds — shorter than one scheduler tick — so
#: a 5% ratio cannot be measured; the ratio is still reported.
COLD_FLOOR_MIN_ACTIONS = 1000


def _bench_corpus(corpus, reps: int = CORPUS_TIMING_REPS) -> dict:
    """Uncached loop vs. cached batch (cold and hot) over one corpus.

    The cyclic GC is paused around each timed run (and collected between
    them): a cold batch keeps every ruling alive in the cache, so it
    crosses allocation thresholds the discard-as-you-go uncached loop
    never does, and mid-run collection pauses would skew the cold-floor
    ratio by up to 10% on a busy single-CPU box.
    """
    n = len(corpus)
    gc_was_enabled = gc.isenabled()

    def _timed(run) -> float:
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            run()
            return time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()

    uncached_s = float("inf")
    for _ in range(reps):
        uncached = ComplianceEngine()

        def _uncached_loop() -> None:
            for action in corpus:
                uncached.evaluate(action)

        uncached_s = min(uncached_s, _timed(_uncached_loop))

    cold_s = float("inf")
    for _ in range(reps):
        cached = ComplianceEngine(cache=RulingCache(maxsize=2 * n))
        cold_s = min(cold_s, _timed(lambda: cached.evaluate_many(corpus)))
    cold_stats = cached.cache_stats.to_dict()

    cached.cache_stats.reset()
    hot_s = _timed(lambda: cached.evaluate_many(corpus))
    hot_stats = cached.cache_stats.to_dict()

    return {
        "actions": n,
        "unique_fingerprints": len(
            {action_fingerprint(action) for action in corpus}
        ),
        "uncached_loop": {
            "seconds": uncached_s,
            "actions_per_second": n / uncached_s,
        },
        "cached_batch_cold": {
            "seconds": cold_s,
            "actions_per_second": n / cold_s,
            "cache": cold_stats,
        },
        "cached_batch_hot": {
            "seconds": hot_s,
            "actions_per_second": n / hot_s,
            "cache": hot_stats,
        },
        "speedup_hot": uncached_s / hot_s if hot_s else 0.0,
        "speedup_cold": uncached_s / cold_s if cold_s else 0.0,
    }


def _bench_latency(corpus) -> dict:
    """Per-ruling latency percentiles, uncached vs. cache-hot."""
    sample = corpus[:LATENCY_SAMPLE]

    def _per_call_us(engine: ComplianceEngine) -> dict:
        timings = []
        for action in sample:
            start = time.perf_counter_ns()
            engine.evaluate(action)
            timings.append((time.perf_counter_ns() - start) / 1000.0)
        timings.sort()
        return {
            "p50_us": _percentile(timings, 0.50),
            "p99_us": _percentile(timings, 0.99),
        }

    hot_engine = ComplianceEngine(cache=RulingCache(maxsize=2 * len(sample)))
    hot_engine.evaluate_many(sample)  # warm every fingerprint
    return {
        "sample": len(sample),
        "uncached": _per_call_us(ComplianceEngine()),
        "cached_hot": _per_call_us(hot_engine),
    }


def _bench_table1(reps: int) -> dict:
    """Rule the paper's 20 scenes ``reps`` times on a cached engine."""
    scenarios = build_table1()
    actions = [scenario.action for scenario in scenarios]
    engine = ComplianceEngine(cache=RulingCache())
    start = time.perf_counter()
    for _ in range(reps):
        rulings = engine.evaluate_many(actions)
    seconds = time.perf_counter() - start
    agreement = sum(
        ruling.needs_process == scenario.paper_needs_process
        for ruling, scenario in zip(rulings, scenarios)
    )
    total = reps * len(actions)
    return {
        "scenes": len(actions),
        "reps": reps,
        "seconds": seconds,
        "rulings_per_second": total / seconds if seconds else 0.0,
        "agreement": f"{agreement}/{len(actions)}",
        "agreement_ok": agreement == len(actions),
        "cache": engine.cache_stats.to_dict(),
    }


def _bench_chaos(seed: int, n_plans: int) -> dict:
    """A small chaos sweep through the process pool, timed."""
    workers = resolve_workers(None, n_plans)
    start = time.perf_counter()
    report = run_chaos(seed=seed, n_plans=n_plans, max_workers=workers)
    seconds = time.perf_counter() - start
    return {
        "plans": n_plans,
        "workers": workers,
        "seconds": seconds,
        "plans_per_second": n_plans / seconds if seconds else 0.0,
        "faults_injected": report.total_faults,
        "ok": report.ok,
    }


def _differential(corpus) -> dict:
    """The correctness gate: cached and fresh rulings must be identical."""
    fresh = ComplianceEngine()
    cached = ComplianceEngine(cache=RulingCache(maxsize=2 * len(corpus)))
    mismatches = 0
    for action in corpus:
        if (
            fresh.evaluate(action).to_dict()
            != cached.evaluate(action).to_dict()
        ):
            mismatches += 1
    cached.cache_stats.reset()
    cached.evaluate_many(corpus)  # second pass: must hit
    hot_hit_rate = cached.cache_stats.hit_rate
    return {
        "actions": len(corpus),
        "mismatches": mismatches,
        "identical": mismatches == 0,
        "second_pass_hit_rate": hot_hit_rate,
        "ok": mismatches == 0 and hot_hit_rate > 0.0,
    }


def _cold_floor(corpus_section: dict) -> dict:
    """The cold-batch floor: filling the cache must not beat its purpose.

    ``speedup_cold`` is best-of-``CORPUS_TIMING_REPS`` on both sides, so
    the ratio reflects structural miss-path overhead (fingerprint, hash,
    insert), not scheduler noise; the floor failing means the miss path
    regressed.  Corpora smaller than :data:`COLD_FLOOR_MIN_ACTIONS` are
    reported but not gated — their timed sections are too short to
    resolve a 5% ratio.
    """
    speedup_cold = corpus_section["speedup_cold"]
    gated = corpus_section["actions"] >= COLD_FLOOR_MIN_ACTIONS
    return {
        "speedup_cold": speedup_cold,
        "floor": COLD_SPEEDUP_FLOOR,
        "gated": gated,
        "ok": (not gated) or speedup_cold >= COLD_SPEEDUP_FLOOR,
    }


#: Ceiling on the disabled-telemetry overhead of the public batch path.
OBS_OVERHEAD_CEILING_PCT = 3.0

#: Smallest corpus the overhead ceiling is *enforced* at, for the same
#: resolution reason as :data:`COLD_FLOOR_MIN_ACTIONS`.
OBS_OVERHEAD_MIN_ACTIONS = 1000


def _bench_obs_overhead(corpus, reps: int = CORPUS_TIMING_REPS) -> dict:
    """Telemetry's disabled-mode cost on the hot batch path.

    Times the public ``evaluate_many`` (which carries the ``OBS.enabled``
    guard) against the guard-free ``_evaluate_many_impl`` body on a hot
    cache with telemetry off; the difference is exactly what
    instrumentation costs every production caller who never enables it.
    Both sides take their best of ``reps`` gc-paused runs, and a ratio at
    or over the ceiling is re-measured once with doubled repetitions
    before being believed (the two times are nearly equal, so one noisy
    scheduler tick can fake a regression).  An enabled-mode pass is also
    reported, ungated, for scale.
    """
    n = len(corpus)
    engine = ComplianceEngine(cache=RulingCache(maxsize=2 * n))
    engine.evaluate_many(corpus)  # warm every fingerprint
    gc_was_enabled = gc.isenabled()

    def _timed(run) -> float:
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            run()
            return time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()

    def _best(run, n_reps: int) -> float:
        best = _timed(run)
        for _ in range(n_reps - 1):
            best = min(best, _timed(run))
        return best

    def _measure(n_reps: int) -> tuple[float, float]:
        public_s = _best(lambda: engine.evaluate_many(corpus), n_reps)
        impl_s = _best(lambda: engine._evaluate_many_impl(corpus), n_reps)
        return public_s, impl_s

    obs.reset()  # telemetry must be off for the gated measurement
    public_s, impl_s = _measure(reps)
    pct = (public_s - impl_s) / impl_s * 100.0 if impl_s else 0.0
    gated = n >= OBS_OVERHEAD_MIN_ACTIONS
    if gated and pct >= OBS_OVERHEAD_CEILING_PCT:
        public_s, impl_s = _measure(2 * reps)
        pct = (public_s - impl_s) / impl_s * 100.0 if impl_s else 0.0

    obs.enable(obs.TraceCollector())
    try:
        enabled_s = _best(lambda: engine.evaluate_many(corpus), reps)
    finally:
        obs.reset()
    enabled_pct = (
        (enabled_s - impl_s) / impl_s * 100.0 if impl_s else 0.0
    )

    return {
        "actions": n,
        "hot_impl_s": impl_s,
        "hot_public_s": public_s,
        "obs_overhead_pct": pct,
        "enabled_overhead_pct": enabled_pct,
        "ceiling_pct": OBS_OVERHEAD_CEILING_PCT,
        "gated": gated,
        "ok": (not gated) or pct < OBS_OVERHEAD_CEILING_PCT,
    }


def run_bench(
    quick: bool = False,
    seed: int = 99,
    corpus_size: int | None = None,
    out: str | Path = "BENCH_engine.json",
) -> tuple[dict, bool]:
    """Run every engine benchmark and write ``BENCH_engine.json``.

    Args:
        quick: Shrink the corpus and the chaos sweep for CI smoke runs.
        seed: Corpus seed (the default matches the golden-file corpus).
        corpus_size: Override the corpus size entirely.
        out: Where to write the JSON report.

    Returns:
        ``(report, ok)`` — ``ok`` is ``False`` when the differential gate
        found a cached/fresh mismatch, Table 1 agreement broke, or the
        chaos sweep failed an invariant.
    """
    n = corpus_size if corpus_size is not None else (
        QUICK_CORPUS_SIZE if quick else CORPUS_SIZE
    )
    if n < 1:
        raise ValueError(f"benchmark corpus size must be >= 1: {n}")
    corpus = action_corpus(n, seed=seed)

    report = {
        "meta": {
            "quick": quick,
            "seed": seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "corpus": _bench_corpus(corpus),
        "latency": _bench_latency(corpus),
    }
    if (
        len(corpus) >= COLD_FLOOR_MIN_ACTIONS
        and report["corpus"]["speedup_cold"] < COLD_SPEEDUP_FLOOR
    ):
        # The floor compares two nearly equal times, so one noisy
        # scheduling burst can push the ratio under it spuriously.
        # Re-measure once with doubled repetitions before believing it:
        # a real miss-path regression fails both measurements.
        report["corpus"] = _bench_corpus(
            corpus, reps=2 * CORPUS_TIMING_REPS
        )
    report |= {
        "table1": _bench_table1(reps=20 if quick else 100),
        "chaos": _bench_chaos(seed=seed, n_plans=2 if quick else 5),
        "differential": _differential(corpus),
        "obs_overhead": _bench_obs_overhead(corpus),
    }
    report["cold_floor"] = _cold_floor(report["corpus"])
    ok = (
        report["differential"]["ok"]
        and report["table1"]["agreement_ok"]
        and report["chaos"]["ok"]
        and report["cold_floor"]["ok"]
        and report["obs_overhead"]["ok"]
    )
    report["ok"] = ok

    path = Path(out)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report, ok


def render_report(report: dict) -> str:
    """Human-readable summary of a benchmark report."""
    corpus = report["corpus"]
    latency = report["latency"]
    lines = [
        f"corpus: {corpus['actions']} actions "
        f"({corpus['unique_fingerprints']} unique fingerprints)",
        f"  uncached loop     "
        f"{corpus['uncached_loop']['actions_per_second']:10.0f} actions/s",
        f"  cached batch cold "
        f"{corpus['cached_batch_cold']['actions_per_second']:10.0f} actions/s"
        f"  (hit rate {corpus['cached_batch_cold']['cache']['hit_rate']:.1%})",
        f"  cached batch hot  "
        f"{corpus['cached_batch_hot']['actions_per_second']:10.0f} actions/s"
        f"  (hit rate {corpus['cached_batch_hot']['cache']['hit_rate']:.1%})",
        f"  speedup (hot vs uncached): {corpus['speedup_hot']:.1f}x",
        f"  speedup (cold vs uncached): {corpus['speedup_cold']:.2f}x"
        f"  (floor {report['cold_floor']['floor']:.2f}, "
        + (
            ("ok" if report["cold_floor"]["ok"] else "FAIL")
            if report["cold_floor"]["gated"]
            else "not gated at this corpus size"
        )
        + ")",
        f"latency: uncached p50={latency['uncached']['p50_us']:.1f}us "
        f"p99={latency['uncached']['p99_us']:.1f}us; "
        f"cache-hot p50={latency['cached_hot']['p50_us']:.1f}us "
        f"p99={latency['cached_hot']['p99_us']:.1f}us",
        f"table1: {report['table1']['rulings_per_second']:.0f} rulings/s, "
        f"agreement {report['table1']['agreement']}",
        f"chaos: {report['chaos']['plans']} plans in "
        f"{report['chaos']['seconds']:.2f}s "
        f"({report['chaos']['workers']} workers), "
        f"{'ok' if report['chaos']['ok'] else 'FAIL'}",
        f"differential: {report['differential']['actions']} actions, "
        f"{report['differential']['mismatches']} mismatches, "
        f"second-pass hit rate "
        f"{report['differential']['second_pass_hit_rate']:.1%}",
        f"obs overhead (disabled): "
        f"{report['obs_overhead']['obs_overhead_pct']:.2f}% "
        f"(ceiling {report['obs_overhead']['ceiling_pct']:.1f}%, "
        + (
            ("ok" if report["obs_overhead"]["ok"] else "FAIL")
            if report["obs_overhead"]["gated"]
            else "not gated at this corpus size"
        )
        + f"; enabled "
        f"{report['obs_overhead']['enabled_overhead_pct']:.2f}%)",
        f"overall: {'ok' if report['ok'] else 'FAIL'}",
    ]
    return "\n".join(lines)
