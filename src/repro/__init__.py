"""repro — compliance-aware digital forensics framework.

A full reproduction of *When Digital Forensic Research Meets Laws*
(Huang, Ling, Xiang, Wang & Fu, ICDCS 2012 Workshops) as a working Python
system:

* :mod:`repro.core` — the paper's legal framework as an executable
  compliance engine (Fourth Amendment, Wiretap Act, SCA, Pen/Trap statute,
  the Katz privacy test, and all of section III.B's exceptions), the
  twenty Table 1 scenes, and the Section IV research advisor.
* :mod:`repro.netsim` — discrete-event network simulator with layered
  packets, ISPs, wireless media, and capability-typed sniffers.
* :mod:`repro.anonymity` — Tor-like onion circuits, an Anonymizer-like
  proxy, and a OneSwarm-like anonymous P2P overlay.
* :mod:`repro.techniques` — the investigative techniques the paper
  analyzes: the timing attack (IV.A), the long-PN-code DSSS flow
  watermark (IV.B), baselines, hash search, and data mining.
* :mod:`repro.storage` — block devices, a recoverable filesystem, and an
  SCA-aware mail store.
* :mod:`repro.evidence` / :mod:`repro.court` / :mod:`repro.investigation`
  — chain of custody, magistrates, suppression hearings, and end-to-end
  investigation pipelines.
"""

__version__ = "1.0.0"
