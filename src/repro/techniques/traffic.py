"""Background traffic generators for the anonymity-network experiments.

The watermark detector must pick its target out of a population of
ordinary flows; these generators create that population.  All generators
schedule ``send_downstream`` calls on a circuit (or any object exposing
that method) against the shared simulator.
"""

from __future__ import annotations

import random
from typing import Protocol


class DownstreamSender(Protocol):
    """Anything that can inject one downstream cell now."""

    sim: object

    def send_downstream(self, size: int = 512) -> None:  # pragma: no cover
        ...


class PoissonFlow:
    """A memoryless flow at a constant mean rate.

    Args:
        rate: Mean packets per second.
        seed: RNG seed for inter-arrival draws.
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        self.rate = rate
        self._rng = random.Random(seed)

    def schedule(
        self, channel, start: float, duration: float, size: int = 512
    ) -> int:
        """Schedule the flow's packets on a channel.

        Args:
            channel: Circuit/session exposing ``send_downstream`` and ``sim``.
            start: Simulation time the flow begins.
            duration: Flow length in seconds.
            size: Cell size.

        Returns:
            The number of packets scheduled.
        """
        sim = channel.sim
        count = 0
        t = start + self._rng.expovariate(self.rate)
        while t < start + duration:
            sim.schedule_at(t, lambda: channel.send_downstream(size))
            count += 1
            t += self._rng.expovariate(self.rate)
        return count


class OnOffFlow:
    """A bursty flow alternating ON (Poisson at ``rate``) and OFF periods.

    Bursty cross-traffic is the hard case for naive flow correlation:
    natural rate variation creates spurious correlations between unrelated
    flows, which is why the deliberate PN modulation wins.
    """

    def __init__(
        self,
        rate: float,
        mean_on: float = 2.0,
        mean_off: float = 1.0,
        seed: int = 0,
    ) -> None:
        if rate <= 0 or mean_on <= 0 or mean_off <= 0:
            raise ValueError("rate and period means must be positive")
        self.rate = rate
        self.mean_on = mean_on
        self.mean_off = mean_off
        self._rng = random.Random(seed)

    def schedule(
        self, channel, start: float, duration: float, size: int = 512
    ) -> int:
        """Schedule the bursty flow's packets; see :meth:`PoissonFlow.schedule`."""
        sim = channel.sim
        count = 0
        t = start
        end = start + duration
        on = True
        while t < end:
            period = self._rng.expovariate(
                1.0 / (self.mean_on if on else self.mean_off)
            )
            period_end = min(t + period, end)
            if on:
                next_packet = t + self._rng.expovariate(self.rate)
                while next_packet < period_end:
                    sim.schedule_at(
                        next_packet, lambda: channel.send_downstream(size)
                    )
                    count += 1
                    next_packet += self._rng.expovariate(self.rate)
            t = period_end
            on = not on
        return count
