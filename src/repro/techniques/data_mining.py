"""Pattern mining over a lawfully held database (Table 1 scene 19).

Per *State v. Sloane*, analyzing data the government already lawfully
possesses for hidden patterns is not a fresh search — so this technique's
declared action needs no process.  The miner itself is a small but real
analysis kit: frequency tables, pairwise co-occurrence, and predicate
flagging over records.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections import Counter
from collections.abc import Callable, Mapping, Sequence

from repro.core.action import DoctrineFacts, InvestigativeAction
from repro.core.context import EnvironmentContext
from repro.core.enums import Actor, DataKind, Place, Timing
from repro.techniques.base import Technique

Record = Mapping[str, object]


@dataclasses.dataclass(frozen=True)
class CoOccurrence:
    """Two field values appearing together in records."""

    field_a: str
    value_a: object
    field_b: str
    value_b: object
    count: int


@dataclasses.dataclass(frozen=True)
class MiningReport:
    """Outcome of mining one database."""

    n_records: int
    frequencies: dict[str, dict[object, int]]
    top_cooccurrences: tuple[CoOccurrence, ...]
    flagged: tuple[int, ...]  # indices of records matching the predicate


class DataMiningTechnique(Technique):
    """Frequency / co-occurrence / predicate mining over records."""

    name = "pattern mining over a lawfully obtained database"

    def __init__(
        self,
        fields: Sequence[str],
        flag_predicate: Callable[[Record], bool] | None = None,
        top_k: int = 10,
    ) -> None:
        if not fields:
            raise ValueError("at least one field to mine is required")
        self.fields = list(fields)
        self.flag_predicate = flag_predicate
        self.top_k = top_k

    def run(self, records: Sequence[Record]) -> MiningReport:
        """Mine the records.

        Returns:
            Frequencies per mined field, the strongest pairwise
            co-occurrences, and indices of predicate-flagged records.
        """
        frequencies: dict[str, Counter] = {
            field: Counter() for field in self.fields
        }
        for record in records:
            for field in self.fields:
                if field in record:
                    frequencies[field][record[field]] += 1

        pair_counts: Counter = Counter()
        for record in records:
            present = [
                (field, record[field])
                for field in self.fields
                if field in record
            ]
            for (fa, va), (fb, vb) in itertools.combinations(present, 2):
                pair_counts[(fa, va, fb, vb)] += 1
        top = tuple(
            CoOccurrence(
                field_a=fa, value_a=va, field_b=fb, value_b=vb, count=count
            )
            for (fa, va, fb, vb), count in pair_counts.most_common(self.top_k)
        )

        flagged: tuple[int, ...] = ()
        if self.flag_predicate is not None:
            flagged = tuple(
                index
                for index, record in enumerate(records)
                if self.flag_predicate(record)
            )

        return MiningReport(
            n_records=len(records),
            frequencies={
                field: dict(counter)
                for field, counter in frequencies.items()
            },
            top_cooccurrences=top,
            flagged=flagged,
        )

    def required_actions(self) -> list[InvestigativeAction]:
        return [
            InvestigativeAction(
                description=(
                    "mine a database already in lawful government custody "
                    "for hidden patterns"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.CONTENT,
                timing=Timing.STORED,
                context=EnvironmentContext(place=Place.GOVERNMENT_CUSTODY),
                doctrine=DoctrineFacts(mining_of_lawful_data=True),
            )
        ]
