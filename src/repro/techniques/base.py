"""The technique interface: what a forensic technique must declare.

The paper's central message is that a technique is only useful to law
enforcement if the *acquisitions it performs* are legal under some
obtainable process.  Every technique in this package therefore declares
its acquisitions as :class:`~repro.core.action.InvestigativeAction` values
so the :class:`~repro.core.advisor.ResearchAdvisor` can classify it before
it ever runs.
"""

from __future__ import annotations

import abc

from repro.core.action import InvestigativeAction
from repro.core.advisor import ResearchAdvisor, TechniqueAssessment
from repro.core.engine import ComplianceEngine
from repro.core.enums import ProcessKind


class Technique(abc.ABC):
    """Base class for investigative techniques."""

    #: Human-readable technique name; subclasses override.
    name: str = "unnamed technique"

    @abc.abstractmethod
    def required_actions(self) -> list[InvestigativeAction]:
        """Every acquisition the technique performs, engine-ready."""

    def assess(
        self, advisor: ResearchAdvisor | None = None
    ) -> TechniqueAssessment:
        """Classify this technique's legal feasibility (paper section IV)."""
        advisor = advisor or ResearchAdvisor()
        return advisor.assess(self.name, self.required_actions())

    def required_process(
        self, engine: ComplianceEngine | None = None
    ) -> ProcessKind:
        """The strongest process any of this technique's actions needs.

        A technique that declares no acquisitions touches nothing and
        therefore needs no process at all.
        """
        engine = engine or ComplianceEngine()
        return max(
            (
                engine.evaluate(action).required_process
                for action in self.required_actions()
            ),
            default=ProcessKind.NONE,
        )
