"""Warrant-scoped searching (paper section III.A.2(a)).

"A good technique can identify records that only relate to a particular
crime" — this module is that technique: it walks a body of records (or a
filesystem), classifies each against the warrant's scope, seizes only what
the warrant (or plain view) authorizes, and reports the locations that
would need further warrants.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.core.action import InvestigativeAction
from repro.core.context import EnvironmentContext
from repro.core.enums import Actor, DataKind, Place, Timing
from repro.core.scope import (
    ExaminedRecord,
    ScopeDecision,
    WarrantScope,
    classify_record,
    locations_requiring_new_warrants,
)
from repro.storage.filesystem import SimpleFilesystem
from repro.techniques.base import Technique

#: Categorizer: maps (file name, contents) to an ExaminedRecord.
Categorizer = Callable[[str, bytes], ExaminedRecord]


@dataclasses.dataclass(frozen=True)
class ScopedSearchReport:
    """Outcome of one warrant-scoped search.

    Attributes:
        seized_in_scope: Records seized under the warrant itself.
        seized_plain_view: Out-of-category records seized under plain
            view (each should ground a fresh warrant for the new crime).
        left_untouched: Records the search may not seize.
        locations_needing_warrants: Data locations touched that the
            warrant does not reach.
    """

    seized_in_scope: tuple[ExaminedRecord, ...]
    seized_plain_view: tuple[ExaminedRecord, ...]
    left_untouched: tuple[ExaminedRecord, ...]
    locations_needing_warrants: frozenset[str]

    @property
    def total_examined(self) -> int:
        """How many records the search classified."""
        return (
            len(self.seized_in_scope)
            + len(self.seized_plain_view)
            + len(self.left_untouched)
        )

    @property
    def over_seizure_count(self) -> int:
        """Records an unscoped tool would have seized but this one left."""
        return len(self.left_untouched)


class ScopedSearchTechnique(Technique):
    """A search tool that respects warrant particularity."""

    name = "warrant-scoped record search"

    def __init__(self, scope: WarrantScope) -> None:
        self.scope = scope

    def run(self, records: list[ExaminedRecord]) -> ScopedSearchReport:
        """Classify and (virtually) seize records against the scope."""
        in_scope: list[ExaminedRecord] = []
        plain_view: list[ExaminedRecord] = []
        untouched: list[ExaminedRecord] = []
        for record in records:
            decision = classify_record(self.scope, record)
            if decision is ScopeDecision.IN_SCOPE:
                in_scope.append(record)
            elif decision is ScopeDecision.PLAIN_VIEW:
                plain_view.append(record)
            else:
                untouched.append(record)
        return ScopedSearchReport(
            seized_in_scope=tuple(in_scope),
            seized_plain_view=tuple(plain_view),
            left_untouched=tuple(untouched),
            locations_needing_warrants=locations_requiring_new_warrants(
                self.scope, records
            ),
        )

    def run_on_filesystem(
        self,
        filesystem: SimpleFilesystem,
        categorizer: Categorizer,
        location: str | None = None,
        include_deleted: bool = True,
    ) -> ScopedSearchReport:
        """Run against a filesystem, categorizing each file.

        Args:
            filesystem: The (imaged) filesystem to search.
            categorizer: Assigns each file a category / location /
                plain-view flag.
            location: Overrides every record's location (e.g. the seized
                machine's place); ``None`` keeps the categorizer's.
            include_deleted: Also classify recoverable deleted files.
        """
        records = []
        contents = filesystem.all_contents(include_deleted=include_deleted)
        for name, data in sorted(contents.items()):
            record = categorizer(name, data)
            if location is not None:
                record = dataclasses.replace(record, location=location)
            records.append(record)
        return self.run(records)

    def required_actions(self) -> list[InvestigativeAction]:
        return [
            InvestigativeAction(
                description=(
                    f"search {self.scope.place} for "
                    f"{', '.join(sorted(self.scope.categories))} records "
                    f"related to {self.scope.crime}"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.CONTENT,
                timing=Timing.STORED,
                context=EnvironmentContext(place=Place.SUSPECT_PREMISES),
            )
        ]
