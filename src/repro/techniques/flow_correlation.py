"""Baseline flow-correlation attack (the comparator for section IV.B).

The passive alternative to the DSSS watermark: bin the server-side and
candidate client-side packet streams into windows and compute the Pearson
correlation of their counts over a delay search.  With smooth (Poisson)
traffic there is little natural rate structure to correlate, and with
bursty cross-traffic unrelated flows correlate spuriously — which is
exactly why the paper calls the active watermark "more effective than
other methods".
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.action import InvestigativeAction
from repro.core.context import EnvironmentContext
from repro.core.enums import Actor, DataKind, Place, Timing
from repro.signal import batched_pearson, binned_count_matrix, offset_grid
from repro.techniques.base import Technique


@dataclasses.dataclass(frozen=True)
class CorrelationResult:
    """Outcome of correlating one candidate against the reference flow.

    Attributes:
        correlation: Best Pearson correlation over the offset search.
        best_offset: The delay offset that maximized correlation.
        n_reference: Reference arrivals observed.
        n_candidate: Candidate arrivals observed.
        confidence: Sample-support score in [0, 1]: 0 when either series
            is empty, otherwise the thinner series' mean packets-per-
            window capped at 1 — degraded taps lower confidence rather
            than raising.
    """

    correlation: float
    best_offset: float
    n_reference: int
    n_candidate: int
    confidence: float = 1.0


def binned_counts(
    timestamps: list[float], start: float, duration: float, window: float
) -> np.ndarray:
    """Bin timestamps into fixed windows over ``[start, start+duration)``."""
    if window <= 0:
        raise ValueError("window must be positive")
    n_bins = max(1, int(round(duration / window)))
    edges = start + np.arange(n_bins + 1) * window
    counts, _ = np.histogram(np.asarray(timestamps), bins=edges)
    return counts.astype(float)


def pearson(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation, 0.0 when either series is constant."""
    if a.size != b.size:
        raise ValueError(f"length mismatch: {a.size} vs {b.size}")
    a_centered = a - a.mean()
    b_centered = b - b.mean()
    norm = np.linalg.norm(a_centered) * np.linalg.norm(b_centered)
    if norm == 0:
        return 0.0
    return float(np.dot(a_centered, b_centered) / norm)


class PacketCountingCorrelator(Technique):
    """Passive packet-count correlation between two observation points.

    Args:
        window: Counting window in seconds.
        max_offset: Largest network delay searched.
        offset_step: Offset search granularity.
        threshold: Correlation needed to declare a match.
    """

    name = "passive packet-count flow correlation"

    def __init__(
        self,
        window: float = 0.5,
        max_offset: float = 1.0,
        offset_step: float = 0.05,
        threshold: float = 0.5,
    ) -> None:
        if window <= 0 or offset_step <= 0:
            raise ValueError("window and offset_step must be positive")
        if max_offset < 0:
            raise ValueError(f"max_offset must be non-negative: {max_offset}")
        self.window = window
        self.max_offset = max_offset
        self.offset_step = offset_step
        self.threshold = threshold

    def correlate(
        self,
        reference_times: list[float],
        candidate_times: list[float],
        start: float,
        duration: float,
    ) -> CorrelationResult:
        """Correlate a candidate's arrivals against the reference flow.

        The reference series is binned once from ``start``; the candidate
        series is binned at every trial offset in one pass through the
        vectorized :func:`repro.signal.binned_count_matrix` kernel, and
        :func:`repro.signal.batched_pearson` scores the whole offset axis
        at once (first maximum wins, as in the scalar sweep — kept as
        :func:`_reference_correlate`).  An empty series on either side
        returns a zero-correlation, zero-confidence result instead of
        raising.
        """
        reference = binned_counts(reference_times, start, duration, self.window)
        n_bins = reference.size
        if not reference_times or not candidate_times:
            return CorrelationResult(
                correlation=0.0,
                best_offset=0.0,
                n_reference=len(reference_times),
                n_candidate=len(candidate_times),
                confidence=0.0,
            )
        offsets = offset_grid(self.max_offset, self.offset_step)
        candidates = binned_count_matrix(
            candidate_times, start, offsets, n_bins, self.window
        )
        correlations = batched_pearson(candidates, reference)
        best_index = int(np.argmax(correlations))
        best_corr = float(correlations[best_index])
        best_offset = float(offsets[best_index])
        support = min(len(reference_times), len(candidate_times)) / n_bins
        return CorrelationResult(
            correlation=best_corr,
            best_offset=best_offset,
            n_reference=len(reference_times),
            n_candidate=len(candidate_times),
            confidence=min(1.0, support),
        )

    def matches(self, result: CorrelationResult) -> bool:
        """Whether the correlation clears the decision threshold."""
        return result.correlation >= self.threshold

    def required_actions(self) -> list[InvestigativeAction]:
        observe_server = InvestigativeAction(
            description="record packet timing at the server-side tap",
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.NON_CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(place=Place.TRANSMISSION_PATH),
        )
        observe_client = InvestigativeAction(
            description="record packet timing at the suspect's ISP",
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.NON_CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(place=Place.TRANSMISSION_PATH),
        )
        return [observe_server, observe_client]


def _reference_correlate(
    correlator: PacketCountingCorrelator,
    reference_times: list[float],
    candidate_times: list[float],
    start: float,
    duration: float,
) -> CorrelationResult:
    """The original scalar offset sweep, kept for differential tests.

    One fresh histogram and one Pearson call per trial offset; production
    correlation batches the whole offset axis through the vectorized
    kernels.
    """
    reference = binned_counts(
        reference_times, start, duration, correlator.window
    )
    n_bins = reference.size
    if not reference_times or not candidate_times:
        return CorrelationResult(
            correlation=0.0,
            best_offset=0.0,
            n_reference=len(reference_times),
            n_candidate=len(candidate_times),
            confidence=0.0,
        )
    best_corr = float("-inf")
    best_offset = 0.0
    offset = 0.0
    while offset <= correlator.max_offset:
        candidate = binned_counts(
            candidate_times, start + offset, duration, correlator.window
        )
        corr = pearson(reference, candidate)
        if corr > best_corr:
            best_corr = corr
            best_offset = offset
        offset += correlator.offset_step
    support = min(len(reference_times), len(candidate_times)) / n_bins
    return CorrelationResult(
        correlation=best_corr,
        best_offset=best_offset,
        n_reference=len(reference_times),
        n_candidate=len(candidate_times),
        confidence=min(1.0, support),
    )
