"""The adversary's watermark-visibility test.

The flip side of active watermarking: a sophisticated anonymity-network
operator (or the watermarked party) can test their own flows for rate
modulation.  The classic detector is an autocorrelation periodicity test
on the flow's rate series — periodic watermarks (square waves) light up
at their period's lag, while a long-PN-code DSSS watermark is spread flat
across lags and stays under the noise floor.  This asymmetry is the
technical reason the paper's cited attack [93] uses a *long PN code*.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.signal import autocorrelation_spectrum


@dataclasses.dataclass(frozen=True)
class VisibilityResult:
    """Outcome of the adversary's periodicity test.

    Attributes:
        statistic: Maximum absolute autocorrelation over the tested lags,
            in null standard deviations (``sqrt(n)``-normalized).
        threshold: Decision threshold in the same units.
        watermark_suspected: Whether the adversary flags the flow.
        peak_lag: The lag (in windows) of the strongest autocorrelation.
    """

    statistic: float
    threshold: float
    watermark_suspected: bool
    peak_lag: int


class AutocorrelationVisibilityTest:
    """Flags flows whose rate series shows periodic structure.

    Args:
        window: Rate-sampling window in seconds.  Should be comparable to
            (or smaller than) the modulation granularity being hunted.
        max_lag: Largest lag, in windows, to test.
        threshold_sigmas: Decision threshold; under the white-noise null
            each normalized autocorrelation is ~N(0, 1).
    """

    def __init__(
        self,
        window: float = 0.5,
        max_lag: int = 64,
        threshold_sigmas: float = 4.0,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if max_lag < 1:
            raise ValueError("max_lag must be >= 1")
        self.window = window
        self.max_lag = max_lag
        self.threshold_sigmas = threshold_sigmas

    def rate_series(
        self, arrival_times: list[float], start: float, duration: float
    ) -> np.ndarray:
        """Bin arrivals into the windowed rate series."""
        n_bins = max(1, int(round(duration / self.window)))
        edges = start + np.arange(n_bins + 1) * self.window
        counts, __ = np.histogram(np.asarray(arrival_times), bins=edges)
        return counts.astype(float)

    def test(
        self, arrival_times: list[float], start: float, duration: float
    ) -> VisibilityResult:
        """Run the periodicity test on one flow.

        Every lag is scanned at once through the FFT-based
        :func:`repro.signal.autocorrelation_spectrum` kernel; the scalar
        per-lag loop survives as :func:`_reference_test` for the
        differential tests.
        """
        series = self.rate_series(arrival_times, start, duration)
        centered = series - series.mean()
        denominator = float(np.dot(centered, centered))
        n = centered.size
        if denominator == 0 or n < 4:
            return VisibilityResult(
                statistic=0.0,
                threshold=self.threshold_sigmas,
                watermark_suspected=False,
                peak_lag=0,
            )
        max_lag = min(self.max_lag, n - 2)
        autocorrelations = autocorrelation_spectrum(series, max_lag)
        # Normalized: under the null, each autocorrelation is ~N(0, 1/n).
        statistics = np.abs(autocorrelations) * np.sqrt(n)
        best_index = int(np.argmax(statistics))
        best_stat = float(statistics[best_index])
        best_lag = best_index + 1 if best_stat > 0 else 0
        return VisibilityResult(
            statistic=best_stat,
            threshold=self.threshold_sigmas,
            watermark_suspected=best_stat >= self.threshold_sigmas,
            peak_lag=best_lag,
        )


def _reference_test(
    tester: AutocorrelationVisibilityTest,
    arrival_times: list[float],
    start: float,
    duration: float,
) -> VisibilityResult:
    """The original per-lag scalar scan, kept for differential tests.

    One overlap dot product per lag — O(max_lag x n) against the FFT
    path's O(n log n).
    """
    series = tester.rate_series(arrival_times, start, duration)
    centered = series - series.mean()
    denominator = float(np.dot(centered, centered))
    n = centered.size
    if denominator == 0 or n < 4:
        return VisibilityResult(
            statistic=0.0,
            threshold=tester.threshold_sigmas,
            watermark_suspected=False,
            peak_lag=0,
        )
    best_stat = 0.0
    best_lag = 0
    max_lag = min(tester.max_lag, n - 2)
    for lag in range(1, max_lag + 1):
        ac = float(np.dot(centered[:-lag], centered[lag:]) / denominator)
        # Normalized: under the null, ac ~ N(0, 1/n).
        stat = abs(ac) * np.sqrt(n)
        if stat > best_stat:
            best_stat = stat
            best_lag = lag
    return VisibilityResult(
        statistic=best_stat,
        threshold=tester.threshold_sigmas,
        watermark_suspected=best_stat >= tester.threshold_sigmas,
        peak_lag=best_lag,
    )
