"""Long-PN-code DSSS flow watermarking (paper section IV.B, ref [93]).

The technique the paper analyzes from Huang, Pan, Fu & Wang (INFOCOM
2011): law enforcement, controlling the server side of a suspect flow
(e.g. a seized web server), *slightly modulates the flow's traffic rate*
with a long pseudo-noise (PN) spreading code.  At the other side of the
anonymity network it observes only packet *arrival rates* at a candidate
subscriber's ISP — non-content data, so "they do not need a wiretap
warrant" — and despreads with the same PN code.  A high correlation means
the candidate is receiving the watermarked flow.

Implementation notes:

* PN codes are maximal-length LFSR sequences (m-sequences) mapped to
  ±1 chips, the classic DSSS spreading codes with two-valued
  autocorrelation (L at zero lag, -1 elsewhere);
* embedding multiplies the base rate by ``(1 + amplitude * chip)`` per
  chip interval, packets drawn as a Poisson process;
* detection bins arrivals into chip-sized windows, centres the counts,
  and computes the normalized (Pearson) correlation with the code; a
  small offset search absorbs the unknown network delay;
* the detection threshold is set from the null distribution: for an
  unwatermarked flow the correlation is approximately
  ``N(0, 1/L)``, so ``threshold = z / sqrt(L)`` gives a constant false
  alarm rate per candidate.
"""

from __future__ import annotations

import dataclasses
import random

import numpy as np

from repro.core.action import (
    ConsentFacts,
    DoctrineFacts,
    InvestigativeAction,
)
from repro.core.context import EnvironmentContext
from repro.core.enums import Actor, ConsentScope, DataKind, Place, Timing
from repro.signal import (
    batched_code_correlation,
    binned_count_matrix,
    offset_grid,
)
from repro.techniques.base import Technique

#: Primitive feedback taps (one-indexed bit positions) for maximal-length
#: LFSRs, keyed by register length.  Length-n taps give a PN period 2^n-1.
_PRIMITIVE_TAPS: dict[int, tuple[int, ...]] = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
}


class PnCode:
    """A ±1 pseudo-noise spreading code.

    Use :meth:`msequence` for classic LFSR m-sequences (lengths
    ``2**n - 1``) or :meth:`random_code` for arbitrary lengths.
    """

    def __init__(self, chips: np.ndarray) -> None:
        chips = np.asarray(chips, dtype=float)
        if chips.ndim != 1 or chips.size == 0:
            raise ValueError("chips must be a non-empty 1-D array")
        if not np.all(np.isin(chips, (-1.0, 1.0))):
            raise ValueError("chips must be +/-1")
        self.chips = chips

    @classmethod
    def msequence(cls, register_length: int, seed_state: int = 1) -> "PnCode":
        """Generate a maximal-length sequence of period ``2**n - 1``.

        Args:
            register_length: LFSR register length ``n`` (3..12 supported,
                giving code lengths 7..4095).
            seed_state: Non-zero initial register state (rotates the code
                phase).

        Raises:
            ValueError: For unsupported register lengths or a zero seed.
        """
        taps = _PRIMITIVE_TAPS.get(register_length)
        if taps is None:
            supported = sorted(_PRIMITIVE_TAPS)
            raise ValueError(
                f"register length {register_length} unsupported; "
                f"choose from {supported}"
            )
        mask = (1 << register_length) - 1
        state = seed_state & mask
        if state == 0:
            raise ValueError("LFSR seed state must be non-zero")
        length = (1 << register_length) - 1
        bits = np.empty(length, dtype=float)
        for i in range(length):
            # Fibonacci form, shifting left: output the register MSB and
            # feed back the XOR of the tap bits into the LSB.
            bits[i] = (state >> (register_length - 1)) & 1
            feedback = 0
            for tap in taps:
                feedback ^= (state >> (tap - 1)) & 1
            state = ((state << 1) | feedback) & mask
        return cls(2.0 * bits - 1.0)

    @classmethod
    def random_code(cls, length: int, seed: int = 0) -> "PnCode":
        """A random ±1 code of arbitrary length (for ablations)."""
        if length <= 0:
            raise ValueError("length must be positive")
        rng = np.random.default_rng(seed)
        return cls(rng.choice((-1.0, 1.0), size=length))

    def __len__(self) -> int:
        return int(self.chips.size)

    @property
    def balance(self) -> int:
        """Sum of chips; an m-sequence is balanced to exactly +/-1."""
        return int(self.chips.sum())

    def autocorrelation(self, shift: int) -> float:
        """Circular autocorrelation at a chip shift (unnormalized)."""
        return float(np.dot(self.chips, np.roll(self.chips, shift)))


@dataclasses.dataclass(frozen=True)
class WatermarkConfig:
    """Parameters of the embedding/detection scheme.

    Attributes:
        chip_duration: Seconds per chip interval.
        base_rate: Mean packets/second of the carrier flow.
        amplitude: Fractional rate modulation depth (the paper requires it
            to be *slight*; 0.2-0.4 is realistic).
        threshold_sigmas: Detection threshold in null-std units; the null
            correlation std is ``1/sqrt(L)``.
    """

    chip_duration: float = 0.5
    base_rate: float = 20.0
    amplitude: float = 0.3
    threshold_sigmas: float = 4.0

    def __post_init__(self) -> None:
        if self.chip_duration <= 0:
            raise ValueError("chip_duration must be positive")
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if not 0 < self.amplitude < 1:
            raise ValueError("amplitude must be in (0, 1)")

    def threshold(self, code_length: int) -> float:
        """The CFAR detection threshold for a given code length."""
        return self.threshold_sigmas / np.sqrt(code_length)


class FlowWatermarker:
    """Embeds a PN watermark into a flow's downstream rate.

    The watermarker controls the *sending* side (the seized server of the
    paper's situation one, or a campus gateway in situation two); it
    schedules the flow's packets so the rate in chip ``j`` is
    ``base_rate * (1 + amplitude * chip_j)``.
    """

    def __init__(self, code: PnCode, config: WatermarkConfig, seed: int = 0) -> None:
        self.code = code
        self.config = config
        self._rng = random.Random(seed)

    @property
    def duration(self) -> float:
        """Total embedding time: one chip interval per chip."""
        return len(self.code) * self.config.chip_duration

    def embed(self, channel, start: float, size: int = 512) -> int:
        """Schedule the watermarked flow on a channel.

        Args:
            channel: A circuit/session exposing ``send_downstream`` and
                ``sim``.
            start: Simulation time embedding begins.
            size: Cell size.

        Returns:
            The number of packets scheduled.
        """
        config = self.config
        sim = channel.sim
        count = 0
        for j, chip in enumerate(self.code.chips):
            rate = config.base_rate * (1.0 + config.amplitude * chip)
            t = start + j * config.chip_duration
            chip_end = t + config.chip_duration
            t += self._rng.expovariate(rate)
            while t < chip_end:
                sim.schedule_at(t, lambda: channel.send_downstream(size))
                count += 1
                t += self._rng.expovariate(rate)
        return count


@dataclasses.dataclass(frozen=True)
class DetectionResult:
    """Outcome of despreading one candidate's arrival series.

    Attributes:
        correlation: Best normalized correlation over the offset search.
        threshold: The decision threshold used.
        detected: Whether ``correlation >= threshold``.
        best_offset: The delay offset (seconds) that maximized correlation.
        n_packets: Number of arrivals analyzed.
        confidence: How much of the expected signal support was actually
            observed, in [0, 1].  1.0 with no expectation given and a
            non-empty series; 0.0 for an empty series; otherwise
            ``min(1, observed/expected)``.  Degraded input (tap dropout,
            relay churn) lowers confidence instead of raising.
    """

    correlation: float
    threshold: float
    detected: bool
    best_offset: float
    n_packets: int
    confidence: float = 1.0


class WatermarkDetector:
    """Despreads candidate arrival series against the PN code.

    The detector sees only arrival timestamps (rates) — the non-content
    view a pen/trap order covers.
    """

    def __init__(self, code: PnCode, config: WatermarkConfig) -> None:
        self.code = code
        self.config = config

    def correlate(
        self, arrival_times: list[float], start: float, offset: float = 0.0
    ) -> float:
        """Normalized correlation at one candidate delay offset."""
        config = self.config
        length = len(self.code)
        t0 = start + offset
        edges = t0 + np.arange(length + 1) * config.chip_duration
        counts, _ = np.histogram(np.asarray(arrival_times), bins=edges)
        centered = counts - counts.mean()
        norm = np.linalg.norm(centered) * np.linalg.norm(self.code.chips)
        if norm == 0:
            return 0.0
        return float(np.dot(centered, self.code.chips) / norm)

    def detect(
        self,
        arrival_times: list[float],
        start: float,
        max_offset: float = 1.0,
        offset_step: float = 0.05,
        expected_packets: int | None = None,
    ) -> DetectionResult:
        """Search delay offsets and decide whether the watermark is present.

        The whole offset sweep runs through the vectorized signal kernels
        — one sort of the arrivals, one binned-count matrix over the
        offset grid, one batched despread — instead of re-binning per
        offset (the scalar original survives as
        :func:`_reference_detect` for the differential suite).

        Degraded input never raises: an empty series yields a clean
        non-detection at confidence 0, and a thinned series (dropout,
        churn) yields a result whose ``confidence`` reflects the missing
        support.

        Args:
            arrival_times: Candidate's observed packet arrival timestamps.
            start: The known embedding start time.
            max_offset: Largest network delay to search.
            offset_step: Offset search granularity (a fraction of the chip
                duration is appropriate).
            expected_packets: How many packets the embedder scheduled, if
                known; enables the confidence score.

        Returns:
            The best-offset :class:`DetectionResult`.

        Raises:
            ValueError: If ``offset_step`` is not positive or
                ``max_offset`` is negative (the scalar loop spun forever
                or silently scanned nothing).
        """
        offsets = offset_grid(max_offset, offset_step)
        threshold = self.config.threshold(len(self.code))
        if not arrival_times:
            return DetectionResult(
                correlation=0.0,
                threshold=threshold,
                detected=False,
                best_offset=0.0,
                n_packets=0,
                confidence=0.0,
            )
        counts = binned_count_matrix(
            arrival_times,
            start,
            offsets,
            len(self.code),
            self.config.chip_duration,
        )
        correlations = batched_code_correlation(counts, self.code.chips)
        best_index = int(np.argmax(correlations))
        best_corr = float(correlations[best_index])
        best_offset = float(offsets[best_index])
        confidence = 1.0
        if expected_packets is not None and expected_packets > 0:
            confidence = min(1.0, len(arrival_times) / expected_packets)
        return DetectionResult(
            correlation=best_corr,
            threshold=threshold,
            detected=best_corr >= threshold,
            best_offset=best_offset,
            n_packets=len(arrival_times),
            confidence=confidence,
        )


def _reference_detect(
    detector: WatermarkDetector,
    arrival_times: list[float],
    start: float,
    max_offset: float = 1.0,
    offset_step: float = 0.05,
    expected_packets: int | None = None,
) -> DetectionResult:
    """The original scalar offset sweep, kept for differential tests.

    One :meth:`WatermarkDetector.correlate` call (a fresh histogram) per
    trial offset — O(offsets x packets).  Production detection runs the
    vectorized kernels; the hypothesis equivalence suite and ``repro
    bench --techniques`` hold the two paths together within 1e-9.
    """
    threshold = detector.config.threshold(len(detector.code))
    if not arrival_times:
        return DetectionResult(
            correlation=0.0,
            threshold=threshold,
            detected=False,
            best_offset=0.0,
            n_packets=0,
            confidence=0.0,
        )
    best_corr = float("-inf")
    best_offset = 0.0
    offset = 0.0
    while offset <= max_offset:
        corr = detector.correlate(arrival_times, start, offset)
        if corr > best_corr:
            best_corr = corr
            best_offset = offset
        offset += offset_step
    confidence = 1.0
    if expected_packets is not None and expected_packets > 0:
        confidence = min(1.0, len(arrival_times) / expected_packets)
    return DetectionResult(
        correlation=best_corr,
        threshold=threshold,
        detected=best_corr >= threshold,
        best_offset=best_offset,
        n_packets=len(arrival_times),
        confidence=confidence,
    )


class DsssWatermarkTechnique(Technique):
    """The full technique, with its legal self-description.

    Two acquisitions (paper section IV.B, situation one):

    1. modulating the rate at the seized server — the server is under law
       enforcement control with the owner's consent/seizure authority, so
       no new process is needed;
    2. observing traffic *rates* (packet timestamps, not contents) at the
       suspect's ISP — real-time non-content collection at a provider,
       i.e. a pen/trap court order.

    The advisor therefore classifies the technique as *workable with
    process* (a court order, not a wiretap order), matching the paper.
    """

    name = "long-PN-code DSSS flow watermark"

    def __init__(
        self, code: PnCode | None = None, config: WatermarkConfig | None = None
    ) -> None:
        self.code = code or PnCode.msequence(7)
        self.config = config or WatermarkConfig()

    def watermarker(self, seed: int = 0) -> FlowWatermarker:
        """An embedder bound to this technique's code and config."""
        return FlowWatermarker(self.code, self.config, seed=seed)

    def detector(self) -> WatermarkDetector:
        """A detector bound to this technique's code and config."""
        return WatermarkDetector(self.code, self.config)

    def required_actions(self) -> list[InvestigativeAction]:
        modulate = InvestigativeAction(
            description=(
                "modulate outgoing traffic rate at the seized server "
                "hosting the contraband"
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.NON_CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(place=Place.CONSENTING_NETWORK),
            # The server is under law-enforcement control (seized, or its
            # operator cooperating); modulation happens on that box only.
            consent=ConsentFacts(scope=ConsentScope.NETWORK_OWNER),
            doctrine=DoctrineFacts(monitoring_own_network=True),
        )
        observe = InvestigativeAction(
            description=(
                "record packet arrival times (rates only, no contents) at "
                "the suspect's ISP"
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.NON_CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(place=Place.TRANSMISSION_PATH),
        )
        return [modulate, observe]
