"""Credentialed remote access after arrest (Table 1 scene 20).

The arrested defendant's username and password, lawfully obtained, are
used to retrieve the defendant's own data from a remote provider.  The
paper's authors judge this needs no further process (Table 1 row 20, their
own ``(*)`` call), which the declared action reflects via the
``credentials_lawfully_obtained`` doctrine flag.
"""

from __future__ import annotations

import dataclasses

from repro.core.action import DoctrineFacts, InvestigativeAction
from repro.core.context import EnvironmentContext
from repro.core.enums import Actor, DataKind, Place, Timing
from repro.netsim.isp import IspNode
from repro.techniques.base import Technique


@dataclasses.dataclass(frozen=True)
class Credential:
    """A username/password pair and how it was obtained."""

    username: str
    password: str
    lawfully_obtained: bool = True


@dataclasses.dataclass(frozen=True)
class RemoteAccessReport:
    """Outcome of a credentialed retrieval."""

    account: str
    items_retrieved: tuple[str, ...]


class CredentialedAccessTechnique(Technique):
    """Retrieve a defendant's remote data using their own credentials."""

    name = "post-arrest credentialed remote access"

    def __init__(self, credential: Credential) -> None:
        self.credential = credential

    def run(self, provider: IspNode, account: str) -> RemoteAccessReport:
        """Log in as the defendant and pull the account's stored items.

        The provider-side check is authentication only: with valid
        credentials the provider cannot distinguish this access from the
        defendant's own.

        Raises:
            PermissionError: If the username does not match the account.
        """
        if self.credential.username != account:
            raise PermissionError(
                f"credentials are for {self.credential.username!r}, "
                f"not {account!r}"
            )
        items = provider.authenticated_retrieval(account)
        return RemoteAccessReport(
            account=account,
            items_retrieved=tuple(item.content for item in items),
        )

    def required_actions(self) -> list[InvestigativeAction]:
        return [
            InvestigativeAction(
                description=(
                    "use the arrested defendant's username and password to "
                    "retrieve the defendant's data from a remote computer"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.CONTENT,
                timing=Timing.STORED,
                context=EnvironmentContext(
                    place=Place.THIRD_PARTY_PROVIDER,
                    provider_serves_public=True,
                ),
                doctrine=DoctrineFacts(
                    credentials_lawfully_obtained=(
                        self.credential.lawfully_obtained
                    )
                ),
            )
        ]
