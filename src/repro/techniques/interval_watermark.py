"""A square-wave (interval) flow watermark — the older comparator.

Before spread-spectrum watermarks, active traffic analysis used periodic
on/off rate modulation: raise the rate for half a period, lower it for the
other half, repeat.  It is easy to detect for the investigator — fold
arrivals modulo the period and compare the halves — but its strong
periodicity is exactly what an adversary's autocorrelation test finds
(see :mod:`repro.techniques.visibility`).  The paper's cited watermark
[93] uses a *long PN code* precisely to avoid that visibility.
"""

from __future__ import annotations

import dataclasses
import random

import numpy as np

from repro.core.action import InvestigativeAction
from repro.core.context import EnvironmentContext
from repro.core.enums import Actor, DataKind, Place, Timing
from repro.signal import fold_half_counts, offset_grid
from repro.techniques.base import Technique


@dataclasses.dataclass(frozen=True)
class SquareWaveConfig:
    """Parameters of the periodic watermark.

    Attributes:
        period: Full on/off cycle length in seconds.
        n_periods: Number of cycles embedded.
        base_rate: Carrier mean rate in packets/second.
        amplitude: Fractional modulation depth.
        threshold_sigmas: Investigator-side decision threshold, in null
            standard deviations.
    """

    period: float = 4.0
    n_periods: int = 16
    base_rate: float = 20.0
    amplitude: float = 0.3
    threshold_sigmas: float = 4.0

    def __post_init__(self) -> None:
        if self.period <= 0 or self.n_periods < 1:
            raise ValueError("period and n_periods must be positive")
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if not 0 < self.amplitude < 1:
            raise ValueError("amplitude must be in (0, 1)")

    @property
    def duration(self) -> float:
        """Total embedding time."""
        return self.period * self.n_periods


class SquareWaveWatermarker:
    """Embeds the periodic watermark on a downstream channel."""

    def __init__(self, config: SquareWaveConfig, seed: int = 0) -> None:
        self.config = config
        self._rng = random.Random(seed)

    def embed(self, channel, start: float, size: int = 512) -> int:
        """Schedule the modulated flow; returns the packet count."""
        config = self.config
        sim = channel.sim
        half = config.period / 2.0
        count = 0
        for cycle in range(config.n_periods):
            for half_index, sign in enumerate((1.0, -1.0)):
                rate = config.base_rate * (1.0 + config.amplitude * sign)
                t = start + cycle * config.period + half_index * half
                segment_end = t + half
                t += self._rng.expovariate(rate)
                while t < segment_end:
                    sim.schedule_at(t, lambda: channel.send_downstream(size))
                    count += 1
                    t += self._rng.expovariate(rate)
        return count


@dataclasses.dataclass(frozen=True)
class SquareWaveDetection:
    """Investigator-side detection outcome."""

    statistic: float
    threshold: float
    detected: bool
    n_packets: int


class SquareWaveDetector:
    """Folds arrivals modulo the period and compares the halves."""

    def __init__(self, config: SquareWaveConfig) -> None:
        self.config = config

    def detect(
        self,
        arrival_times: list[float],
        start: float,
        max_offset: float = 1.0,
        offset_step: float = 0.1,
    ) -> SquareWaveDetection:
        """Decide whether the periodic watermark is present.

        The statistic is the normalized difference between first-half and
        second-half counts, maximized over a small delay search; under the
        null it is approximately standard normal.

        The whole delay search runs through the vectorized
        :func:`repro.signal.fold_half_counts` kernel — one broadcasted
        fold instead of one pass over the arrivals per trial offset.  The
        scalar sweep survives as :func:`_reference_detect` for the
        differential tests.

        Raises:
            ValueError: If ``offset_step`` is not positive or
                ``max_offset`` is negative.
        """
        offsets = offset_grid(max_offset, offset_step)
        config = self.config
        first_half, total = fold_half_counts(
            arrival_times, start, offsets, config.period, config.duration
        )
        second_half = total - first_half
        statistics = np.zeros(offsets.size, dtype=float)
        occupied = total > 0
        statistics[occupied] = (
            first_half[occupied] - second_half[occupied]
        ) / np.sqrt(total[occupied])
        best = float(statistics.max())
        return SquareWaveDetection(
            statistic=best,
            threshold=self.config.threshold_sigmas,
            detected=best >= self.config.threshold_sigmas,
            n_packets=len(arrival_times),
        )

    def _statistic(self, arrival_times: list[float], start: float) -> float:
        config = self.config
        times = np.asarray(arrival_times, dtype=float) - start
        in_window = times[
            (times >= 0) & (times < config.duration)
        ]
        if in_window.size == 0:
            return 0.0
        phase = np.mod(in_window, config.period)
        first_half = int((phase < config.period / 2).sum())
        second_half = int(in_window.size - first_half)
        total = first_half + second_half
        if total == 0:
            return 0.0
        # Under the null, first_half ~ Binomial(total, 0.5).
        return (first_half - second_half) / np.sqrt(total)


def _reference_detect(
    detector: SquareWaveDetector,
    arrival_times: list[float],
    start: float,
    max_offset: float = 1.0,
    offset_step: float = 0.1,
) -> SquareWaveDetection:
    """The original scalar delay sweep, kept for differential tests.

    One full fold of the arrivals per trial offset; production detection
    batches every offset through :func:`repro.signal.fold_half_counts`.
    """
    best = float("-inf")
    offset = 0.0
    while offset <= max_offset:
        statistic = detector._statistic(arrival_times, start + offset)
        best = max(best, statistic)
        offset += offset_step
    return SquareWaveDetection(
        statistic=best,
        threshold=detector.config.threshold_sigmas,
        detected=best >= detector.config.threshold_sigmas,
        n_packets=len(arrival_times),
    )


class SquareWaveTechnique(Technique):
    """The periodic watermark with the same legal profile as the DSSS one."""

    name = "square-wave interval flow watermark"

    def __init__(self, config: SquareWaveConfig | None = None) -> None:
        self.config = config or SquareWaveConfig()

    def watermarker(self, seed: int = 0) -> SquareWaveWatermarker:
        """An embedder bound to this configuration."""
        return SquareWaveWatermarker(self.config, seed=seed)

    def detector(self) -> SquareWaveDetector:
        """A detector bound to this configuration."""
        return SquareWaveDetector(self.config)

    def required_actions(self) -> list[InvestigativeAction]:
        return [
            InvestigativeAction(
                description=(
                    "record packet arrival times (rates only) at the "
                    "suspect's ISP"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.NON_CONTENT,
                timing=Timing.REAL_TIME,
                context=EnvironmentContext(place=Place.TRANSMISSION_PATH),
            )
        ]
