"""The anonymous-P2P timing investigation (paper section IV.A, ref [22]).

Reimplements the shape of Prusty, Levine & Liberatore's OneSwarm
investigation: law enforcement *joins the overlay as an ordinary peer*,
issues queries for contraband, and measures how quickly each direct
neighbour responds.  A neighbour that has the file answers after only its
link RTT plus a lookup delay; a neighbour that merely forwards pays the
overlay's per-hop artificial delays both ways.  Classifying on the
*excess* delay (response time minus the openly measurable link RTT)
separates sources from forwarders.

Everything observed is traffic the protocol sends the investigator
voluntarily — broadcast queries and addressed responses — so the
technique is workable with **no** warrant/court order/subpoena (the
paper's section IV.A conclusion, mirrored in
:meth:`OneSwarmTimingAttack.required_actions`).
"""

from __future__ import annotations

import dataclasses
import statistics

import numpy as np

from repro.anonymity.p2p import P2POverlay, ResponseRecord
from repro.core.action import InvestigativeAction
from repro.core.context import EnvironmentContext
from repro.core.enums import Actor, DataKind, Place, Timing
from repro.signal import grouped_median, intern_labels
from repro.techniques.base import Technique


@dataclasses.dataclass(frozen=True)
class NeighborAssessment:
    """The attack's verdict on one direct neighbour.

    Attributes:
        name: Neighbour peer name.
        n_responses: Responses received through this neighbour.
        median_response_time: Median query-to-response time.
        ping_rtt: Openly measured link round-trip to the neighbour.
        excess_delay: ``median_response_time - ping_rtt`` — the decision
            statistic.
        classified_source: The attack's verdict.
        estimated_distance: Estimated hops from the neighbour to the
            nearest responding source: 0 means the neighbour *is* the
            source, 1 means it is a direct friend of one — a "trusted
            node of the source" in the paper's phrase.
        confidence: Fraction of the query trials this neighbour actually
            answered, in [0, 1].  A lossy overlay (dropped responses,
            churned relays) thins the sample the median is computed over;
            the verdict still comes back, flagged as lower-confidence
            instead of raising.
    """

    name: str
    n_responses: int
    median_response_time: float
    ping_rtt: float
    excess_delay: float
    classified_source: bool
    estimated_distance: int = 0
    confidence: float = 1.0


@dataclasses.dataclass(frozen=True)
class InvestigationResult:
    """Full outcome of one investigation run."""

    investigator: str
    file_id: str
    trials: int
    assessments: tuple[NeighborAssessment, ...]

    def identified_sources(self) -> list[str]:
        """Neighbours the attack classified as sources."""
        return [a.name for a in self.assessments if a.classified_source]


@dataclasses.dataclass(frozen=True)
class AttackMetrics:
    """Precision/recall of the classification against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        """Fraction of identified sources that really are sources."""
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        """Fraction of responding sources the attack identified."""
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


class OneSwarmTimingAttack(Technique):
    """RTT-based source identification in a friend-to-friend overlay.

    Args:
        excess_threshold: Maximum excess delay (seconds) for a neighbour
            to be classified a source.  Must sit between the source lookup
            delay (tens of ms) and the overlay's per-hop forwarding delay
            (150 ms+); the default splits them.
    """

    name = "anonymous-P2P response-timing investigation"

    def __init__(self, excess_threshold: float = 0.12) -> None:
        if excess_threshold <= 0:
            raise ValueError("excess_threshold must be positive")
        self.excess_threshold = excess_threshold

    def investigate(
        self,
        overlay: P2POverlay,
        investigator: str,
        file_id: str,
        trials: int = 10,
        ttl: int = 5,
    ) -> InvestigationResult:
        """Run the investigation from a peer already in the overlay.

        Args:
            overlay: The F2F overlay (the investigator must already be a
                member with friend edges — joining is ordinary protocol
                behaviour).
            investigator: The investigator's peer name.
            file_id: The contraband file queried for.
            trials: Number of query rounds (more rounds tighten medians).
            ttl: Query time-to-live.

        Returns:
            Assessments for every neighbour that delivered at least one
            response.
        """
        # repro-lint: disable=REPRO110 -- paper section IV.A: OneSwarm
        # peers volunteer timing responses to any participant by protocol
        # design, so querying as an ordinary peer is not a search and
        # needs no process (the compliance verdict is NOT_REGULATED).
        records = overlay.query(
            investigator, file_id, ttl=ttl, trials=trials
        )
        return self.assess_records(overlay, investigator, file_id, trials, records)

    def assess_records(
        self,
        overlay: P2POverlay,
        investigator: str,
        file_id: str,
        trials: int,
        records: list[ResponseRecord],
    ) -> InvestigationResult:
        """Classify neighbours from already collected response records.

        Partial input degrades gracefully: neighbours seen in fewer than
        ``trials`` responses are still assessed, with ``confidence``
        scaled down to the observed fraction; an empty record list yields
        an empty (not raised) result.

        Per-neighbour medians come from one vectorized
        :func:`repro.signal.grouped_median` call over *interned* labels:
        :func:`repro.signal.intern_labels` maps neighbour names to int64
        codes in sorted-name rank order, so the lexsort never touches a
        string array yet groups come back in the same sorted order the
        scalar path iterated; the scalar grouping survives as
        :func:`_reference_neighbor_medians` for the differential tests.
        """
        codes, names = intern_labels(
            record.neighbor for record in records
        )
        # arrived - sent, vectorized: IEEE-identical to the per-record
        # ``response_time`` property, without 1 Python call per record.
        response_times = np.array(
            [record.arrived_at for record in records], dtype=float
        ) - np.array(
            [record.query_sent_at for record in records], dtype=float
        )
        unique, medians, counts = grouped_median(codes, response_times)
        assessments = []
        for code, median_rt, count in zip(unique, medians, counts):
            neighbor = names[int(code)]
            median_rt = float(median_rt)
            count = int(count)
            rtt = overlay.measure_rtt(investigator, neighbor)
            excess = median_rt - rtt
            confidence = min(1.0, count / trials) if trials > 0 else 0.0
            assessments.append(
                NeighborAssessment(
                    name=neighbor,
                    n_responses=count,
                    median_response_time=median_rt,
                    ping_rtt=rtt,
                    excess_delay=excess,
                    classified_source=excess < self.excess_threshold,
                    estimated_distance=self.estimate_distance(
                        excess, overlay.timing
                    ),
                    confidence=confidence,
                )
            )
        return InvestigationResult(
            investigator=investigator,
            file_id=file_id,
            trials=trials,
            assessments=tuple(assessments),
        )

    @staticmethod
    def estimate_distance(excess_delay: float, timing) -> int:
        """Estimate hops from a neighbour to the nearest responding source.

        The paper's attack distinguishes sources from "trusted nodes of
        the sources" — one-hop relays.  Each extra hop costs one query
        forwarding delay, one friend-link RTT, and one response-relay
        delay; dividing the lookup-corrected excess by the mean per-hop
        cost estimates the distance.

        Args:
            excess_delay: Median response time minus the neighbour's ping
                RTT.
            timing: The overlay's
                :class:`~repro.anonymity.p2p.TimingParameters`.

        Returns:
            0 for the source itself, 1 for a direct friend of a source,
            and so on (never negative).
        """
        lookup_mean = sum(timing.source_lookup) / 2.0
        forward_mean = sum(timing.forward_delay) / 2.0
        link_rtt_mean = sum(timing.link_latency)  # two traversals
        relay_mean = sum(timing.relay_response) / 2.0
        per_hop = forward_mean + link_rtt_mean + relay_mean
        remainder = excess_delay - lookup_mean
        if remainder <= per_hop / 2.0:
            return 0
        return max(1, round(remainder / per_hop))

    @staticmethod
    def score(
        result: InvestigationResult, overlay: P2POverlay
    ) -> AttackMetrics:
        """Score a result against the overlay's ground truth."""
        tp = fp = fn = tn = 0
        for assessment in result.assessments:
            truth = overlay.is_source(assessment.name, result.file_id)
            if assessment.classified_source and truth:
                tp += 1
            elif assessment.classified_source and not truth:
                fp += 1
            elif not assessment.classified_source and truth:
                fn += 1
            else:
                tn += 1
        return AttackMetrics(
            true_positives=tp,
            false_positives=fp,
            false_negatives=fn,
            true_negatives=tn,
        )

    def required_actions(self) -> list[InvestigativeAction]:
        send_queries = InvestigativeAction(
            description=(
                "join the anonymous P2P overlay and broadcast search "
                "queries under normal protocol operation"
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(
                place=Place.PUBLIC, knowingly_exposed=True
            ),
        )
        observe_responses = InvestigativeAction(
            description=(
                "record the timing and content of responses addressed to "
                "the investigator's own peer"
            ),
            actor=Actor.GOVERNMENT,
            data_kind=DataKind.CONTENT,
            timing=Timing.REAL_TIME,
            context=EnvironmentContext(
                place=Place.PUBLIC,
                knowingly_exposed=True,
                delivered_to_recipient=True,
            ),
        )
        return [send_queries, observe_responses]


def _reference_neighbor_medians(
    records: list[ResponseRecord],
) -> dict[str, tuple[float, int]]:
    """The original scalar per-neighbour grouping, kept for differential
    tests.

    Returns ``{neighbor: (median_response_time, n_responses)}`` computed
    with Python dict grouping and :func:`statistics.median`, exactly as
    :meth:`OneSwarmTimingAttack.assess_records` did before the
    :func:`repro.signal.grouped_median` kernel took over.
    """
    by_neighbor: dict[str, list[float]] = {}
    for record in records:
        by_neighbor.setdefault(record.neighbor, []).append(
            record.response_time
        )
    return {
        neighbor: (statistics.median(times), len(times))
        for neighbor, times in sorted(by_neighbor.items())
    }
