"""Hash-based known-file search of seized media (Table 1 scene 18).

Hashes every file on a drive — live and recoverable-deleted — and compares
against a known-contraband hash set.  Per *United States v. Crist*, running
this across an entire lawfully held drive is itself a Fourth Amendment
search, so the technique's declared action requires a warrant even though
the media is already in custody.
"""

from __future__ import annotations

import dataclasses

from repro.core.action import DoctrineFacts, InvestigativeAction
from repro.core.context import EnvironmentContext
from repro.core.enums import Actor, DataKind, Place, Timing
from repro.storage.filesystem import SimpleFilesystem
from repro.storage.hashing import KnownFileSet, sha256_hex
from repro.techniques.base import Technique


@dataclasses.dataclass(frozen=True)
class HashHit:
    """One file whose hash matched the known set."""

    file_name: str
    digest: str
    recovered_deleted: bool


@dataclasses.dataclass(frozen=True)
class HashSearchReport:
    """Outcome of a full-drive hash search."""

    files_examined: int
    hits: tuple[HashHit, ...]

    @property
    def hit_count(self) -> int:
        """Number of matches found."""
        return len(self.hits)


class HashSearchTechnique(Technique):
    """Exhaustive hash comparison across a filesystem."""

    name = "full-drive known-file hash search"

    def __init__(self, known: KnownFileSet) -> None:
        self.known = known

    def run(
        self, filesystem: SimpleFilesystem, include_deleted: bool = True
    ) -> HashSearchReport:
        """Hash every file and report known-set matches.

        Args:
            filesystem: The (imaged) filesystem to examine.
            include_deleted: Also hash recoverable deleted files — the
                paper notes recovering deleted files strengthens probable
                cause (section III.A.1(c)).
        """
        contents = filesystem.all_contents(include_deleted=include_deleted)
        hits = []
        for name, data in sorted(contents.items()):
            digest = sha256_hex(data)
            if self.known.contains_hash(digest):
                hits.append(
                    HashHit(
                        file_name=name,
                        digest=digest,
                        recovered_deleted=name.startswith("(deleted) "),
                    )
                )
        return HashSearchReport(
            files_examined=len(contents), hits=tuple(hits)
        )

    def required_actions(self) -> list[InvestigativeAction]:
        return [
            InvestigativeAction(
                description=(
                    "run hash comparisons across the entire lawfully "
                    "obtained drive hunting for particular files"
                ),
                actor=Actor.GOVERNMENT,
                data_kind=DataKind.CONTENT,
                timing=Timing.STORED,
                context=EnvironmentContext(place=Place.GOVERNMENT_CUSTODY),
                doctrine=DoctrineFacts(hash_search_of_lawful_media=True),
            )
        ]
