"""Investigative techniques the paper analyzes, with legal self-description.

Every technique declares the acquisitions it performs so the
:class:`~repro.core.advisor.ResearchAdvisor` can classify it before it
runs — the paper's Section IV methodology made executable.
"""

from repro.techniques.base import Technique
from repro.techniques.credential_reuse import (
    Credential,
    CredentialedAccessTechnique,
    RemoteAccessReport,
)
from repro.techniques.data_mining import (
    CoOccurrence,
    DataMiningTechnique,
    MiningReport,
)
from repro.techniques.flow_correlation import (
    CorrelationResult,
    PacketCountingCorrelator,
    binned_counts,
    pearson,
)
from repro.techniques.hash_search import (
    HashHit,
    HashSearchReport,
    HashSearchTechnique,
)
from repro.techniques.interval_watermark import (
    SquareWaveConfig,
    SquareWaveDetection,
    SquareWaveDetector,
    SquareWaveTechnique,
    SquareWaveWatermarker,
)
from repro.techniques.scoped_search import (
    ScopedSearchReport,
    ScopedSearchTechnique,
)
from repro.techniques.timing_attack import (
    AttackMetrics,
    InvestigationResult,
    NeighborAssessment,
    OneSwarmTimingAttack,
)
from repro.techniques.traffic import OnOffFlow, PoissonFlow
from repro.techniques.visibility import (
    AutocorrelationVisibilityTest,
    VisibilityResult,
)
from repro.techniques.watermark import (
    DetectionResult,
    DsssWatermarkTechnique,
    FlowWatermarker,
    PnCode,
    WatermarkConfig,
    WatermarkDetector,
)

__all__ = [
    "AttackMetrics",
    "AutocorrelationVisibilityTest",
    "CoOccurrence",
    "CorrelationResult",
    "Credential",
    "CredentialedAccessTechnique",
    "DataMiningTechnique",
    "DetectionResult",
    "DsssWatermarkTechnique",
    "FlowWatermarker",
    "HashHit",
    "HashSearchReport",
    "HashSearchTechnique",
    "InvestigationResult",
    "MiningReport",
    "NeighborAssessment",
    "OnOffFlow",
    "OneSwarmTimingAttack",
    "PacketCountingCorrelator",
    "PnCode",
    "PoissonFlow",
    "RemoteAccessReport",
    "ScopedSearchReport",
    "ScopedSearchTechnique",
    "SquareWaveConfig",
    "SquareWaveDetection",
    "SquareWaveDetector",
    "SquareWaveTechnique",
    "SquareWaveWatermarker",
    "Technique",
    "VisibilityResult",
    "WatermarkConfig",
    "WatermarkDetector",
    "binned_counts",
    "pearson",
]
