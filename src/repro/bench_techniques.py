"""The technique-kernel benchmark behind ``repro bench --techniques``.

Races every vectorized detection path against the scalar original it
replaced — the ``_reference_*`` twins kept in each technique module —
and proves while measuring: each section carries an equivalence check
(best statistic within 1e-9, same verdict, same best offset) and the
overall gate fails, with a nonzero exit code, if any vectorized kernel
ever diverges from its scalar twin or a paper conclusion moves.

Output is one JSON document (``BENCH_techniques.json`` by default):

``dsss`` / ``square_wave`` / ``flow_correlation`` / ``visibility`` /
``timing_attack``
    One section per detector: scalar vs. vectorized detections/second,
    the speedup, and the equivalence verdict.
``campaign``
    ``run_campaign`` serial vs. a 4-worker process pool on the same
    seed: cases/second both ways and per-case signature equality.
``conclusions``
    The paper's results, re-derived on the vectorized paths: Table 1
    agreement, section IV.A (the timing attack needs no process and
    still identifies the direct source), and section IV.B (the DSSS
    watermark needs the pen/trap court order).

Speedups are reported but never gated: CI boxes do not promise
wall-clock ratios (a single-CPU container cannot show a parallel
campaign win at all — ``meta.cpu_count`` records what was available).
The load-bearing gates are scalar/vectorized equivalence and the
paper's conclusions.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import random
import time
from pathlib import Path

import numpy as np

from repro.anonymity.p2p import P2POverlay, ResponseRecord
from repro.core import ComplianceEngine, ProcessKind
from repro.core.scenarios import build_table1
from repro.investigation.campaign import (
    CampaignConfig,
    case_signature,
    run_campaign,
)
from repro.netsim.engine import Simulator
from repro.signal import grouped_median, intern_labels, offset_grid
from repro.techniques import (
    flow_correlation,
    interval_watermark,
    timing_attack,
    visibility,
    watermark,
)
from repro.techniques.flow_correlation import PacketCountingCorrelator
from repro.techniques.interval_watermark import (
    SquareWaveConfig,
    SquareWaveDetector,
    SquareWaveWatermarker,
)
from repro.techniques.timing_attack import OneSwarmTimingAttack
from repro.techniques.traffic import PoissonFlow
from repro.techniques.visibility import AutocorrelationVisibilityTest
from repro.techniques.watermark import (
    DsssWatermarkTechnique,
    FlowWatermarker,
    PnCode,
    WatermarkConfig,
    WatermarkDetector,
)

#: Scalar and vectorized results must agree to this absolute tolerance.
#: The kernels reproduce the reference arithmetic bit-for-bit except the
#: FFT autocorrelation, whose rounding differs at the 1e-12 level.
EQUIVALENCE_TOLERANCE = 1e-9

#: Delay search ceiling shared by every offset-sweeping detector.
MAX_OFFSET = 1.0
#: Offset grid granularity — 201 trial offsets at the full setting.
OFFSET_STEP = 0.005
#: ``--quick`` granularity, for CI smoke runs (51 trial offsets).
QUICK_OFFSET_STEP = 0.02

#: Timing repetitions; each side takes its best (minimum) wall time.
SCALAR_REPS = 5
VECTOR_REPS = 20
QUICK_SCALAR_REPS = 2
QUICK_VECTOR_REPS = 5

#: Worker-pool size for the campaign race (the paper-scale setting).
CAMPAIGN_WORKERS = 4
CAMPAIGN_CASES = 8000
QUICK_CAMPAIGN_CASES = 1000


class _Sink:
    """Minimal downstream channel: records every arrival timestamp."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.arrivals: list[float] = []

    def send_downstream(self, size: int = 512) -> None:
        self.arrivals.append(self.sim.now)


def _simulate(schedule) -> list[float]:
    """Run one embedder/flow against a sink; return its arrival times."""
    sim = Simulator()
    sink = _Sink(sim)
    schedule(sink)
    sim.run()
    return sink.arrivals


def _best_seconds(run, reps: int) -> float:
    """Minimum wall time over ``reps`` runs, cyclic GC paused.

    Same rationale as the corpus benchmark: the minimum estimates the
    structural cost, since scheduler noise and collection pauses only
    ever inflate a run.
    """
    gc_was_enabled = gc.isenabled()
    best = float("inf")
    for _ in range(reps):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    return best


def _race(reference, vectorized, quick: bool) -> tuple:
    """Run and time both paths of one detector.

    Returns:
        ``(reference_result, vectorized_result, timings)`` where
        ``timings`` carries per-path seconds, detections/second, and the
        scalar-over-vectorized speedup.
    """
    reference_result = reference()
    vectorized_result = vectorized()
    scalar_s = _best_seconds(
        reference, QUICK_SCALAR_REPS if quick else SCALAR_REPS
    )
    vector_s = _best_seconds(
        vectorized, QUICK_VECTOR_REPS if quick else VECTOR_REPS
    )
    timings = {
        "scalar": {
            "seconds": scalar_s,
            "detections_per_second": 1.0 / scalar_s if scalar_s else 0.0,
        },
        "vectorized": {
            "seconds": vector_s,
            "detections_per_second": 1.0 / vector_s if vector_s else 0.0,
        },
        "speedup": scalar_s / vector_s if vector_s else 0.0,
    }
    return reference_result, vectorized_result, timings


def _bench_dsss(quick: bool, seed: int) -> dict:
    """DSSS watermark: scalar offset sweep vs. the batched despread."""
    code = PnCode.msequence(7)
    config = WatermarkConfig(chip_duration=0.5, base_rate=20.0, amplitude=0.3)
    arrivals = _simulate(
        lambda sink: FlowWatermarker(code, config, seed=seed).embed(
            sink, start=0.0
        )
    )
    detector = WatermarkDetector(code, config)
    step = QUICK_OFFSET_STEP if quick else OFFSET_STEP
    reference_result, vectorized_result, timings = _race(
        lambda: watermark._reference_detect(
            detector, arrivals, 0.0, max_offset=MAX_OFFSET, offset_step=step
        ),
        lambda: detector.detect(
            arrivals, 0.0, max_offset=MAX_OFFSET, offset_step=step
        ),
        quick,
    )
    delta = abs(reference_result.correlation - vectorized_result.correlation)
    equivalence = {
        "correlation_delta": delta,
        "same_verdict": bool(
            reference_result.detected == vectorized_result.detected
        ),
        "same_best_offset": bool(
            reference_result.best_offset == vectorized_result.best_offset
        ),
        "watermark_detected": bool(vectorized_result.detected),
    }
    equivalence["ok"] = delta <= EQUIVALENCE_TOLERANCE and all(
        value for value in equivalence.values() if isinstance(value, bool)
    )
    return {
        "packets": len(arrivals),
        "chips": len(code),
        "offsets": int(offset_grid(MAX_OFFSET, step).size),
        **timings,
        "equivalence": equivalence,
    }


def _bench_square_wave(quick: bool, seed: int) -> dict:
    """Square-wave watermark: scalar fold-per-offset vs. the batched fold."""
    config = SquareWaveConfig(
        period=4.0, n_periods=16, base_rate=20.0, amplitude=0.3
    )
    arrivals = _simulate(
        lambda sink: SquareWaveWatermarker(config, seed=seed + 1).embed(
            sink, start=0.0
        )
    )
    detector = SquareWaveDetector(config)
    step = QUICK_OFFSET_STEP if quick else OFFSET_STEP
    reference_result, vectorized_result, timings = _race(
        lambda: interval_watermark._reference_detect(
            detector, arrivals, 0.0, max_offset=MAX_OFFSET, offset_step=step
        ),
        lambda: detector.detect(
            arrivals, 0.0, max_offset=MAX_OFFSET, offset_step=step
        ),
        quick,
    )
    delta = abs(reference_result.statistic - vectorized_result.statistic)
    equivalence = {
        "statistic_delta": delta,
        "same_verdict": bool(
            reference_result.detected == vectorized_result.detected
        ),
        "watermark_detected": bool(vectorized_result.detected),
    }
    equivalence["ok"] = delta <= EQUIVALENCE_TOLERANCE and all(
        value for value in equivalence.values() if isinstance(value, bool)
    )
    return {
        "packets": len(arrivals),
        "offsets": int(offset_grid(MAX_OFFSET, step).size),
        **timings,
        "equivalence": equivalence,
    }


def _bench_flow_correlation(quick: bool, seed: int) -> dict:
    """Passive correlation: histogram-per-offset vs. the batched Pearson."""
    duration = 60.0
    reference_times = _simulate(
        lambda sink: PoissonFlow(rate=30.0, seed=seed + 2).schedule(
            sink, 0.0, duration
        )
    )
    jitter = random.Random(seed + 3)
    candidate_times = sorted(
        t + 0.35 + jitter.gauss(0.0, 0.01) for t in reference_times
    )
    step = QUICK_OFFSET_STEP if quick else OFFSET_STEP
    correlator = PacketCountingCorrelator(
        window=0.5, max_offset=MAX_OFFSET, offset_step=step
    )
    reference_result, vectorized_result, timings = _race(
        lambda: flow_correlation._reference_correlate(
            correlator, reference_times, candidate_times, 0.0, duration
        ),
        lambda: correlator.correlate(
            reference_times, candidate_times, 0.0, duration
        ),
        quick,
    )
    delta = abs(reference_result.correlation - vectorized_result.correlation)
    equivalence = {
        "correlation_delta": delta,
        "same_best_offset": bool(
            reference_result.best_offset == vectorized_result.best_offset
        ),
        "flows_matched": bool(correlator.matches(vectorized_result)),
    }
    equivalence["ok"] = delta <= EQUIVALENCE_TOLERANCE and all(
        value for value in equivalence.values() if isinstance(value, bool)
    )
    return {
        "packets": len(candidate_times),
        "offsets": int(offset_grid(MAX_OFFSET, step).size),
        **timings,
        "equivalence": equivalence,
    }


def _bench_visibility(quick: bool, seed: int) -> dict:
    """Visibility scan: per-lag dot products vs. the FFT spectrum.

    Timed on a watermarked flow; the plain-flow direction (an unmarked
    Poisson flow must *not* be flagged, by both paths) rides along in
    the equivalence check.
    """
    config = SquareWaveConfig(
        period=4.0, n_periods=16, base_rate=20.0, amplitude=0.3
    )
    marked = _simulate(
        lambda sink: SquareWaveWatermarker(config, seed=seed + 1).embed(
            sink, start=0.0
        )
    )
    plain = _simulate(
        lambda sink: PoissonFlow(rate=20.0, seed=seed + 4).schedule(
            sink, 0.0, config.duration
        )
    )
    tester = AutocorrelationVisibilityTest(
        window=0.25, max_lag=64 if quick else 128
    )
    reference_result, vectorized_result, timings = _race(
        lambda: visibility._reference_test(
            tester, marked, 0.0, config.duration
        ),
        lambda: tester.test(marked, 0.0, config.duration),
        quick,
    )
    delta = abs(reference_result.statistic - vectorized_result.statistic)
    plain_reference = visibility._reference_test(
        tester, plain, 0.0, config.duration
    )
    plain_vectorized = tester.test(plain, 0.0, config.duration)
    equivalence = {
        "statistic_delta": delta,
        "same_peak_lag": bool(
            reference_result.peak_lag == vectorized_result.peak_lag
        ),
        "watermark_flagged": bool(vectorized_result.watermark_suspected),
        "plain_flow_clean": bool(
            not plain_vectorized.watermark_suspected
            and plain_reference.watermark_suspected
            == plain_vectorized.watermark_suspected
        ),
    }
    equivalence["ok"] = delta <= EQUIVALENCE_TOLERANCE and all(
        value for value in equivalence.values() if isinstance(value, bool)
    )
    return {
        "packets": len(marked),
        "lags": int(min(tester.max_lag, len(marked))),
        **timings,
        "equivalence": equivalence,
    }


def _bench_timing_attack(quick: bool, seed: int) -> dict:
    """Per-neighbour medians: dict grouping vs. the grouped-median kernel."""
    rng = random.Random(seed + 5)
    n_neighbors, trials = (25, 80) if quick else (50, 200)
    records = []
    for trial in range(trials):
        sent = float(trial)
        for index in range(n_neighbors):
            records.append(
                ResponseRecord(
                    neighbor=f"peer-{index:02d}",
                    file_id="f",
                    query_sent_at=sent,
                    arrived_at=sent + 0.05 + rng.random() * 0.2,
                    trial=trial,
                )
            )

    def _vectorized() -> dict[str, tuple[float, int]]:
        codes, names = intern_labels(
            record.neighbor for record in records
        )
        response_times = np.array(
            [record.arrived_at for record in records], dtype=float
        ) - np.array(
            [record.query_sent_at for record in records], dtype=float
        )
        unique, medians, counts = grouped_median(codes, response_times)
        return {
            names[int(code)]: (float(median), int(count))
            for code, median, count in zip(unique, medians, counts)
        }

    reference_result, vectorized_result, timings = _race(
        lambda: timing_attack._reference_neighbor_medians(records),
        _vectorized,
        quick,
    )
    median_delta = max(
        (
            abs(reference_result[name][0] - vectorized_result[name][0])
            for name in reference_result
        ),
        default=float("inf"),
    ) if reference_result.keys() == vectorized_result.keys() else float("inf")
    equivalence = {
        "median_delta": median_delta,
        "same_neighbors": reference_result.keys()
        == vectorized_result.keys(),
        "same_counts": all(
            reference_result[name][1] == vectorized_result[name][1]
            for name in reference_result
        ),
    }
    equivalence["ok"] = median_delta <= EQUIVALENCE_TOLERANCE and all(
        value for value in equivalence.values() if isinstance(value, bool)
    )
    return {
        "records": len(records),
        "neighbors": n_neighbors,
        **timings,
        "equivalence": equivalence,
    }


def _bench_campaign(quick: bool, seed: int) -> dict:
    """``run_campaign`` serial vs. the seed-isolated worker pool."""
    config = CampaignConfig(
        n_cases=QUICK_CAMPAIGN_CASES if quick else CAMPAIGN_CASES,
        comply_probability=0.6,
        seed=seed,
    )
    serial_result = run_campaign(config, max_workers=1)
    parallel_result = run_campaign(config, max_workers=CAMPAIGN_WORKERS)
    serial_s = _best_seconds(
        lambda: run_campaign(config, max_workers=1), reps=1
    )
    parallel_s = _best_seconds(
        lambda: run_campaign(config, max_workers=CAMPAIGN_WORKERS), reps=1
    )
    signatures_identical = [
        case_signature(outcome) for outcome in serial_result.outcomes
    ] == [case_signature(outcome) for outcome in parallel_result.outcomes]
    equivalence = {
        "signatures_identical": signatures_identical,
        "same_successes": serial_result.successes
        == parallel_result.successes,
        "same_suppressed": serial_result.suppressed
        == parallel_result.suppressed,
    }
    equivalence["ok"] = all(equivalence.values())
    return {
        "cases": config.n_cases,
        "workers": CAMPAIGN_WORKERS,
        "serial": {
            "seconds": serial_s,
            "cases_per_second": config.n_cases / serial_s
            if serial_s
            else 0.0,
        },
        "parallel": {
            "seconds": parallel_s,
            "cases_per_second": config.n_cases / parallel_s
            if parallel_s
            else 0.0,
        },
        "speedup": serial_s / parallel_s if parallel_s else 0.0,
        "equivalence": equivalence,
    }


def _build_overlay() -> P2POverlay:
    """The section IV.A fixture: a four-peer friend-to-friend overlay."""
    overlay = P2POverlay(seed=13)
    overlay.add_peer("le")
    overlay.add_peer("direct-source", files={"f"})
    overlay.add_peer("forwarder")
    overlay.add_peer("hidden-source", files={"f"})
    overlay.befriend("le", "direct-source", latency=0.02)
    overlay.befriend("le", "forwarder", latency=0.02)
    overlay.befriend("forwarder", "hidden-source", latency=0.02)
    return overlay


def _bench_conclusions() -> dict:
    """Re-derive the paper's conclusions on the vectorized paths."""
    engine = ComplianceEngine()
    scenarios = build_table1()
    agreement = sum(
        engine.evaluate(scenario.action).needs_process
        == scenario.paper_needs_process
        for scenario in scenarios
    )
    table1 = {
        "agreement": f"{agreement}/{len(scenarios)}",
        "ok": agreement == len(scenarios),
    }

    attack = OneSwarmTimingAttack()
    attack_process = attack.required_process(engine)
    identified = attack.investigate(
        _build_overlay(), "le", "f", trials=10
    ).identified_sources()
    section_iv_a = {
        "technique": attack.name,
        "required_process": attack_process.name,
        "identified_sources": identified,
        "ok": attack_process is ProcessKind.NONE
        and identified == ["direct-source"],
    }

    dsss = DsssWatermarkTechnique()
    dsss_process = dsss.required_process(engine)
    section_iv_b = {
        "technique": dsss.name,
        "required_process": dsss_process.name,
        "ok": dsss_process is ProcessKind.COURT_ORDER,
    }

    return {
        "table1": table1,
        "section_iv_a": section_iv_a,
        "section_iv_b": section_iv_b,
        "ok": table1["ok"] and section_iv_a["ok"] and section_iv_b["ok"],
    }


#: The five detector sections, in report order.
_DETECTOR_SECTIONS = (
    ("dsss", _bench_dsss),
    ("square_wave", _bench_square_wave),
    ("flow_correlation", _bench_flow_correlation),
    ("visibility", _bench_visibility),
    ("timing_attack", _bench_timing_attack),
)


def run_techniques_bench(
    quick: bool = False,
    seed: int = 99,
    out: str | Path = "BENCH_techniques.json",
) -> tuple[dict, bool]:
    """Run every technique benchmark and write ``BENCH_techniques.json``.

    Args:
        quick: Coarser offset grids, fewer repetitions, smaller campaign
            — for CI smoke runs.
        seed: Seed for embedders, synthetic flows, and the campaign.
        out: Where to write the JSON report.

    Returns:
        ``(report, ok)`` — ``ok`` is ``False`` when any vectorized path
        diverged from its scalar twin, the parallel campaign disagreed
        with the serial one, or a paper conclusion moved.  Speedups are
        informational only.
    """
    report: dict = {
        "meta": {
            "quick": quick,
            "seed": seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        }
    }
    for name, section in _DETECTOR_SECTIONS:
        report[name] = section(quick, seed)
    report["campaign"] = _bench_campaign(quick, seed)
    report["conclusions"] = _bench_conclusions()

    ok = (
        all(report[name]["equivalence"]["ok"] for name, _ in _DETECTOR_SECTIONS)
        and report["campaign"]["equivalence"]["ok"]
        and report["conclusions"]["ok"]
    )
    report["ok"] = ok

    path = Path(out)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report, ok


def render_techniques_report(report: dict) -> str:
    """Human-readable summary of a techniques benchmark report."""
    lines = []
    for name, _ in _DETECTOR_SECTIONS:
        section = report[name]
        verdict = "ok" if section["equivalence"]["ok"] else "FAIL"
        lines.append(
            f"{name:16s} scalar "
            f"{section['scalar']['detections_per_second']:8.1f}/s  "
            f"vectorized "
            f"{section['vectorized']['detections_per_second']:10.1f}/s  "
            f"speedup {section['speedup']:6.1f}x  equivalence {verdict}"
        )
    campaign = report["campaign"]
    lines.append(
        f"campaign         serial "
        f"{campaign['serial']['cases_per_second']:8.0f} cases/s  "
        f"parallel({campaign['workers']}) "
        f"{campaign['parallel']['cases_per_second']:8.0f} cases/s  "
        f"speedup {campaign['speedup']:6.2f}x  equivalence "
        f"{'ok' if campaign['equivalence']['ok'] else 'FAIL'} "
        f"(cpu_count={report['meta']['cpu_count']})"
    )
    conclusions = report["conclusions"]
    lines.append(
        f"conclusions: table1 {conclusions['table1']['agreement']}, "
        f"IV.A {conclusions['section_iv_a']['required_process']} + "
        f"{conclusions['section_iv_a']['identified_sources']}, "
        f"IV.B {conclusions['section_iv_b']['required_process']} -> "
        f"{'ok' if conclusions['ok'] else 'FAIL'}"
    )
    lines.append(f"overall: {'ok' if report['ok'] else 'FAIL'}")
    return "\n".join(lines)
