"""Shared vectorized signal kernels for the Section IV detectors.

Every detection technique in :mod:`repro.techniques` reduces to the same
few primitives: sweep a grid of candidate delay offsets, bin packet
arrival times into fixed windows at each offset, and correlate the binned
rate series against a template (a PN code, a reference flow, the series
itself at a lag).  The scalar implementations did this one offset at a
time — O(offsets x packets) of Python-level re-binning per detection.
This package hoists the whole sweep into NumPy:

* :func:`offset_grid` — the canonical delay-offset grid, bit-identical
  to the legacy ``while offset <= max_offset`` accumulation, with the
  parameter validation the scalar loops lacked;
* :func:`binned_count_matrix` — binned counts for *all* offsets at once
  (one sort + one ``np.searchsorted`` over a 2-D edge grid), chunked so
  the edge matrix respects a configurable memory bound;
* :func:`batched_code_correlation` / :func:`batched_pearson` — the DSSS
  despread and the sliding-offset Pearson, batched over the offset axis;
* :func:`autocorrelation_spectrum` — every lag of the visibility test's
  autocorrelation scan in one FFT;
* :func:`fold_half_counts` — the square-wave detector's modulo-period
  fold for all offsets at once;
* :func:`grouped_median` — per-group medians (the timing attack's
  per-neighbour response-time medians) without a Python grouping loop.

The scalar originals survive as ``_reference_*`` functions next to each
technique; the differential and hypothesis suites hold the two
implementations together within 1e-9.
"""

from repro.signal.autocorr import autocorrelation_spectrum
from repro.signal.binning import (
    DEFAULT_CHUNK_BYTES,
    bin_edges_grid,
    binned_count_matrix,
)
from repro.signal.correlate import batched_code_correlation, batched_pearson
from repro.signal.folding import fold_half_counts
from repro.signal.grid import offset_grid
from repro.signal.grouping import grouped_median, intern_labels

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "autocorrelation_spectrum",
    "batched_code_correlation",
    "batched_pearson",
    "bin_edges_grid",
    "binned_count_matrix",
    "fold_half_counts",
    "grouped_median",
    "intern_labels",
    "offset_grid",
]
