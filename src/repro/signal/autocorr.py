"""FFT-based autocorrelation for the adversary's visibility scan.

The scalar :class:`~repro.techniques.visibility.AutocorrelationVisibilityTest`
looped ``for lag in range(1, max_lag + 1)`` computing one overlap dot
product per lag — O(max_lag x n).  The Wiener–Khinchin route computes
every lag at once from one real FFT — O(n log n) — which is the whole
scan for any ``max_lag``.

The spectrum is normalized by the *directly computed* zero-lag energy
``dot(centered, centered)`` rather than the FFT's own zeroth coefficient,
so the only divergence from the scalar path is the FFT's rounding in the
numerator (~1e-13 relative), comfortably inside the 1e-9 equivalence
tolerance the differential suite enforces.
"""

from __future__ import annotations

import numpy as np


def autocorrelation_spectrum(series, max_lag: int) -> np.ndarray:
    """Normalized autocorrelation at lags ``1..max_lag``.

    Args:
        series: The rate series (binned counts); centred internally.
        max_lag: Largest lag computed; clamped to ``len(series) - 2`` by
            callers, not here.

    Returns:
        A 1-D array of length ``max_lag``: entry ``k`` is
        ``dot(c[:-lag], c[lag:]) / dot(c, c)`` for ``lag = k + 1``,
        or all zeros when the series is constant or shorter than 2.

    Raises:
        ValueError: If ``max_lag < 1``.
    """
    if max_lag < 1:
        raise ValueError(f"max_lag must be >= 1: {max_lag}")
    values = np.asarray(series, dtype=float)
    n = values.size
    if n < 2:
        return np.zeros(max_lag, dtype=float)
    centered = values - values.mean()
    denominator = float(np.dot(centered, centered))
    if denominator == 0:
        return np.zeros(max_lag, dtype=float)
    # Zero-pad to at least 2n to make the circular correlation linear.
    size = 1 << int(2 * n - 1).bit_length()
    spectrum = np.fft.rfft(centered, size)
    autocovariance = np.fft.irfft(spectrum * np.conj(spectrum), size)
    usable = min(max_lag, n - 1)
    result = np.zeros(max_lag, dtype=float)
    result[:usable] = autocovariance[1 : usable + 1] / denominator
    return result
