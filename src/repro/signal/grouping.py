"""Vectorized per-group medians for the timing attack.

The OneSwarm assessment computes one response-time median per direct
neighbour; the scalar path built per-neighbour Python lists and called
``statistics.median`` on each.  Here one ``np.lexsort`` orders every
response by (neighbour, time) — group boundaries, counts, and medians
all fall out of that single sorted pass, with no second sort and no
Python loop over records.

Median semantics match :func:`statistics.median` exactly: the middle
element for odd group sizes, the mean of the two middle elements for
even sizes.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np


def intern_labels(labels: Iterable[str]) -> tuple[np.ndarray, list[str]]:
    """Intern string labels to int64 codes in sorted-label rank order.

    Sorting and comparing NumPy string arrays dominates
    :func:`grouped_median` when labels are names (the timing attack's
    known break-even bottleneck); one Python dict pass replaces that
    with integer codes a lexsort handles natively.

    Returns:
        ``(codes, names)``: ``names`` is the sorted unique labels and
        ``codes[i]`` is the index of ``labels[i]`` in ``names`` — so
        ``grouped_median(codes, values)`` yields groups in exactly the
        order the string-label path did, and ``names[int(code)]``
        recovers each group's label.
    """
    first_seen: dict[str, int] = {}
    # setdefault interns in one dict probe per record; the len() default
    # is only *used* on first sight, when it equals the next free code.
    raw = [
        first_seen.setdefault(label, len(first_seen)) for label in labels
    ]
    names = sorted(first_seen)
    remap = np.empty(len(names), dtype=np.int64)
    for rank, name in enumerate(names):
        remap[first_seen[name]] = rank
    if not raw:
        return np.array([], dtype=np.int64), names
    return remap[np.array(raw, dtype=np.int64)], names


def grouped_median(
    labels, values
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Median of ``values`` within each distinct label.

    Args:
        labels: Group label per value (any dtype ``np.unique`` accepts;
            the timing attack passes neighbour name strings).
        values: The values to aggregate, parallel to ``labels``.

    Returns:
        ``(unique_labels, medians, counts)`` with groups in sorted label
        order.  All three are empty arrays when no values are given.

    Raises:
        ValueError: If ``labels`` and ``values`` differ in length.
    """
    labels = np.asarray(labels)
    values = np.asarray(values, dtype=float)
    if labels.shape != values.shape or labels.ndim != 1:
        raise ValueError(
            f"labels {labels.shape} and values {values.shape} must be "
            "equal-length 1-D arrays"
        )
    if labels.size == 0:
        return labels, np.array([], dtype=float), np.array([], dtype=np.int64)
    order = np.lexsort((values, labels))
    sorted_labels = labels[order]
    sorted_values = values[order]
    boundaries = (
        np.flatnonzero(sorted_labels[1:] != sorted_labels[:-1]) + 1
    )
    starts = np.concatenate(([0], boundaries))
    counts = np.diff(np.concatenate((starts, [labels.size])))
    unique = sorted_labels[starts]
    upper = starts + counts // 2
    lower = starts + (counts - 1) // 2
    medians = (sorted_values[lower] + sorted_values[upper]) / 2.0
    # Odd-sized groups have lower == upper; (x + x) / 2 == x exactly, so
    # no special case is needed for statistics.median parity.
    return unique, medians, counts.astype(np.int64)
