"""The canonical delay-offset grid shared by every offset sweep.

All Section IV detectors search an unknown network delay over
``0, step, 2*step, ... <= max_offset``.  The legacy scalar loops built
that grid by repeated float addition (``offset += offset_step``), which
has two defects this module fixes once, for everyone:

* ``offset_step <= 0`` looped forever (or div-by-zero'd), and a negative
  ``max_offset`` silently scanned *nothing*, returning a bogus
  ``-inf``-correlation result — both now raise a clean ``ValueError``;
* accumulated rounding means the grid is *not* ``k * step``: after
  twenty additions of 0.05 the "1.0" offset is actually
  ``1.0000000000000002`` and falls off the end of the sweep.

The vectorized kernels must agree with the ``_reference_*`` scalars to
1e-9, so :func:`offset_grid` reproduces the accumulation semantics
bit-for-bit (the grid is tiny — the O(offsets x packets) work lives in
the binning kernels, not here) instead of switching to ``np.arange`` and
silently moving every detector's trial offsets.
"""

from __future__ import annotations

import math

import numpy as np

#: Hard cap on grid size, guarding against degenerate ``step`` values
#: (e.g. denormals) that validation lets through but would OOM the sweep.
MAX_GRID_POINTS = 10_000_000


def offset_grid(max_offset: float, offset_step: float) -> np.ndarray:
    """The trial delay offsets ``0, step, step+step, ... <= max_offset``.

    Offsets are produced by sequential float accumulation, matching the
    legacy scalar sweeps exactly (``np.arange``'s ``k * step`` grid
    differs in the last bits and can include one extra point).

    Args:
        max_offset: Largest delay searched; the grid always contains at
            least offset ``0.0``.
        offset_step: Search granularity.

    Returns:
        A 1-D float array of trial offsets, never empty.

    Raises:
        ValueError: If ``offset_step`` is not a positive finite number
            (the legacy loops spun forever on ``<= 0``) or ``max_offset``
            is negative or non-finite (the legacy loops silently scanned
            nothing).
    """
    if not math.isfinite(offset_step) or offset_step <= 0:
        raise ValueError(
            f"offset_step must be a positive finite number: {offset_step}"
        )
    if not math.isfinite(max_offset) or max_offset < 0:
        raise ValueError(
            f"max_offset must be a non-negative finite number: {max_offset}"
        )
    if max_offset / offset_step > MAX_GRID_POINTS:
        raise ValueError(
            f"offset grid of ~{max_offset / offset_step:.3g} points exceeds "
            f"the {MAX_GRID_POINTS} point cap; coarsen offset_step"
        )
    offsets = []
    offset = 0.0
    while offset <= max_offset:
        offsets.append(offset)
        offset += offset_step
    return np.asarray(offsets, dtype=float)
