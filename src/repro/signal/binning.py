"""Binned arrival counts for every trial offset in one shot.

The scalar detectors re-ran ``np.histogram`` once per offset — each call
re-scanning every packet against a freshly built edge array.  Here the
timestamps are sorted *once* and a single ``np.searchsorted`` locates
every edge of every offset's bin grid, so the per-offset cost collapses
to ``O(bins * log packets)``.

Semantics are bit-identical to ``np.histogram(times, bins=edges)`` with
uniform explicit edges: bins are left-closed/right-open except the last,
which is closed on both sides.  Bit-identity matters because the counts
are the integers everything downstream correlates — a single off-by-one
at a bin boundary would dwarf the 1e-9 equivalence tolerance.

The edge grid is ``offsets x (bins + 1)`` floats; for a dense sweep over
a long code that matrix is the kernel's memory bound, so it is built in
offset chunks capped at :data:`DEFAULT_CHUNK_BYTES` (see
``docs/performance.md`` for the sizing math).
"""

from __future__ import annotations

import numpy as np

#: Cap on the transient edge/count matrices, in bytes.  16 MiB keeps the
#: working set inside L2/L3 on commodity hardware; sweeps wider than the
#: cap are processed in offset chunks with identical results.
DEFAULT_CHUNK_BYTES = 16 * 1024 * 1024


def bin_edges_grid(
    start: float,
    offsets: np.ndarray,
    n_bins: int,
    width: float,
) -> np.ndarray:
    """Bin edges for every offset: ``(start + offset) + k * width``.

    Float operations mirror the scalar detectors exactly — first the
    offset shift, then the edge multiples — so row ``i`` equals the edge
    array the scalar path built for ``offsets[i]`` bit-for-bit.

    Args:
        start: Sweep origin (embedding start time).
        offsets: 1-D trial offsets.
        n_bins: Bins per offset row.
        width: Bin width in seconds.

    Returns:
        A ``(len(offsets), n_bins + 1)`` float array of edges.
    """
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1: {n_bins}")
    if width <= 0:
        raise ValueError(f"bin width must be positive: {width}")
    origins = np.asarray(offsets, dtype=float) + start
    return origins[:, None] + np.arange(n_bins + 1) * width


def binned_count_matrix(
    timestamps,
    start: float,
    offsets: np.ndarray,
    n_bins: int,
    width: float,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> np.ndarray:
    """Counts of ``timestamps`` in every offset's bin grid.

    Args:
        timestamps: Arrival times (any order; sorted internally once).
        start: Sweep origin.
        offsets: 1-D trial offsets (see
            :func:`~repro.signal.grid.offset_grid`).
        n_bins: Bins per offset.
        width: Bin width in seconds.
        chunk_bytes: Bound on the transient edge matrix; offsets are
            processed in chunks no larger than this.

    Returns:
        A ``(len(offsets), n_bins)`` float array; row ``i`` equals
        ``np.histogram(timestamps, bins=edges_of(offsets[i]))[0]``.
    """
    offsets = np.asarray(offsets, dtype=float)
    times = np.sort(np.asarray(timestamps, dtype=float))
    n_offsets = offsets.size
    counts = np.empty((n_offsets, n_bins), dtype=float)
    if n_offsets == 0:
        return counts
    row_bytes = (n_bins + 1) * 8
    rows_per_chunk = max(1, int(chunk_bytes // row_bytes))
    for lo in range(0, n_offsets, rows_per_chunk):
        hi = min(lo + rows_per_chunk, n_offsets)
        edges = bin_edges_grid(start, offsets[lo:hi], n_bins, width)
        positions = np.searchsorted(times, edges, side="left")
        chunk = np.diff(positions, axis=1).astype(float)
        # np.histogram's final bin is closed: arrivals exactly on the last
        # edge belong to it.
        last_closed = np.searchsorted(times, edges[:, -1], side="right")
        chunk[:, -1] += last_closed - positions[:, -1]
        counts[lo:hi] = chunk
    return counts
