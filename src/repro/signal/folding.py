"""The square-wave detector's modulo-period fold, batched over offsets.

The interval watermark's statistic needs, per trial offset, the number of
in-window arrivals landing in the first half of their period versus the
total — the scalar path recomputed the shift/mask/fold per offset.  Here
one broadcasted subtraction produces the shifted times for every offset
at once; masks and folds are elementwise, so the integer counts are
bit-identical to the scalar fold.

The transient ``offsets x packets`` matrix is the memory bound, chunked
at :data:`~repro.signal.binning.DEFAULT_CHUNK_BYTES` like the binning
kernel.
"""

from __future__ import annotations

import numpy as np

from repro.signal.binning import DEFAULT_CHUNK_BYTES


def fold_half_counts(
    timestamps,
    start: float,
    offsets: np.ndarray,
    period: float,
    duration: float,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> tuple[np.ndarray, np.ndarray]:
    """First-half and total in-window counts for every trial offset.

    For each offset, arrivals are shifted by ``start + offset``, kept if
    they land in ``[0, duration)``, folded modulo ``period``, and split
    at the half-period mark — exactly the scalar detector's fold.

    Args:
        timestamps: Arrival times.
        start: Embedding start time.
        offsets: 1-D trial offsets.
        period: Full on/off cycle length.
        duration: Total embedding duration.
        chunk_bytes: Bound on the transient shifted-times matrix.

    Returns:
        ``(first_half, total)`` — two 1-D integer arrays, one entry per
        offset.

    Raises:
        ValueError: If ``period`` or ``duration`` is not positive.
    """
    if period <= 0:
        raise ValueError(f"period must be positive: {period}")
    if duration <= 0:
        raise ValueError(f"duration must be positive: {duration}")
    offsets = np.asarray(offsets, dtype=float)
    times = np.asarray(timestamps, dtype=float)
    n_offsets = offsets.size
    first_half = np.zeros(n_offsets, dtype=np.int64)
    total = np.zeros(n_offsets, dtype=np.int64)
    if n_offsets == 0 or times.size == 0:
        return first_half, total
    half = period / 2
    row_bytes = times.size * 8
    rows_per_chunk = max(1, int(chunk_bytes // row_bytes))
    for lo in range(0, n_offsets, rows_per_chunk):
        hi = min(lo + rows_per_chunk, n_offsets)
        shifted = times[None, :] - (start + offsets[lo:hi])[:, None]
        in_window = (shifted >= 0) & (shifted < duration)
        phase = np.mod(shifted, period)
        first = in_window & (phase < half)
        first_half[lo:hi] = first.sum(axis=1)
        total[lo:hi] = in_window.sum(axis=1)
    return first_half, total
