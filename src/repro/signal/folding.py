"""The square-wave detector's modulo-period fold, batched over offsets.

The interval watermark's statistic needs, per trial offset, the number of
in-window arrivals landing in the first half of their period versus the
total.  The first batched kernel broadcast an ``offsets x packets``
subtraction and re-folded every packet at every offset — O(offsets x
packets) work that benchmarked only ~2x over the scalar sweep.

This version counts instead of folding.  For non-negative shifted time
``u`` the fold condition ``mod(u, period) < period/2`` is exactly
membership in one of the disjoint real intervals ``[k*period,
k*period + period/2)``.  With ``half = period/2`` representable (true
for every normal ``period``), every interval endpoint is an exact real
product ``m * half`` for an integer ``m``.  So the kernel:

1. sorts the arrival times once;
2. forms each endpoint ``m * half`` as a double-double via Dekker's
   two-product and collapses it to a single double threshold ``x`` such
   that ``u < m*half`` (exact reals) iff ``u < x`` (double compare);
3. translates each u-space threshold into the smallest arrival-time
   cutoff ``T`` with ``fl(t - shift) >= x``, by a candidate sum plus a
   short ``nextafter`` refinement (float subtraction is monotone in
   ``t``, so ``{t : fl(t - shift) < x} == {t : t < T}``);
4. reads every count straight out of one ``np.searchsorted``.

Per offset the work drops from O(packets) to O(cycles * log packets),
and every count is bit-identical to the broadcast fold — the boundary
collapse in step 2/3 is exact, not a tolerance.  Degenerate shapes
(subnormal ``period``, astronomical cycle counts, refinement that fails
to converge) fall back to the dense kernel, which is kept as
:func:`_fold_half_counts_dense` with the transient matrix still chunked
at :data:`~repro.signal.binning.DEFAULT_CHUNK_BYTES`.
"""

from __future__ import annotations

import numpy as np

from repro.signal.binning import DEFAULT_CHUNK_BYTES

# Veltkamp splitter for Dekker's exact two-product on doubles: 2**27 + 1.
_SPLITTER = 134217729.0

# Past this many on/off cycles the boundary grid outgrows the packet
# axis and the dense fold is the cheaper (and simpler) kernel.
_MAX_CYCLES = 4_000_000

# nextafter refinement converges in a couple of steps (the candidate
# cutoff is within ~1 ulp of the true one); the cap only guards the
# fallback, it is not expected to bind.
_MAX_REFINE_STEPS = 64


def _fold_half_counts_dense(
    times: np.ndarray,
    start: float,
    offsets: np.ndarray,
    period: float,
    duration: float,
    chunk_bytes: int,
    first_half: np.ndarray,
    total: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """The original broadcast fold: shift, mask, ``np.mod``, split.

    Retained as the reference semantics and as the fallback for inputs
    where the boundary-counting fast path declines to run.
    """
    half = period / 2
    n_offsets = offsets.size
    row_bytes = times.size * 8
    rows_per_chunk = max(1, int(chunk_bytes // row_bytes))
    for lo in range(0, n_offsets, rows_per_chunk):
        hi = min(lo + rows_per_chunk, n_offsets)
        shifted = times[None, :] - (start + offsets[lo:hi])[:, None]
        in_window = (shifted >= 0) & (shifted < duration)
        phase = np.mod(shifted, period)
        first = in_window & (phase < half)
        first_half[lo:hi] = first.sum(axis=1)
        total[lo:hi] = in_window.sum(axis=1)
    return first_half, total


def _exact_boundary_thresholds(half: float, count: int) -> np.ndarray:
    """Double thresholds ``x[m]`` with ``u < m*half`` (reals) iff ``u < x[m]``.

    ``m*half`` is formed as a double-double ``(hi, err)`` with Dekker's
    two-product (no FMA required); since ``|err| <= ulp(hi)/2``, the
    strict comparison against the exact product collapses to a strict
    double comparison against ``hi`` when ``err <= 0`` and against
    ``nextafter(hi, inf)`` when ``err > 0``.
    """
    m = np.arange(count, dtype=np.float64)
    hi = m * half
    t = _SPLITTER * m
    m_hi = t - (t - m)
    m_lo = m - m_hi
    t = _SPLITTER * half
    h_hi = t - (t - half)
    h_lo = half - h_hi
    err = ((m_hi * h_hi - hi) + m_hi * h_lo + m_lo * h_hi) + m_lo * h_lo
    return np.where(err > 0, np.nextafter(hi, np.inf), hi)


def _cutoffs(
    thresholds: np.ndarray, shifts: np.ndarray
) -> np.ndarray | None:
    """Smallest ``T`` per (shift, threshold) with ``fl(T - shift) >= x``.

    ``fl(t - shift)`` is nondecreasing in ``t``, so the candidate
    ``fl(x + shift)`` lands within a few ulps of the true cutoff and two
    short masked ``nextafter`` walks pin it exactly.  Returns ``None``
    if either walk fails to converge (never observed; defensive).
    """
    x = thresholds[None, :]
    s = shifts[:, None]
    c = x + s
    for _ in range(_MAX_REFINE_STEPS):
        low = (c - s) < x
        if not low.any():
            break
        c = np.where(low, np.nextafter(c, np.inf), c)
    else:
        return None
    for _ in range(_MAX_REFINE_STEPS):
        prev = np.nextafter(c, -np.inf)
        still = (prev - s) >= x
        if not still.any():
            break
        c = np.where(still, prev, c)
    else:
        return None
    return c


def fold_half_counts(
    timestamps,
    start: float,
    offsets: np.ndarray,
    period: float,
    duration: float,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> tuple[np.ndarray, np.ndarray]:
    """First-half and total in-window counts for every trial offset.

    For each offset, arrivals are shifted by ``start + offset``, kept if
    they land in ``[0, duration)``, folded modulo ``period``, and split
    at the half-period mark — exactly the scalar detector's fold, and
    bit-identical to it for every input.

    Args:
        timestamps: Arrival times (any order).
        start: Embedding start time.
        offsets: 1-D trial offsets.
        period: Full on/off cycle length.
        duration: Total embedding duration.
        chunk_bytes: Bound on the dense fallback's transient matrix.

    Returns:
        ``(first_half, total)`` — two 1-D integer arrays, one entry per
        offset.

    Raises:
        ValueError: If ``period`` or ``duration`` is not positive.
    """
    if period <= 0:
        raise ValueError(f"period must be positive: {period}")
    if duration <= 0:
        raise ValueError(f"duration must be positive: {duration}")
    offsets = np.asarray(offsets, dtype=float)
    times = np.asarray(timestamps, dtype=float)
    n_offsets = offsets.size
    first_half = np.zeros(n_offsets, dtype=np.int64)
    total = np.zeros(n_offsets, dtype=np.int64)
    if n_offsets == 0 or times.size == 0:
        return first_half, total

    half = period / 2
    cycles = duration / period
    if (
        half + half != period  # subnormal period: halving rounded
        or not np.isfinite(cycles)
        or cycles > _MAX_CYCLES
        or not np.isfinite(duration)
    ):
        return _fold_half_counts_dense(
            times, start, offsets, period, duration, chunk_bytes, first_half, total
        )

    n_cycles = int(cycles) + 2
    # Endpoints m*half for m in [0, 2*n_cycles): even m open a first
    # half, odd m close it.  The window [0, duration) rides along as two
    # extra exact-double thresholds.
    bounds = _exact_boundary_thresholds(half, 2 * n_cycles)
    lower = bounds[0::2]
    upper = np.minimum(bounds[1::2], duration)
    thresholds = np.concatenate((lower, upper, (0.0, duration)))

    shifts = start + offsets
    cut = _cutoffs(thresholds, shifts)
    if cut is None:
        return _fold_half_counts_dense(
            times, start, offsets, period, duration, chunk_bytes, first_half, total
        )

    times_sorted = np.sort(times)
    counts = np.searchsorted(times_sorted, cut.ravel(), side="left")
    counts = counts.reshape(n_offsets, thresholds.size).astype(np.int64)
    below_lower = counts[:, :n_cycles]
    below_upper = counts[:, n_cycles : 2 * n_cycles]
    below_zero = counts[:, 2 * n_cycles]
    below_duration = counts[:, 2 * n_cycles + 1]
    np.sum(np.maximum(below_upper - below_lower, 0), axis=1, out=first_half)
    np.subtract(below_duration, below_zero, out=total)
    return first_half, total
