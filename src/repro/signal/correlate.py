"""Batched correlation kernels over the offset axis.

Two flavours, matching the two scalar detectors they replace:

* :func:`batched_code_correlation` — the DSSS despread: centre each
  offset's count row and correlate against the raw ±1 chip sequence
  (the code is *not* centred; an m-sequence is already balanced to ±1);
* :func:`batched_pearson` — the passive flow correlator: full Pearson of
  each candidate row against one fixed reference series, both centred.

Both return 0.0 for degenerate (constant) rows, exactly as the scalar
:func:`repro.techniques.flow_correlation.pearson` does.
"""

from __future__ import annotations

import numpy as np


def batched_code_correlation(
    count_matrix: np.ndarray, chips: np.ndarray
) -> np.ndarray:
    """Normalized correlation of every count row with a spreading code.

    Mirrors ``WatermarkDetector.correlate`` row-wise: counts are centred,
    the code is used raw, and the normalization is the product of the two
    Euclidean norms.

    Args:
        count_matrix: ``(offsets, chips)`` binned counts.
        chips: The ±1 spreading code, length equal to ``count_matrix``'s
            second axis.

    Returns:
        A 1-D array of correlations, one per offset row; 0.0 where the
        row is constant.
    """
    counts = np.asarray(count_matrix, dtype=float)
    chips = np.asarray(chips, dtype=float)
    if counts.ndim != 2 or counts.shape[1] != chips.size:
        raise ValueError(
            f"count matrix {counts.shape} does not match code length "
            f"{chips.size}"
        )
    centered = counts - counts.mean(axis=1, keepdims=True)
    norms = np.sqrt(np.einsum("ij,ij->i", centered, centered)) * np.sqrt(
        np.dot(chips, chips)
    )
    dots = centered @ chips
    correlations = np.zeros(counts.shape[0], dtype=float)
    nonzero = norms != 0
    correlations[nonzero] = dots[nonzero] / norms[nonzero]
    return correlations


def batched_pearson(
    candidate_matrix: np.ndarray, reference: np.ndarray
) -> np.ndarray:
    """Pearson correlation of every candidate row against one reference.

    Mirrors :func:`repro.techniques.flow_correlation.pearson` row-wise:
    both sides centred, 0.0 whenever either side is constant.

    Args:
        candidate_matrix: ``(offsets, bins)`` binned candidate counts.
        reference: The reference count series, length equal to
            ``candidate_matrix``'s second axis.

    Returns:
        A 1-D array of Pearson correlations, one per offset row.
    """
    candidates = np.asarray(candidate_matrix, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if candidates.ndim != 2 or candidates.shape[1] != reference.size:
        raise ValueError(
            f"candidate matrix {candidates.shape} does not match reference "
            f"length {reference.size}"
        )
    ref_centered = reference - reference.mean()
    ref_norm = float(np.linalg.norm(ref_centered))
    centered = candidates - candidates.mean(axis=1, keepdims=True)
    norms = np.sqrt(np.einsum("ij,ij->i", centered, centered)) * ref_norm
    dots = centered @ ref_centered
    correlations = np.zeros(candidates.shape[0], dtype=float)
    nonzero = norms != 0
    correlations[nonzero] = dots[nonzero] / norms[nonzero]
    return correlations
