"""The chaos harness: the paper's invariants under a hostile substrate.

Each chaos run draws a randomized :class:`~repro.faults.plan.FaultPlan`
from a seed and re-runs the reproduction's headline experiments under it:

* the 20 Table 1 scenes, complying and not, through the resilient
  :class:`~repro.investigation.pipeline.InvestigationPipeline`;
* both Section IV techniques (the OneSwarm timing attack and the DSSS
  flow watermark, plus the passive correlator baseline) over faulty
  overlays and taps;
* forensic imaging over a device with injected read faults.

The invariants asserted are paper-shaped, not happy-path-shaped: rulings
stay 20/20 because the *law* does not depend on packet loss; the
no-process suppression split stays 100%/0%; a comply run's evidence is
admitted exactly when the process actually held at acquisition time
sufficed; fault-affected evidence carries the interruption in its
custody log; and no technique raises on degraded input — it returns a
confidence-scored partial result instead.
"""

from __future__ import annotations

import dataclasses
import os
import random
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING

from repro import obs
from repro.anonymity.onion import OnionNetwork
from repro.anonymity.p2p import P2POverlay
from repro.core.cache import RulingCache
from repro.core.engine import ComplianceEngine
from repro.core.scenarios import Scenario, build_table1
from repro.faults.errors import StorageFault
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.investigation.pipeline import (
    InvestigationPipeline,
    suppression_split,
)
from repro.netsim.engine import Simulator
from repro.storage.blockdev import BlockDevice, image_device
from repro.techniques.flow_correlation import PacketCountingCorrelator
from repro.techniques.timing_attack import OneSwarmTimingAttack
from repro.techniques.watermark import (
    DsssWatermarkTechnique,
    PnCode,
    WatermarkConfig,
)

if TYPE_CHECKING:  # annotation-only; chaos must not hard-import ledger
    from repro.ledger import Ledger

#: Lag between instrument issuance and execution in chaos runs; long
#: enough that an injected short-validity instrument expires inside it.
_ACQUISITION_LAG = 600.0


@dataclasses.dataclass(frozen=True)
class PlanResult:
    """Invariant checks for one fault plan.

    Attributes:
        seed: The plan's seed.
        n_scenes: Scenes run (20 for the full table).
        table1_agreement: Scenes whose ruling agrees with the paper.
        split: The no-process suppression split ``(need, no-need)``.
        lawfulness_ok: In the comply run, evidence was admitted exactly
            when the process held at acquisition time sufficed.
        custody_ok: Every fault-affected evidence item records the
            interruption in its custody log.
        techniques_ok: Both Section IV techniques (and the correlator
            baseline) returned confidence-scored results without raising.
        storage_ok: Imaging produced a hash-verified image, or failed
            loudly with :class:`~repro.faults.errors.StorageFault`.
        faults_fired: Total injections logged during the run.
        log_digest: SHA-256 of the rendered injection log.
    """

    seed: int
    n_scenes: int
    table1_agreement: int
    split: tuple[float, float]
    lawfulness_ok: bool
    custody_ok: bool
    techniques_ok: bool
    storage_ok: bool
    faults_fired: int
    log_digest: str

    @property
    def ok(self) -> bool:
        """Whether every invariant held under this plan."""
        return (
            self.table1_agreement == self.n_scenes
            and self.split == (1.0, 0.0)
            and self.lawfulness_ok
            and self.custody_ok
            and self.techniques_ok
            and self.storage_ok
        )


@dataclasses.dataclass(frozen=True)
class ChaosReport:
    """Every plan's result plus the determinism replay check."""

    results: tuple[PlanResult, ...]
    deterministic: bool

    @property
    def ok(self) -> bool:
        """Whether the whole chaos run passed."""
        return self.deterministic and all(r.ok for r in self.results)

    @property
    def total_faults(self) -> int:
        """Faults injected across every plan."""
        return sum(r.faults_fired for r in self.results)

    def render(self) -> str:
        """Human-readable summary table."""
        lines = []
        for r in self.results:
            mark = "ok " if r.ok else "FAIL"
            lines.append(
                f"plan seed={r.seed:<6d} {mark} "
                f"rulings={r.table1_agreement}/{r.n_scenes} "
                f"split={r.split[0]:.0%}/{r.split[1]:.0%} "
                f"lawful={'y' if r.lawfulness_ok else 'N'} "
                f"custody={'y' if r.custody_ok else 'N'} "
                f"techniques={'y' if r.techniques_ok else 'N'} "
                f"storage={'y' if r.storage_ok else 'N'} "
                f"faults={r.faults_fired}"
            )
        passed = sum(1 for r in self.results if r.ok)
        lines.append(
            f"{passed}/{len(self.results)} plans hold every invariant; "
            f"replay {'deterministic' if self.deterministic else 'DIVERGED'}; "
            f"{self.total_faults} faults injected"
        )
        return "\n".join(lines)


def select_scenes(scenes: str = "all") -> tuple[Scenario, ...]:
    """Resolve a ``--scenes`` argument to Table 1 scenarios.

    Accepts ``"all"`` or a comma-separated list of scene numbers.
    """
    table = build_table1()
    if scenes == "all":
        return tuple(table)
    wanted = {int(token) for token in scenes.split(",") if token.strip()}
    unknown = wanted - {scenario.number for scenario in table}
    if unknown:
        raise ValueError(f"no such Table 1 scene(s): {sorted(unknown)}")
    return tuple(s for s in table if s.number in wanted)


def run_plan(
    seed: int,
    scenarios: tuple[Scenario, ...],
    intensity: float = 0.15,
    engine: ComplianceEngine | None = None,
    ledger: "Ledger | None" = None,
) -> PlanResult:
    """Run every experiment under one randomized fault plan.

    With a ``ledger`` attached, the pipeline persists every scene's
    docket/instrument/custody/suppression records under the
    ``chaos/seed-<seed>`` namespace; pair with a ledger-bearing engine
    to persist the rulings themselves.
    """
    with obs.span("chaos.plan", seed=seed, intensity=intensity) as sp:
        result = _run_plan_impl(seed, scenarios, intensity, engine, ledger)
        sp.set(ok=result.ok, faults=result.faults_fired)
    return result


def _run_plan_impl(
    seed: int,
    scenarios: tuple[Scenario, ...],
    intensity: float,
    engine: ComplianceEngine | None,
    ledger: "Ledger | None" = None,
) -> PlanResult:
    plan = FaultPlan.randomized(seed, intensity=intensity)
    injector = FaultInjector(plan)
    engine = engine or ComplianceEngine()

    # Invariant: the law does not depend on the substrate's mood.  Ruled
    # as one batch: on a cached engine, repeated plans over the same
    # scenes reduce to pure fingerprint lookups.
    rulings = engine.evaluate_many([s.action for s in scenarios])
    agreement = sum(
        ruling.needs_process == s.paper_needs_process
        for ruling, s in zip(rulings, scenarios)
    )

    pipeline = InvestigationPipeline(
        engine=engine,
        injector=injector,
        acquisition_lag=_ACQUISITION_LAG,
        ledger=ledger,
        run_label=f"chaos/seed-{seed}",
    )
    non_comply = pipeline.run_all(scenarios, obtain_process=False)
    split = suppression_split(non_comply)

    comply = pipeline.run_all(scenarios, obtain_process=True)
    lawfulness_ok = all(
        o.ruling.permits(o.evidence.process_held) == (not o.suppressed)
        for o in comply
    )
    custody_ok = all(
        _custody_records_interruptions(o)
        for o in (*non_comply, *comply)
    )

    techniques_ok = _run_techniques(seed, injector)
    storage_ok = _run_storage(seed, injector)

    if obs.OBS.enabled:
        # Attach the plan's injection log so the trace carries the same
        # artifact FaultInjector.to_jsonl() would export standalone.
        obs.event(
            "fault.log",
            seed=seed,
            injections=injector.fired(),
            jsonl=injector.to_jsonl(),
        )

    return PlanResult(
        seed=seed,
        n_scenes=len(scenarios),
        table1_agreement=agreement,
        split=split,
        lawfulness_ok=lawfulness_ok,
        custody_ok=custody_ok,
        techniques_ok=techniques_ok,
        storage_ok=storage_ok,
        faults_fired=injector.fired(),
        log_digest=injector.log_digest(),
    )


def _custody_records_interruptions(outcome) -> bool:
    """Fault-affected evidence must carry the interruption in custody."""
    if not outcome.interruptions:
        return True
    if outcome.custody is None:
        return False
    events = [entry.event for entry in outcome.custody.entries]
    return all(
        any(interruption in event for event in events)
        for interruption in outcome.interruptions
    )


def _run_techniques(seed: int, injector: FaultInjector) -> bool:
    """Both Section IV techniques on faulty substrates; never raises."""
    # IV.B: DSSS watermark + passive correlator through a churny onion net.
    sim = Simulator()
    onion = OnionNetwork(sim, n_relays=8, seed=seed, injector=injector)
    circuit = onion.build_circuit("suspect", "server")
    code = PnCode.msequence(6)
    config = WatermarkConfig(chip_duration=0.3, base_rate=30.0)
    technique = DsssWatermarkTechnique(code, config)
    watermarker = technique.watermarker(seed=seed)
    scheduled = watermarker.embed(circuit, start=0.5)
    sim.run()
    detection = technique.detector().detect(
        circuit.client_arrival_times(),
        start=0.5,
        expected_packets=scheduled,
    )
    ok = 0.0 <= detection.confidence <= 1.0
    correlation = PacketCountingCorrelator(window=0.3).correlate(
        circuit.server_departure_times(),
        circuit.client_arrival_times(),
        start=0.5,
        duration=watermarker.duration,
    )
    ok = ok and 0.0 <= correlation.confidence <= 1.0

    # IV.A: timing attack over an overlay whose responses partially drop.
    overlay = P2POverlay(seed=seed)
    overlay.random_topology(
        40, mean_degree=3.0, source_fraction=0.2, file_id="cp"
    )
    overlay.add_peer("le")
    rng = random.Random(seed ^ 0x5EED)
    for name in rng.sample(
        [peer for peer in overlay.peers if peer != "le"], 6
    ):
        overlay.befriend("le", name)
    attack = OneSwarmTimingAttack()
    trials = 4
    # repro-lint: disable=REPRO110 -- chaos harness queries a synthetic
    # overlay of simulated peers; no real-world acquisition occurs and
    # the records never enter an evidentiary chain.
    records = overlay.query("le", "cp", ttl=4, trials=trials)
    degraded = [record for record in records if rng.random() > 0.3]
    result = attack.assess_records(overlay, "le", "cp", trials, degraded)
    ok = ok and all(
        0.0 <= assessment.confidence <= 1.0
        for assessment in result.assessments
    )
    return ok


def _run_storage(seed: int, injector: FaultInjector) -> bool:
    """Imaging under read faults: verified image or loud failure."""
    rng = random.Random(seed ^ 0xD15C)
    device = BlockDevice(n_blocks=64, block_size=64, injector=injector)
    for index in range(device.n_blocks):
        device.write_block(index, rng.randbytes(device.block_size))
    try:
        # repro-lint: disable=REPRO110 -- chaos harness images a
        # synthetic in-memory device it created itself; there is no
        # seized medium and no process requirement to gate.
        image = image_device(device, max_attempts=4)
    except StorageFault:
        # Failing loudly is acceptable resilience; silently returning a
        # corrupt image is not.
        return True
    return image.sha256() == device.sha256()


#: Per-worker-process state for the parallel sweep: scenarios and a
#: cached engine, built once per (process, scenes) pair and reused across
#: every plan that worker executes.
_WORKER_STATE: dict[str, tuple[tuple[Scenario, ...], ComplianceEngine]] = {}


def _plan_worker(task: tuple[int, str, float]) -> PlanResult:
    """Run one fault plan inside a pool worker.

    Plans are seed-isolated — each builds its own injector, simulator,
    overlay, and device from the seed — so workers share nothing and the
    sweep's results are independent of worker count or scheduling.
    """
    seed, scenes, intensity = task
    state = _WORKER_STATE.get(scenes)
    if state is None:
        state = (
            select_scenes(scenes),
            ComplianceEngine(cache=RulingCache()),
        )
        _WORKER_STATE[scenes] = state
    scenarios, engine = state
    return run_plan(seed, scenarios, intensity, engine)


def _plan_worker_traced(
    task: tuple[int, str, float],
) -> tuple[PlanResult, list[dict[str, object]]]:
    """Traced variant of :func:`_plan_worker`.

    Workers start with telemetry off (it is process-global state), so
    the plan runs under a private collector and its records return with
    the result for the parent to
    :meth:`~repro.obs.TraceCollector.adopt` in seed order.
    """
    collector = obs.enable(obs.TraceCollector())
    try:
        result = _plan_worker(task)
    finally:
        obs.disable()
    return result, collector.export_records()


def resolve_workers(max_workers: int | None, n_plans: int) -> int:
    """Resolve a ``--workers`` argument to an effective worker count.

    ``None`` means one worker per CPU, capped at the plan count; anything
    below 2 means run serially in-process.
    """
    if max_workers is None:
        return min(n_plans, os.cpu_count() or 1)
    return max(1, max_workers)


def run_chaos(
    seed: int = 7,
    n_plans: int = 25,
    scenes: str = "all",
    intensity: float = 0.15,
    max_workers: int | None = None,
    ledger: "Ledger | None" = None,
) -> ChaosReport:
    """Run ``n_plans`` chaos plans and the determinism replay check.

    Plan seeds are ``seed, seed+1, ..., seed+n_plans-1``; the first plan
    is then replayed and its injection-log digest must match byte for
    byte, which is what makes any chaos failure reproducible from the
    command line.

    Because every plan is seed-isolated, the sweep fans out across a
    process pool (``max_workers=None`` uses one worker per CPU, capped at
    ``n_plans``; pass ``1`` to force the serial in-process path).  Results
    are returned in seed order and are identical either way; the replay
    check always runs in-process, so a pool-scheduling bug cannot mask a
    determinism failure.

    With a ``ledger`` attached the sweep runs serially — a SQLite handle
    does not cross process boundaries — and every plan persists its
    rulings, dockets, custody chains, and suppression outcomes.  The
    replay plan deliberately gets no ledger: replay verifies
    determinism, it does not produce new facts.
    """
    if n_plans < 1:
        raise ValueError(f"n_plans must be >= 1: {n_plans}")
    scenarios = select_scenes(scenes)
    workers = resolve_workers(max_workers, n_plans)
    if ledger is not None:
        workers = 1
    if workers > 1:
        tasks = [
            (seed + offset, scenes, intensity) for offset in range(n_plans)
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if obs.OBS.enabled and obs.OBS.collector is not None:
                traced = list(pool.map(_plan_worker_traced, tasks))
                results = tuple(result for result, __ in traced)
                for __, records in traced:
                    obs.OBS.collector.adopt(records)
            else:
                results = tuple(pool.map(_plan_worker, tasks))
    else:
        engine = ComplianceEngine(cache=RulingCache(), ledger=ledger)
        results = tuple(
            run_plan(seed + offset, scenarios, intensity, engine, ledger)
            for offset in range(n_plans)
        )
        if ledger is not None:
            ledger.commit()
    replay = run_plan(
        seed, scenarios, intensity, ComplianceEngine(cache=RulingCache())
    )
    deterministic = (
        replay.log_digest == results[0].log_digest
        and replay.split == results[0].split
        and replay.table1_agreement == results[0].table1_agreement
    )
    return ChaosReport(results=results, deterministic=deterministic)
