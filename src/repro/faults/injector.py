"""The fault injector: deterministic decisions plus an explanation log.

One injector instance serves a whole run.  Substrates consult it at each
fault point (``fires(kind, target, time)``); every decision is drawn from
an RNG derived from ``(plan.seed, kind)``, so two runs of the same code
under the same plan make byte-identical decisions *and* byte-identical
injection logs — the log is the audit trail that makes a chaotic run
explainable after the fact.

Per-kind RNG streams keep substrates independent: adding a storage fault
to a plan does not perturb the link-drop decision sequence.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import zlib

import random

from repro import obs
from repro.faults.plan import FaultKind, FaultPlan


def _derive_seed(seed: int, kind: FaultKind) -> int:
    """A stable per-kind seed (crc32 keeps it interpreter-independent)."""
    return (seed * 1_000_003 + zlib.crc32(kind.value.encode())) & 0x7FFFFFFF


@dataclasses.dataclass(frozen=True)
class InjectionRecord:
    """One fault that actually fired."""

    time: float
    kind: FaultKind
    target: str
    detail: str

    def render(self) -> str:
        """A stable one-line rendering (the unit of log comparison)."""
        return (
            f"t={self.time:.6f} {self.kind.value} "
            f"target={self.target} {self.detail}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (one :meth:`FaultInjector.to_jsonl` line)."""
        return {
            "time": self.time,
            "kind": self.kind.value,
            "target": self.target,
            "detail": self.detail,
        }


class FaultInjector:
    """Draws fault decisions from a plan and logs everything that fires."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rngs = {
            kind: random.Random(_derive_seed(plan.seed, kind))
            for kind in FaultKind
        }
        self._log: list[InjectionRecord] = []
        self._consumed_schedules: set[tuple[int, float]] = set()

    # -- decisions ---------------------------------------------------------------

    def fires(
        self, kind: FaultKind, target: str = "*", time: float = 0.0
    ) -> bool:
        """Whether a fault of ``kind`` hits ``target`` at this fault point.

        Scheduled times fire exactly once each, on the first consultation
        at or after the scheduled time; probabilistic sources draw one
        decision per matching spec per consultation.  Fired faults are
        appended to the injection log.
        """
        fired_details: list[str] = []
        for index, spec in enumerate(self.plan.specs):
            if spec.kind is not kind or not spec.matches_target(target):
                continue
            for at in spec.at_times:
                key = (index, at)
                if at <= time and key not in self._consumed_schedules:
                    self._consumed_schedules.add(key)
                    fired_details.append(f"scheduled@{at:.6f}")
            if (
                spec.probability > 0
                and self._rngs[kind].random() < spec.probability
            ):
                fired_details.append(f"p={spec.probability:.6f}")
        if not fired_details:
            return False
        self.record(kind, target, ";".join(fired_details), time)
        return True

    def magnitude(self, kind: FaultKind, target: str = "*") -> float:
        """The largest ``param`` among specs matching kind and target."""
        return max(
            (
                spec.param
                for spec in self.plan.for_kind(kind)
                if spec.matches_target(target)
            ),
            default=0.0,
        )

    # -- logging -----------------------------------------------------------------

    def record(
        self,
        kind: FaultKind,
        target: str,
        detail: str,
        time: float = 0.0,
    ) -> InjectionRecord:
        """Append an injection record (also used by consumers to log
        fault *consequences* like an interrupted acquisition)."""
        record = InjectionRecord(
            time=time, kind=kind, target=target, detail=detail
        )
        self._log.append(record)
        if obs.OBS.enabled:
            obs.event(
                "fault.injection",
                sim_time=time,
                kind=kind.value,
                target=target,
                detail=detail,
            )
            obs.OBS.registry.counter(
                "repro_faults_injected_total",
                "Fault injections that fired, by kind.",
            ).inc(kind=kind.value)
        return record

    @property
    def log(self) -> tuple[InjectionRecord, ...]:
        """Everything that fired, in firing order."""
        return tuple(self._log)

    def fired(self, kind: FaultKind | None = None) -> int:
        """How many faults fired (optionally of one kind)."""
        if kind is None:
            return len(self._log)
        return sum(1 for record in self._log if record.kind is kind)

    def render_log(self) -> str:
        """The whole log as text; identical seeds → identical bytes."""
        return "\n".join(record.render() for record in self._log)

    def to_jsonl(self) -> str:
        """The injection log as JSONL — the artifact a chaos run leaves.

        One JSON object per fired record, in firing order; '' when
        nothing fired.  Identical seeds render identical bytes, so the
        export composes with :meth:`log_digest`-style comparisons.
        """
        if not self._log:
            return ""
        return "\n".join(
            json.dumps(record.to_dict(), sort_keys=True)
            for record in self._log
        ) + "\n"

    def log_digest(self) -> str:
        """SHA-256 of the rendered log, for cheap equality assertions."""
        return hashlib.sha256(self.render_log().encode()).hexdigest()
