"""The fault injector: deterministic decisions plus an explanation log.

One injector instance serves a whole run.  Substrates consult it at each
fault point (``fires(kind, target, time)``); every decision is drawn from
an RNG derived from ``(plan.seed, kind)``, so two runs of the same code
under the same plan make byte-identical decisions *and* byte-identical
injection logs — the log is the audit trail that makes a chaotic run
explainable after the fact.

Per-kind RNG streams keep substrates independent: adding a storage fault
to a plan does not perturb the link-drop decision sequence.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import zlib

import random

from repro import obs
from repro.faults.plan import FaultKind, FaultPlan


def _derive_seed(seed: int, kind: FaultKind) -> int:
    """A stable per-kind seed (crc32 keeps it interpreter-independent)."""
    return (seed * 1_000_003 + zlib.crc32(kind.value.encode())) & 0x7FFFFFFF


@dataclasses.dataclass(frozen=True)
class InjectionRecord:
    """One fault that actually fired.

    ``seq`` is the per-kind consultation ordinal at which the fault
    fired — the bookkeeping :meth:`FaultInjector.replaying` needs to
    re-apply a log verbatim.  It is excluded from equality, ``repr``,
    :meth:`render`, and :meth:`to_dict`, so logs compare and serialize
    exactly as they did before it existed.
    """

    time: float
    kind: FaultKind
    target: str
    detail: str
    seq: int = dataclasses.field(default=-1, compare=False, repr=False)

    def render(self) -> str:
        """A stable one-line rendering (the unit of log comparison)."""
        return (
            f"t={self.time:.6f} {self.kind.value} "
            f"target={self.target} {self.detail}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (one :meth:`FaultInjector.to_jsonl` line)."""
        return {
            "time": self.time,
            "kind": self.kind.value,
            "target": self.target,
            "detail": self.detail,
        }


class FaultInjector:
    """Draws fault decisions from a plan and logs everything that fires."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rngs = {
            kind: random.Random(_derive_seed(plan.seed, kind))
            for kind in FaultKind
        }
        self._log: list[InjectionRecord] = []
        self._consumed_schedules: set[tuple[int, float]] = set()
        self._draws: dict[FaultKind, int] = dict.fromkeys(FaultKind, 0)
        self._consultations: dict[FaultKind, int] = dict.fromkeys(
            FaultKind, 0
        )

    # -- decisions ---------------------------------------------------------------

    def fires(
        self, kind: FaultKind, target: str = "*", time: float = 0.0
    ) -> bool:
        """Whether a fault of ``kind`` hits ``target`` at this fault point.

        Scheduled times fire exactly once each, on the first consultation
        at or after the scheduled time; probabilistic sources draw one
        decision per matching spec per consultation.  Fired faults are
        appended to the injection log.
        """
        seq = self._consultations[kind]
        self._consultations[kind] = seq + 1
        fired_details: list[str] = []
        for index, spec in enumerate(self.plan.specs):
            if spec.kind is not kind or not spec.matches_target(target):
                continue
            for at in spec.at_times:
                key = (index, at)
                if at <= time and key not in self._consumed_schedules:
                    self._consumed_schedules.add(key)
                    fired_details.append(f"scheduled@{at:.6f}")
            if spec.probability > 0:
                self._draws[kind] += 1
                if self._rngs[kind].random() < spec.probability:
                    fired_details.append(f"p={spec.probability:.6f}")
        if not fired_details:
            return False
        self.record(kind, target, ";".join(fired_details), time, seq=seq)
        return True

    def magnitude(self, kind: FaultKind, target: str = "*") -> float:
        """The largest ``param`` among specs matching kind and target."""
        return max(
            (
                spec.param
                for spec in self.plan.for_kind(kind)
                if spec.matches_target(target)
            ),
            default=0.0,
        )

    # -- logging -----------------------------------------------------------------

    def record(
        self,
        kind: FaultKind,
        target: str,
        detail: str,
        time: float = 0.0,
        seq: int = -1,
    ) -> InjectionRecord:
        """Append an injection record (also used by consumers to log
        fault *consequences* like an interrupted acquisition)."""
        record = InjectionRecord(
            time=time, kind=kind, target=target, detail=detail, seq=seq
        )
        self._log.append(record)
        if obs.OBS.enabled:
            obs.event(
                "fault.injection",
                sim_time=time,
                kind=kind.value,
                target=target,
                detail=detail,
            )
            obs.OBS.registry.counter(
                "repro_faults_injected_total",
                "Fault injections that fired, by kind.",
            ).inc(kind=kind.value)
        return record

    @property
    def log(self) -> tuple[InjectionRecord, ...]:
        """Everything that fired, in firing order."""
        return tuple(self._log)

    def fired(self, kind: FaultKind | None = None) -> int:
        """How many faults fired (optionally of one kind)."""
        if kind is None:
            return len(self._log)
        return sum(1 for record in self._log if record.kind is kind)

    def render_log(self) -> str:
        """The whole log as text; identical seeds → identical bytes."""
        return "\n".join(record.render() for record in self._log)

    def to_jsonl(self) -> str:
        """The injection log as JSONL — the artifact a chaos run leaves.

        One JSON object per fired record, in firing order; '' when
        nothing fired.  Identical seeds render identical bytes, so the
        export composes with :meth:`log_digest`-style comparisons.
        """
        if not self._log:
            return ""
        return "\n".join(
            json.dumps(record.to_dict(), sort_keys=True)
            for record in self._log
        ) + "\n"

    def log_digest(self) -> str:
        """SHA-256 of the rendered log, for cheap equality assertions."""
        return hashlib.sha256(self.render_log().encode()).hexdigest()

    # -- resume support ----------------------------------------------------------

    def draw_counts(self) -> dict[str, int]:
        """Probabilistic RNG draws so far, keyed by fault-kind value.

        Zero-draw kinds are omitted, so the mapping serializes compactly
        and comparisons ignore kinds a run never consulted.
        """
        return {
            kind.value: count
            for kind, count in self._draws.items()
            if count
        }

    def consultation_counts(self) -> dict[str, int]:
        """:meth:`fires` consultations so far, keyed by fault-kind value."""
        return {
            kind.value: count
            for kind, count in self._consultations.items()
            if count
        }

    def fast_forward(
        self,
        draws: dict[str, int],
        consultations: dict[str, int] | None = None,
    ) -> None:
        """Advance per-kind RNG streams to recorded positions.

        A resumed run constructs a *fresh* injector from the same plan
        and fast-forwards it to the draw counts journaled at the last
        completed step boundary; subsequent decisions then fall exactly
        where the uninterrupted run's would have.

        Raises:
            ValueError: If a recorded count is behind this injector's
                current position (streams cannot rewind).
        """
        for key, count in draws.items():
            kind = FaultKind(key)
            behind = count - self._draws[kind]
            if behind < 0:
                raise ValueError(
                    f"cannot rewind {key} draws from {self._draws[kind]} "
                    f"to {count}"
                )
            rng = self._rngs[kind]
            for _ in range(behind):
                rng.random()
            self._draws[kind] = count
        for key, count in (consultations or {}).items():
            kind = FaultKind(key)
            if count < self._consultations[kind]:
                raise ValueError(
                    f"cannot rewind {key} consultations from "
                    f"{self._consultations[kind]} to {count}"
                )
            self._consultations[kind] = count

    def adopt_log(
        self, records: "list[InjectionRecord | dict[str, object]]"
    ) -> None:
        """Append already-fired records (from a journal) to this log.

        Adopted scheduled firings re-mark their one-shot schedule slots
        as consumed, so a resumed run does not fire them again.  No obs
        events or counters are emitted — these faults fired in the run
        being resumed, not in this one.
        """
        for entry in records:
            if isinstance(entry, InjectionRecord):
                record = entry
            else:
                record = InjectionRecord(
                    time=float(entry["time"]),  # type: ignore[arg-type]
                    kind=FaultKind(entry["kind"]),
                    target=str(entry["target"]),
                    detail=str(entry["detail"]),
                )
            self._log.append(record)
            self._mark_consumed(record)

    def _mark_consumed(self, record: InjectionRecord) -> None:
        for token in record.detail.split(";"):
            if not token.startswith("scheduled@"):
                continue
            at = float(token[len("scheduled@") :])
            for index, spec in enumerate(self.plan.specs):
                if spec.kind is not record.kind:
                    continue
                if not spec.matches_target(record.target):
                    continue
                for scheduled in spec.at_times:
                    if abs(scheduled - at) < 1e-9:
                        self._consumed_schedules.add((index, scheduled))

    @classmethod
    def replaying(
        cls, plan: FaultPlan, log: "tuple[InjectionRecord, ...]"
    ) -> "ReplayFaultInjector":
        """An injector that re-applies ``log`` verbatim instead of drawing."""
        return ReplayFaultInjector(plan, log)


class ReplayFaultInjector(FaultInjector):
    """Re-applies a recorded injection log instead of drawing decisions.

    Each :meth:`fires` call is matched against the recorded log by
    ``(kind, consultation ordinal)``: the fault points that fired in the
    original run fire again — with the recorded target, time, and detail
    — and every other consultation stays quiet.  Running the same code
    under a replay injector therefore reproduces the original log
    byte-for-byte, without consuming any randomness.
    """

    def __init__(
        self, plan: FaultPlan, log: "tuple[InjectionRecord, ...]"
    ) -> None:
        super().__init__(plan)
        self._recorded: dict[FaultKind, dict[int, InjectionRecord]] = {}
        for record in log:
            if record.seq < 0:
                raise ValueError(
                    "replay requires records with consultation ordinals; "
                    "pass the .log of the original injector"
                )
            self._recorded.setdefault(record.kind, {})[record.seq] = record

    def fires(
        self, kind: FaultKind, target: str = "*", time: float = 0.0
    ) -> bool:
        seq = self._consultations[kind]
        self._consultations[kind] = seq + 1
        recorded = self._recorded.get(kind, {}).get(seq)
        if recorded is None:
            return False
        self.record(
            kind, recorded.target, recorded.detail, recorded.time, seq=seq
        )
        return True
