"""Exceptions raised by injected faults.

These are *substrate* failures, not legal ones: a tap missing packets or
a drive returning garbage does not violate any statute by itself, but it
does threaten admissibility — a custody log that cannot explain a gap, or
an image whose hash never verified, is challengeable evidence.  Consumers
therefore either retry (bounded, via
:class:`~repro.faults.retry.RetryPolicy`), degrade to confidence-scored
partial results, or record the interruption in the evidence's chain of
custody.  Swallowing a :class:`FaultError` without doing any of those is
exactly what lint rule ``REPRO107`` flags.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faults.plan import FaultKind


class FaultError(Exception):
    """An injected substrate fault surfaced to a consumer.

    Attributes:
        kind: The fault kind that fired, when known.
        target: The substrate element the fault hit.
        time: Simulation time of the fault.
    """

    def __init__(
        self,
        message: str,
        kind: "FaultKind | None" = None,
        target: str = "",
        time: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.target = target
        self.time = time


class TransientReadError(FaultError):
    """A storage read failed this time; a re-read may succeed."""


class StorageFault(FaultError):
    """Storage failed persistently (imaging could not verify a hash)."""


class CourtFault(FaultError):
    """Process could not be obtained or relied on (denied, expired)."""
