"""Bounded retries with exponential backoff in simulation time.

Real investigations re-apply after a denial and re-execute after an
instrument expires; they do not retry forever.  A :class:`RetryPolicy`
is pure data — attempt count, base delay, multiplier, cap — so the
backoff schedule is computable (and testable) without running anything,
and the elapsed time it implies is *simulated* seconds, composing with
the event-driven substrates rather than sleeping.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable
from typing import TypeVar

from repro import obs
from repro.faults.errors import FaultError

T = TypeVar("T")


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: attempt ``k`` waits ``base * multiplier**k``.

    Attributes:
        max_attempts: Total tries including the first (>= 1).
        base_delay: Simulated seconds before the first retry.
        multiplier: Backoff growth factor per retry (>= 1).
        max_delay: Cap on any single backoff interval.
    """

    max_attempts: int = 3
    base_delay: float = 60.0
    multiplier: float = 2.0
    max_delay: float = 6 * 3600.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(f"negative base_delay: {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1: {self.multiplier}")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")

    def delay(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (0 = first retry)."""
        if retry_index < 0:
            raise ValueError(f"negative retry index: {retry_index}")
        return min(
            self.base_delay * self.multiplier**retry_index, self.max_delay
        )

    def schedule(self) -> tuple[float, ...]:
        """Every backoff interval the policy allows, in order."""
        return tuple(
            self.delay(index) for index in range(self.max_attempts - 1)
        )

    def total_backoff(self) -> float:
        """Worst-case simulated seconds spent waiting across all retries."""
        return sum(self.schedule())


def run_with_retries(
    fn: Callable[[float], T],
    policy: RetryPolicy,
    start: float = 0.0,
    retry_on: tuple[type[BaseException], ...] = (FaultError,),
    on_retry: Callable[[int, BaseException, float], None] | None = None,
) -> tuple[T, int, float]:
    """Call ``fn(sim_time)`` under a retry policy.

    Args:
        fn: The operation; receives the simulated time of this attempt.
        policy: Backoff schedule and attempt bound.
        start: Simulated time of the first attempt.
        retry_on: Exception types that trigger a retry; anything else
            propagates immediately.
        on_retry: Optional callback ``(retry_index, exception,
            next_attempt_time)`` invoked before each backoff.

    Returns:
        ``(result, attempts_used, elapsed_sim_seconds)``.

    Raises:
        The last exception, if every attempt failed.
    """
    now = start
    for attempt in range(policy.max_attempts):
        try:
            # A failing fn raises through the span, which closes with an
            # ``error`` attribute before the retry machinery catches it.
            with obs.span("retry.attempt", sim_time=now, attempt=attempt):
                result = fn(now)
            return result, attempt + 1, now - start
        except retry_on as exc:
            if attempt == policy.max_attempts - 1:
                raise
            backoff = policy.delay(attempt)
            now += backoff
            if on_retry is not None:
                on_retry(attempt, exc, now)
    raise AssertionError("unreachable: loop returns or raises")
