"""Bounded retries with exponential backoff in simulation time.

Real investigations re-apply after a denial and re-execute after an
instrument expires; they do not retry forever.  A :class:`RetryPolicy`
is pure data — attempt count, base delay, multiplier, cap — so the
backoff schedule is computable (and testable) without running anything,
and the elapsed time it implies is *simulated* seconds, composing with
the event-driven substrates rather than sleeping.
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Callable
from typing import TypeVar

from repro import obs
from repro.faults.errors import FaultError

T = TypeVar("T")


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: attempt ``k`` waits ``base * multiplier**k``.

    Attributes:
        max_attempts: Total tries including the first (>= 1).
        base_delay: Simulated seconds before the first retry.
        multiplier: Backoff growth factor per retry (>= 1).
        max_delay: Cap on any single backoff interval.
        jitter: Fractional symmetric jitter applied to each interval
            (``0.25`` spreads an interval over ±25%).  ``0.0`` — the
            default — leaves the schedule byte-identical to a policy
            without jitter.
        jitter_seed: Seed for the jitter draws.  Each interval's factor
            is derived from ``(jitter_seed, retry_index)`` alone, so a
            schedule is a pure function of the policy — no shared RNG
            stream, no call-order sensitivity.
        max_total_backoff: Cap on the *sum* of all backoff intervals.
            Later intervals are clipped (possibly to ``0.0``) once the
            cumulative schedule reaches the cap; ``None`` leaves the
            total unbounded as before.
    """

    max_attempts: int = 3
    base_delay: float = 60.0
    multiplier: float = 2.0
    max_delay: float = 6 * 3600.0
    jitter: float = 0.0
    jitter_seed: int = 0
    max_total_backoff: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(f"negative base_delay: {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1: {self.multiplier}")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1): {self.jitter}")
        if self.max_total_backoff is not None and self.max_total_backoff < 0:
            raise ValueError(
                f"negative max_total_backoff: {self.max_total_backoff}"
            )

    def delay(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (0 = first retry).

        The jittered interval (when ``jitter > 0``) is deterministic:
        the same policy always produces the same interval for the same
        index.  ``max_total_backoff`` is a property of the whole
        schedule and is applied by :meth:`schedule`, not here.
        """
        if retry_index < 0:
            raise ValueError(f"negative retry index: {retry_index}")
        interval = min(
            self.base_delay * self.multiplier**retry_index, self.max_delay
        )
        if self.jitter == 0.0:
            return interval
        draw = random.Random(
            self.jitter_seed * 1_000_003 + retry_index
        ).random()
        jittered = interval * (1.0 + self.jitter * (2.0 * draw - 1.0))
        return min(max(jittered, 0.0), self.max_delay)

    def schedule(self) -> tuple[float, ...]:
        """Every backoff interval the policy allows, in order.

        When ``max_total_backoff`` is set, intervals are clipped so the
        cumulative sum never exceeds it; intervals past the budget
        collapse to ``0.0`` (the retry happens immediately rather than
        being forfeited — the *attempt* bound is ``max_attempts``).
        """
        intervals = [
            self.delay(index) for index in range(self.max_attempts - 1)
        ]
        if self.max_total_backoff is not None:
            total = 0.0
            for index, interval in enumerate(intervals):
                allowed = max(self.max_total_backoff - total, 0.0)
                clipped = min(interval, allowed)
                intervals[index] = clipped
                total += clipped
        return tuple(intervals)

    def total_backoff(self) -> float:
        """Worst-case simulated seconds spent waiting across all retries."""
        return sum(self.schedule())


def run_with_retries(
    fn: Callable[[float], T],
    policy: RetryPolicy,
    start: float = 0.0,
    retry_on: tuple[type[BaseException], ...] = (FaultError,),
    on_retry: Callable[[int, BaseException, float], None] | None = None,
) -> tuple[T, int, float]:
    """Call ``fn(sim_time)`` under a retry policy.

    Args:
        fn: The operation; receives the simulated time of this attempt.
        policy: Backoff schedule and attempt bound.
        start: Simulated time of the first attempt.
        retry_on: Exception types that trigger a retry; anything else
            propagates immediately.
        on_retry: Optional callback ``(retry_index, exception,
            next_attempt_time)`` invoked before each backoff.

    Returns:
        ``(result, attempts_used, elapsed_sim_seconds)``.

    Raises:
        The last exception, if every attempt failed.
    """
    now = start
    intervals = policy.schedule()
    for attempt in range(policy.max_attempts):
        try:
            # A failing fn raises through the span, which closes with an
            # ``error`` attribute before the retry machinery catches it.
            with obs.span("retry.attempt", sim_time=now, attempt=attempt):
                result = fn(now)
            return result, attempt + 1, now - start
        except retry_on as exc:
            if attempt == policy.max_attempts - 1:
                raise
            now += intervals[attempt]
            if on_retry is not None:
                on_retry(attempt, exc, now)
    raise AssertionError("unreachable: loop returns or raises")
