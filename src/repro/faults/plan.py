"""Fault plans: what goes wrong, where, and how often.

A :class:`FaultPlan` is a declarative, seedable description of a hostile
substrate: each :class:`FaultSpec` names a fault kind, an optional target
filter, a per-event probability, and/or explicit scheduled times.  Plans
are plain frozen data so the same plan can be replayed exactly — the
:class:`~repro.faults.injector.FaultInjector` derives every random
decision from ``(plan.seed, fault kind)``, which is what makes a chaos
run reproducible from its seed alone.
"""

from __future__ import annotations

import dataclasses
import enum
import random


class FaultKind(enum.Enum):
    """Taxonomy of injectable faults, grouped by substrate."""

    #: A packet in transit on a wired link is silently dropped.
    LINK_DROP = "link-drop"
    #: A packet is delivered twice (e.g. a retransmission artifact).
    LINK_DUPLICATE = "link-duplicate"
    #: A packet is held back so it arrives after later traffic.
    LINK_REORDER = "link-reorder"
    #: The link is momentarily down; the packet never leaves the sender.
    LINK_FLAP = "link-flap"
    #: A collection tap misses a passing packet entirely.
    TAP_DROPOUT = "tap-dropout"
    #: An onion relay churns away mid-flow; the cell is lost.
    RELAY_CHURN = "relay-churn"
    #: A block-device read fails transiently (retryable).
    STORAGE_READ_ERROR = "storage-read-error"
    #: A block-device read returns silently corrupted data once.
    STORAGE_BIT_ROT = "storage-bit-rot"
    #: The magistrate denies an otherwise sufficient application.
    COURT_DENIAL = "court-denial"
    #: The magistrate sits on the application before deciding.
    COURT_LATENCY = "court-latency"
    #: An instrument issues with a drastically shortened validity window.
    INSTRUMENT_EXPIRY = "instrument-expiry"


#: Kinds whose ``param`` is a duration in simulated seconds.
_DURATION_PARAM_KINDS = frozenset(
    {
        FaultKind.LINK_REORDER,
        FaultKind.COURT_LATENCY,
        FaultKind.INSTRUMENT_EXPIRY,
    }
)


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One fault source in a plan.

    Attributes:
        kind: What fails.
        probability: Per-consultation chance the fault fires (0 disables
            the probabilistic source; scheduled times still apply).
        at_times: Simulation times at which the fault fires exactly once
            each, on the first consultation at or after that time.
        target: Filter on the substrate element's label; ``"*"`` matches
            everything, otherwise a substring match.
        param: Kind-specific magnitude — extra delay for
            ``LINK_REORDER``/``COURT_LATENCY``, validity seconds for
            ``INSTRUMENT_EXPIRY``; ignored by the boolean kinds.
    """

    kind: FaultKind
    probability: float = 0.0
    at_times: tuple[float, ...] = ()
    target: str = "*"
    param: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1]: {self.probability}"
            )
        if any(t < 0 for t in self.at_times):
            raise ValueError(f"negative scheduled time in {self.at_times}")
        if self.param < 0:
            raise ValueError(f"negative param: {self.param}")
        if not self.target:
            raise ValueError("target must be '*' or a non-empty substring")

    def matches_target(self, target: str) -> bool:
        """Whether this spec applies to a substrate element's label."""
        return self.target == "*" or self.target in target

    def describe(self) -> str:
        """One stable line describing the spec (used in plan digests)."""
        parts = [self.kind.value, f"p={self.probability:.6f}"]
        if self.at_times:
            times = ",".join(f"{t:.6f}" for t in self.at_times)
            parts.append(f"at=[{times}]")
        if self.target != "*":
            parts.append(f"target={self.target}")
        if self.param:
            parts.append(f"param={self.param:.6f}")
        return " ".join(parts)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault sources active during a run."""

    seed: int
    specs: tuple[FaultSpec, ...] = ()

    def for_kind(self, kind: FaultKind) -> tuple[FaultSpec, ...]:
        """The specs targeting one fault kind, in declaration order."""
        return tuple(spec for spec in self.specs if spec.kind is kind)

    def kinds(self) -> tuple[FaultKind, ...]:
        """The distinct kinds this plan can inject, in taxonomy order."""
        present = {spec.kind for spec in self.specs}
        return tuple(kind for kind in FaultKind if kind in present)

    def describe(self) -> str:
        """A stable multi-line description of the whole plan."""
        lines = [f"seed={self.seed}"]
        lines.extend(spec.describe() for spec in self.specs)
        return "\n".join(lines)

    @classmethod
    def randomized(
        cls,
        seed: int,
        intensity: float = 0.1,
        kinds: tuple[FaultKind, ...] = tuple(FaultKind),
    ) -> "FaultPlan":
        """Draw a random plan, deterministically from ``seed``.

        Args:
            seed: Drives both which kinds are active and their rates, and
                later seeds the injector's own decisions.
            intensity: Upper bound on per-event fault probability; also
                scales how many kinds activate.
            kinds: The pool of kinds the plan may draw from.

        Returns:
            A plan where each selected kind gets one spec with a
            probability in ``(0, intensity]`` and a kind-appropriate
            ``param``.
        """
        if not 0.0 < intensity <= 1.0:
            raise ValueError(f"intensity must be in (0, 1]: {intensity}")
        rng = random.Random(seed)
        specs: list[FaultSpec] = []
        for kind in kinds:
            if rng.random() >= 0.5:
                continue
            param = 0.0
            if kind in _DURATION_PARAM_KINDS:
                if kind is FaultKind.COURT_LATENCY:
                    param = rng.uniform(600.0, 6 * 3600.0)
                elif kind is FaultKind.INSTRUMENT_EXPIRY:
                    param = rng.uniform(1.0, 300.0)
                else:
                    param = rng.uniform(0.01, 0.25)
            specs.append(
                FaultSpec(
                    kind=kind,
                    probability=rng.uniform(0.01, intensity),
                    param=param,
                )
            )
        return cls(seed=seed, specs=tuple(specs))
