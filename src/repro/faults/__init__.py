"""Deterministic fault injection for every substrate in the reproduction.

The paper's legal conclusions are invariants — they must hold on a lossy
tap, under a hostile court, and over rotting storage just as they do on
the happy path.  This package provides the seed-driven
:class:`FaultPlan`/:class:`FaultInjector` pair the substrates consult,
the bounded :class:`RetryPolicy` consumers use to survive injected
denials, and the chaos harness that re-runs the headline experiments
under randomized plans.
"""

from repro.faults.errors import (
    CourtFault,
    FaultError,
    StorageFault,
    TransientReadError,
)
from repro.faults.injector import FaultInjector, InjectionRecord
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.retry import RetryPolicy, run_with_retries

#: Chaos-harness names served lazily: the harness imports the pipeline,
#: which imports this package's leaf modules, so an eager import here
#: would be circular.
_CHAOS_EXPORTS = frozenset(
    {"ChaosReport", "PlanResult", "run_chaos", "run_plan", "select_scenes"}
)


def __getattr__(name: str):
    if name in _CHAOS_EXPORTS:
        from repro.faults import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ChaosReport",
    "CourtFault",
    "FaultError",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectionRecord",
    "PlanResult",
    "RetryPolicy",
    "StorageFault",
    "TransientReadError",
    "run_chaos",
    "run_plan",
    "run_with_retries",
    "select_scenes",
]
