"""Ablation A2: watermark chip length vs network jitter.

The DSSS design trade-off: longer chips integrate away per-packet jitter
but stretch the observation window; higher relay jitter degrades short
chips first.  The benchmark sweeps a (chip duration x jitter) grid and
checks the expected shape: detection margin falls as jitter rises, and
longer chips hold a positive margin deeper into the jitter range.
"""

import pytest

from repro.anonymity import OnionNetwork
from repro.netsim import Simulator
from repro.techniques import (
    FlowWatermarker,
    PnCode,
    PoissonFlow,
    WatermarkConfig,
    WatermarkDetector,
)

START = 1.0


def margin_for(chip_duration: float, jitter: float, seed: int) -> float:
    """Detection margin (target correlation minus best decoy) for one run."""
    code = PnCode.msequence(7)
    config = WatermarkConfig(
        chip_duration=chip_duration, base_rate=25.0, amplitude=0.3
    )
    sim = Simulator()
    network = OnionNetwork(
        sim, n_relays=25, seed=seed, base_delay=0.02, jitter=jitter
    )
    circuits = [
        network.build_circuit(f"cand-{i}", "server") for i in range(4)
    ]
    watermarker = FlowWatermarker(code, config, seed=seed + 1)
    watermarker.embed(circuits[0], start=START)
    for index, circuit in enumerate(circuits[1:], 1):
        PoissonFlow(rate=25.0, seed=seed + 5 + index).schedule(
            circuit, start=START, duration=watermarker.duration
        )
    sim.run()
    detector = WatermarkDetector(code, config)
    results = [
        detector.detect(
            c.client_arrival_times(),
            start=START,
            max_offset=max(1.0, 10 * jitter * 0.02 + 0.5),
        )
        for c in circuits
    ]
    return results[0].correlation - max(r.correlation for r in results[1:])


@pytest.mark.parametrize("chip_duration", [0.1, 0.4])
def test_chip_length_vs_jitter(benchmark, chip_duration):
    jitters = [0.0, 2.0, 8.0]

    def sweep():
        return {j: margin_for(chip_duration, j, seed=900) for j in jitters}

    margins = benchmark.pedantic(sweep, rounds=1)
    print(f"\nchip={chip_duration}s: " + ", ".join(
        f"jitter={j} -> margin {m:+.3f}" for j, m in margins.items()
    ))
    # Shape: margin positive with no jitter, and weakly decreasing.
    assert margins[0.0] > 0.2
    assert margins[8.0] <= margins[0.0] + 0.05


def test_long_chips_beat_short_chips_under_heavy_jitter(benchmark):
    """At heavy jitter the 0.4 s chips must outperform the 0.1 s chips."""
    heavy = 8.0

    def compare():
        short = margin_for(0.1, heavy, seed=901)
        long_ = margin_for(0.4, heavy, seed=901)
        return short, long_

    short, long_ = benchmark.pedantic(compare, rounds=1)
    print(f"\nheavy jitter: short-chip margin {short:+.3f}, "
          f"long-chip margin {long_:+.3f}")
    assert long_ > short
