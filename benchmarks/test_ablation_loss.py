"""Ablation A6: watermark robustness to packet loss.

Anonymity-network paths drop cells under congestion.  DSSS despreading
integrates over the whole code, so moderate uniform loss thins every chip
proportionally and the *normalized* correlation barely moves; only heavy
loss starves the per-chip counts enough to matter.
"""

import pytest

from repro.anonymity import OnionNetwork
from repro.netsim import Simulator
from repro.techniques import (
    FlowWatermarker,
    PnCode,
    PoissonFlow,
    WatermarkConfig,
    WatermarkDetector,
)

START = 1.0
CONFIG = WatermarkConfig(chip_duration=0.5, base_rate=25.0, amplitude=0.3)


def run_loss_trial(loss_rate: float, seed: int):
    code = PnCode.msequence(7)
    sim = Simulator()
    network = OnionNetwork(
        sim, n_relays=20, seed=seed, loss_rate=loss_rate
    )
    target = network.build_circuit("suspect", "server")
    decoy = network.build_circuit("bystander", "server")
    watermarker = FlowWatermarker(code, CONFIG, seed=seed + 1)
    watermarker.embed(target, start=START)
    PoissonFlow(rate=CONFIG.base_rate, seed=seed + 2).schedule(
        decoy, start=START, duration=watermarker.duration
    )
    sim.run()
    detector = WatermarkDetector(code, CONFIG)
    target_result = detector.detect(
        target.client_arrival_times(), start=START, max_offset=0.8
    )
    decoy_result = detector.detect(
        decoy.client_arrival_times(), start=START, max_offset=0.8
    )
    delivered = len(target.client_arrival_times())
    return target_result, decoy_result, delivered, target.cells_lost


@pytest.mark.parametrize("loss_rate", [0.0, 0.1, 0.3, 0.6])
def test_watermark_vs_loss(benchmark, loss_rate):
    target, decoy, delivered, lost = benchmark.pedantic(
        run_loss_trial, args=(loss_rate, 910), rounds=1
    )
    margin = target.correlation - decoy.correlation
    print(
        f"\nloss={loss_rate:.0%}: delivered={delivered} lost={lost} "
        f"target corr={target.correlation:+.3f} margin={margin:+.3f} "
        f"detected={target.detected}"
    )
    if loss_rate <= 0.3:
        # DSSS shrugs off moderate uniform loss.
        assert target.detected
        assert not decoy.detected


def test_loss_shape(benchmark):
    """Correlation degrades gently: 30% loss costs < half the margin."""

    def compare():
        clean, *_ = run_loss_trial(0.0, 911)
        lossy, *_ = run_loss_trial(0.3, 911)
        return clean.correlation, lossy.correlation

    clean_corr, lossy_corr = benchmark.pedantic(compare, rounds=1)
    print(f"\nclean corr {clean_corr:+.3f} vs 30%-loss corr {lossy_corr:+.3f}")
    assert lossy_corr > clean_corr * 0.5
