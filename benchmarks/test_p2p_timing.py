"""Experiment IV.A: the anonymous-P2P timing investigation.

Sweeps the overlay size and reports source-identification precision and
recall; the paper's claim is that the technique works (high precision)
*without any legal process*, so the benchmark also verifies the advisor's
classification and that the evidence survives suppression.
"""

import random

import pytest

from repro.anonymity import P2POverlay
from repro.core import Admissibility, ProcessKind
from repro.court import SuppressionHearing
from repro.evidence import EvidenceItem
from repro.techniques import OneSwarmTimingAttack

FILE_ID = "target-file"


def run_investigation(n_peers: int, seed: int, trials: int = 10):
    """Build an overlay, run the attack, score it."""
    overlay = P2POverlay(seed=seed)
    overlay.random_topology(
        n_peers=n_peers,
        mean_degree=4.0,
        source_fraction=0.12,
        file_id=FILE_ID,
    )
    overlay.add_peer("le")
    rng = random.Random(seed + 1)
    n_friends = min(12, n_peers // 4)
    for name in rng.sample(
        [p for p in overlay.peers if p != "le"], n_friends
    ):
        overlay.befriend("le", name)
    attack = OneSwarmTimingAttack()
    result = attack.investigate(overlay, "le", FILE_ID, trials=trials)
    metrics = attack.score(result, overlay)
    return overlay, result, metrics


@pytest.mark.parametrize("n_peers", [50, 100, 200, 400])
def test_timing_attack_accuracy(benchmark, n_peers):
    overlay, result, metrics = benchmark.pedantic(
        run_investigation, args=(n_peers, 1000 + n_peers), rounds=1
    )
    print(
        f"\npeers={n_peers}: precision={metrics.precision:.2f} "
        f"recall={metrics.recall:.2f} f1={metrics.f1:.2f} "
        f"(tp={metrics.true_positives} fp={metrics.false_positives} "
        f"fn={metrics.false_negatives} tn={metrics.true_negatives})"
    )
    # Shape target: near-perfect source identification at every size.
    assert metrics.precision >= 0.9
    assert metrics.recall >= 0.9


def test_timing_attack_needs_no_process():
    """Paper section IV.A: 'absolutely has no law restrictions'."""
    assessment = OneSwarmTimingAttack().assess()
    assert assessment.required_process is ProcessKind.NONE


def test_timing_attack_evidence_admissible(engine):
    """Evidence gathered with the technique survives suppression."""
    overlay, result, metrics = run_investigation(100, seed=7)
    attack = OneSwarmTimingAttack()
    items = [
        EvidenceItem(
            description=f"timing classification of {name}",
            content=f"{name} classified as source",
            acquired_by="le",
            acquired_at=overlay.sim.now,
            action=attack.required_actions()[1],
        )
        for name in result.identified_sources()
    ]
    assert items, "the attack should identify at least one source"
    outcome = SuppressionHearing(engine).hear(items)
    assert all(
        outcome.outcome_for(item) is Admissibility.ADMISSIBLE
        for item in items
    )
