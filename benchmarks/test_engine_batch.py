"""Batched + memoized ruling benchmark: the engine's bulk hot path.

The production story (gating every acquisition under heavy traffic)
rests on ``evaluate_many`` over a cached engine.  This benchmark pins the
two claims ``repro bench`` reports on the same 5k corpus:

* steady state (warm cache) beats the uncached per-action loop outright;
* memoization is invisible — cached and uncached rulings are identical.
"""

import time

from repro.core import ComplianceEngine, RulingCache
from repro.workloads import action_corpus

CORPUS_SIZE = 5000
SEED = 99


def test_cached_batch_beats_uncached_loop(benchmark):
    corpus = action_corpus(CORPUS_SIZE, seed=SEED)
    uncached = ComplianceEngine()
    cached = ComplianceEngine(cache=RulingCache(maxsize=2 * CORPUS_SIZE))
    cached.evaluate_many(corpus)  # warm the cache: steady-state behaviour

    start = time.perf_counter()
    for action in corpus:
        uncached.evaluate(action)
    uncached_s = time.perf_counter() - start

    rulings = benchmark.pedantic(
        cached.evaluate_many, args=(corpus,), rounds=1
    )
    start = time.perf_counter()
    cached.evaluate_many(corpus)
    hot_s = time.perf_counter() - start

    assert len(rulings) == CORPUS_SIZE
    assert hot_s < uncached_s, (
        f"warm cached batch ({hot_s:.3f}s) should beat the uncached "
        f"per-action loop ({uncached_s:.3f}s)"
    )


def test_hot_cache_hit_rate_is_total(benchmark):
    corpus = action_corpus(CORPUS_SIZE, seed=SEED)
    engine = ComplianceEngine(cache=RulingCache(maxsize=2 * CORPUS_SIZE))
    engine.evaluate_many(corpus)
    engine.cache_stats.reset()
    benchmark.pedantic(engine.evaluate_many, args=(corpus,), rounds=1)
    assert engine.cache_stats.hit_rate == 1.0
    assert engine.cache_stats.evictions == 0


def test_cached_rulings_identical_to_uncached(benchmark):
    corpus = action_corpus(CORPUS_SIZE, seed=SEED)
    uncached = ComplianceEngine()
    cached = ComplianceEngine(cache=RulingCache(maxsize=2 * CORPUS_SIZE))

    def both():
        return (
            [r.to_dict() for r in uncached.evaluate_many(corpus)],
            [r.to_dict() for r in cached.evaluate_many(corpus)],
        )

    fresh_payloads, cached_payloads = benchmark.pedantic(both, rounds=1)
    assert fresh_payloads == cached_payloads
