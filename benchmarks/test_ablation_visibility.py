"""Ablation A3: why a *long PN code* — adversary visibility.

The paper's cited watermark [93] spreads its modulation with a long PN
code instead of a periodic pattern.  This ablation quantifies the payoff:
both watermarks are detectable by their owner at the same amplitude, but
the adversary's autocorrelation periodicity test flags the square wave
while the PN watermark stays under the noise floor.
"""

from repro.netsim import Simulator
from repro.techniques import (
    AutocorrelationVisibilityTest,
    FlowWatermarker,
    PnCode,
    PoissonFlow,
    SquareWaveConfig,
    SquareWaveTechnique,
    WatermarkConfig,
    WatermarkDetector,
)


class Sink:
    """Directly attached observation point (no network)."""

    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def send_downstream(self, size=512):
        self.arrivals.append(self.sim.now)


def run_visibility_grid(n_trials: int = 5):
    """Owner-detection and adversary-visibility rates for both schemes."""
    adversary = AutocorrelationVisibilityTest(window=0.5, max_lag=64)
    results = {
        "square": {"owner": 0, "adversary": 0},
        "pn": {"owner": 0, "adversary": 0},
        "plain": {"adversary": 0},
    }

    for trial in range(n_trials):
        # Square wave.
        sq = SquareWaveTechnique(
            SquareWaveConfig(
                period=4.0, n_periods=16, base_rate=20.0, amplitude=0.3
            )
        )
        sim = Simulator()
        sink = Sink(sim)
        sq.watermarker(seed=100 + trial).embed(sink, start=0.0)
        sim.run()
        results["square"]["owner"] += sq.detector().detect(
            sink.arrivals, start=0.0
        ).detected
        results["square"]["adversary"] += adversary.test(
            sink.arrivals, start=0.0, duration=sq.config.duration
        ).watermark_suspected

        # PN / DSSS.
        code = PnCode.msequence(7)
        config = WatermarkConfig(
            chip_duration=0.5, base_rate=20.0, amplitude=0.3
        )
        sim = Simulator()
        sink = Sink(sim)
        FlowWatermarker(code, config, seed=200 + trial).embed(
            sink, start=0.0
        )
        sim.run()
        results["pn"]["owner"] += WatermarkDetector(code, config).detect(
            sink.arrivals, start=0.0
        ).detected
        results["pn"]["adversary"] += adversary.test(
            sink.arrivals,
            start=0.0,
            duration=len(code) * config.chip_duration,
        ).watermark_suspected

        # Unwatermarked control.
        sim = Simulator()
        sink = Sink(sim)
        PoissonFlow(rate=20.0, seed=300 + trial).schedule(sink, 0.0, 64.0)
        sim.run()
        results["plain"]["adversary"] += adversary.test(
            sink.arrivals, start=0.0, duration=64.0
        ).watermark_suspected

    return results


def test_pn_invisible_square_visible(benchmark):
    n_trials = 5
    results = benchmark.pedantic(
        run_visibility_grid, args=(n_trials,), rounds=1
    )
    print(
        f"\nowner detection    — square: {results['square']['owner']}"
        f"/{n_trials}, pn: {results['pn']['owner']}/{n_trials}"
    )
    print(
        f"adversary flags    — square: {results['square']['adversary']}"
        f"/{n_trials}, pn: {results['pn']['adversary']}/{n_trials}, "
        f"plain: {results['plain']['adversary']}/{n_trials}"
    )
    # Both schemes work for their owner...
    assert results["square"]["owner"] == n_trials
    assert results["pn"]["owner"] == n_trials
    # ...but only the square wave betrays itself to the adversary.
    assert results["square"]["adversary"] >= n_trials - 1
    assert results["pn"]["adversary"] <= 1
    assert results["plain"]["adversary"] <= 1
