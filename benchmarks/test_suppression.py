"""Experiment "supp.": the exclusionary rule across every Table 1 scene.

Runs all twenty scenes through the end-to-end pipeline twice:

* **warrantless** — suppression rate must be 100% for scenes the paper
  says need process, 0% for scenes that need none;
* **with process obtained first** — suppression rate must be 0% across
  the board.
"""

from repro.core import build_table1
from repro.investigation import (
    InvestigationPipeline,
    format_suppression_outcomes,
    suppression_split,
)


def run_both_ways():
    pipeline = InvestigationPipeline()
    scenarios = build_table1()
    warrantless = pipeline.run_all(scenarios, obtain_process=False)
    compliant = pipeline.run_all(scenarios, obtain_process=True)
    return warrantless, compliant


def test_suppression_split(benchmark):
    warrantless, compliant = benchmark(run_both_ways)

    print("\nwarrantless runs:")
    print(format_suppression_outcomes(warrantless))
    need_rate, no_need_rate = suppression_split(warrantless)
    print(
        f"suppression: {need_rate:.0%} of process-requiring scenes, "
        f"{no_need_rate:.0%} of no-process scenes"
    )
    assert need_rate == 1.0
    assert no_need_rate == 0.0

    comp_need, comp_no_need = suppression_split(compliant)
    print(
        f"with process obtained first: {comp_need:.0%} / {comp_no_need:.0%}"
    )
    assert comp_need == 0.0
    assert comp_no_need == 0.0


def test_process_actually_issued_when_sought(benchmark):
    """With a full showing on file, every needed instrument issues."""
    pipeline = InvestigationPipeline()
    scenarios = build_table1()
    outcomes = benchmark.pedantic(
        pipeline.run_all, args=(scenarios, True), rounds=1
    )
    for outcome in outcomes:
        if outcome.ruling.needs_process:
            assert outcome.process_obtained.satisfies(
                outcome.ruling.required_process
            ), (
                f"scene {outcome.scenario.number}: sought "
                f"{outcome.ruling.required_process.display_name} but "
                f"obtained {outcome.process_obtained.display_name}"
            )
