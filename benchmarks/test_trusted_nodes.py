"""Experiment IV.A-extension: sources vs "trusted nodes of the sources".

The paper's description of the OneSwarm attack: "law enforcement officers
can identify whether the neighbors are sources or trusted nodes of the
sources."  This benchmark measures distance estimation on random
overlays: exact-match rate at distances 0 (source) and 1 (trusted node),
plus overall mean absolute error.
"""

import random

import pytest

from repro.anonymity import P2POverlay
from repro.techniques import OneSwarmTimingAttack

FILE_ID = "target-file"


def run_distance_experiment(n_peers: int, seed: int):
    overlay = P2POverlay(seed=seed)
    overlay.random_topology(
        n_peers=n_peers,
        mean_degree=3.0,
        source_fraction=0.15,
        file_id=FILE_ID,
    )
    overlay.add_peer("le")
    rng = random.Random(seed + 1)
    for name in rng.sample(
        [p for p in overlay.peers if p != "le"], min(12, n_peers // 4)
    ):
        overlay.befriend("le", name)
    attack = OneSwarmTimingAttack()
    result = attack.investigate(overlay, "le", FILE_ID, trials=12, ttl=4)

    near_exact = near_total = 0
    abs_errors = []
    for assessment in result.assessments:
        truth = overlay.distance_to_source(assessment.name, FILE_ID)
        if truth is None:
            continue
        # Response timing reflects the nearest *responding* source within
        # the TTL, which for reachable neighbours matches BFS distance.
        abs_errors.append(abs(assessment.estimated_distance - truth))
        if truth <= 1:
            near_total += 1
            near_exact += assessment.estimated_distance == truth
    mae = sum(abs_errors) / len(abs_errors) if abs_errors else 0.0
    return near_exact, near_total, mae, len(abs_errors)


@pytest.mark.parametrize("n_peers", [60, 150])
def test_trusted_node_identification(benchmark, n_peers):
    exact, total, mae, assessed = benchmark.pedantic(
        run_distance_experiment, args=(n_peers, 2024 + n_peers), rounds=1
    )
    print(
        f"\npeers={n_peers}: distance 0/1 exact {exact}/{total}, "
        f"overall MAE {mae:.2f} over {assessed} neighbours"
    )
    # Shape target: sources and trusted nodes are reliably separated.
    if total:
        assert exact / total >= 0.8
    assert mae <= 1.0
