"""Ablation A1: engine rule-pipeline properties.

Design probes for the compliance engine itself:

* **determinism** — repeated evaluation of the same scene is identical;
* **monotonicity** — granting a *stronger* process never makes a lawful
  action unlawful (``Ruling.permits`` is monotone in the held process);
* **exception subtraction** — removing a scene's exceptions can only
  raise (never lower) the required process;
* throughput of single-scene evaluation (the engine is meant to gate
  every acquisition in a live pipeline, so per-call cost matters).
"""

import dataclasses

from repro.core import (
    ComplianceEngine,
    ConsentFacts,
    DoctrineFacts,
    ProcessKind,
    build_table1,
)


def test_engine_determinism(engine, benchmark):
    scenarios = build_table1()

    def evaluate_twice():
        first = [engine.evaluate(s.action) for s in scenarios]
        second = [engine.evaluate(s.action) for s in scenarios]
        return first, second

    first, second = benchmark.pedantic(evaluate_twice, rounds=1)
    for a, b in zip(first, second):
        assert a.required_process is b.required_process
        assert a.steps == b.steps


def test_held_process_monotonicity(engine):
    """If a weak process satisfies a ruling, every stronger one does too."""
    ladder = list(ProcessKind)
    for scenario in build_table1():
        ruling = engine.evaluate(scenario.action)
        permitted = [ruling.permits(p) for p in ladder]
        # once permitted, always permitted up the ladder
        first_true = permitted.index(True) if True in permitted else None
        assert first_true is not None, "a wiretap order satisfies anything"
        assert all(permitted[first_true:])


def test_stripping_exceptions_never_lowers_requirement(engine):
    """Ablating consent/doctrine can only raise the required process."""
    for scenario in build_table1():
        action = scenario.action
        stripped = dataclasses.replace(
            action,
            consent=ConsentFacts(),
            doctrine=DoctrineFacts(
                # keep facts that *create* requirements, drop excusals
                hash_search_of_lawful_media=(
                    action.doctrine.hash_search_of_lawful_media
                ),
            ),
        )
        with_exceptions = engine.evaluate(action).required_process
        without = engine.evaluate(stripped).required_process
        assert without >= with_exceptions, (
            f"scene {scenario.number}: stripping exceptions lowered the "
            f"requirement from {with_exceptions} to {without}"
        )


def test_single_evaluation_throughput(engine, benchmark):
    """Per-call engine latency on the most complex scene (full trace)."""
    scenario = build_table1()[15]  # scene 16: consent + doctrine + REP
    ruling = benchmark(engine.evaluate, scenario.action)
    assert ruling.needs_process


def test_engine_construction_cost(benchmark):
    """Engine + registry construction (once per process, ideally)."""
    engine = benchmark(ComplianceEngine)
    assert len(engine.registry) > 25
