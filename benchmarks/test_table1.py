"""Experiment "Table 1": regenerate the paper's only table.

Replays all twenty digital crime scenes through the compliance engine and
checks the engine's Need / No-need answer against the paper's published
answer, row by row.  The benchmark measures full-table evaluation
throughput; the assertions demand 20/20 agreement.
"""

from repro.core import build_table1
from repro.investigation import format_table1


def evaluate_all(engine, scenarios):
    """Evaluate every scene; returns (ruling, scenario) pairs."""
    return [(engine.evaluate(s.action), s) for s in scenarios]


def test_table1_reproduction(engine, benchmark):
    scenarios = build_table1()
    results = benchmark(evaluate_all, engine, scenarios)

    assert len(results) == 20
    mismatches = [
        (scenario.number, scenario.paper_answer, ruling.required_process)
        for ruling, scenario in results
        if ruling.needs_process != scenario.paper_needs_process
    ]
    print()
    print(format_table1(scenarios, engine))
    assert not mismatches, f"Table 1 disagreements: {mismatches}"


def test_extended_catalogue_reproduction(engine, benchmark):
    """The paper's prose examples (sections II-III) as a second test set."""
    from repro.core import build_extended_catalogue

    catalogue = build_extended_catalogue()
    rulings = benchmark(
        lambda: [(engine.evaluate(s.action), s) for s in catalogue]
    )
    mismatches = [
        (scene.scene_id, scene.basis)
        for ruling, scene in rulings
        if ruling.required_process is not scene.expected_process
    ]
    print(f"\nextended catalogue: {len(catalogue) - len(mismatches)}"
          f"/{len(catalogue)} scenes match the cited authority")
    assert not mismatches


def test_table1_starred_rows_cite_authors_judgment(engine):
    """Rows the paper marks (*) must cite the authors' own judgment."""
    for scenario in build_table1():
        if not scenario.starred:
            continue
        ruling = engine.evaluate(scenario.action)
        cited = {
            key for step in ruling.steps for key in step.authorities
        }
        assert "paper_judgment" in cited, (
            f"scene {scenario.number} is starred but does not cite the "
            f"paper's own judgment"
        )
