"""Ablation A5: watermark vs. circuit rotation.

Tor clients rotate circuits periodically.  Each rotation swaps the path's
base delay, smearing the watermark's chip alignment across segments.  The
ablation sweeps the rotation interval: a no-rotation channel detects
cleanly; rotation faster than a few chips erodes the margin.
"""

import pytest

from repro.anonymity import OnionNetwork, RotatingChannel
from repro.netsim import Simulator
from repro.techniques import (
    FlowWatermarker,
    PnCode,
    PoissonFlow,
    WatermarkConfig,
)

START = 1.0
CONFIG = WatermarkConfig(chip_duration=0.5, base_rate=25.0, amplitude=0.3)


def run_rotation_trial(rotation_interval: float | None, seed: int):
    """Embed through a (possibly rotating) channel; return the margin.

    The rotation pool is heterogeneous — real circuits differ in length
    and relay load, so their end-to-end delays differ by hundreds of
    milliseconds; that delay jump at each rotation is what smears the
    chip alignment.
    """
    code = PnCode.msequence(7)
    sim = Simulator()
    network = OnionNetwork(sim, n_relays=25, seed=seed)
    # Heterogeneous pools: separate relay populations with very different
    # per-relay delays (fast/medium/slow paths).
    pools = [
        OnionNetwork(sim, n_relays=6, seed=seed + k, base_delay=delay)
        for k, delay in enumerate((0.02, 0.25, 0.55))
    ]
    if rotation_interval is None:
        channel = pools[0].build_circuit("suspect", "server")
        arrivals_of = channel.client_arrival_times
    else:
        circuits = [
            pool.build_circuit("suspect", "server") for pool in pools
        ]
        channel = RotatingChannel(circuits, rotation_interval)
        arrivals_of = channel.client_arrival_times
    decoy = network.build_circuit("bystander", "server")

    watermarker = FlowWatermarker(code, CONFIG, seed=seed + 1)
    watermarker.embed(channel, start=START)
    PoissonFlow(rate=CONFIG.base_rate, seed=seed + 2).schedule(
        decoy, start=START, duration=watermarker.duration
    )
    sim.run()

    from repro.techniques import WatermarkDetector

    detector = WatermarkDetector(code, CONFIG)
    target = detector.detect(
        arrivals_of(), start=START, max_offset=1.5, offset_step=0.05
    )
    decoy_result = detector.detect(
        decoy.client_arrival_times(),
        start=START,
        max_offset=1.5,
        offset_step=0.05,
    )
    return target, decoy_result


CASES = {
    "no-rotation": None,
    "rotate-30s": 30.0,
    "rotate-10s": 10.0,
    "rotate-2s": 2.0,
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_rotation_impact(benchmark, case):
    target, decoy = benchmark.pedantic(
        run_rotation_trial, args=(CASES[case], 880), rounds=1
    )
    margin = target.correlation - decoy.correlation
    print(
        f"\n{case}: target corr={target.correlation:+.3f} "
        f"margin={margin:+.3f} detected={target.detected}"
    )
    if case in ("no-rotation", "rotate-30s"):
        # Rotation slower than the embedding or spanning few segments
        # leaves enough aligned chips to detect.
        assert target.detected


def test_rotation_ordering(benchmark):
    """Margins must not improve as rotation gets faster."""

    def sweep():
        margins = {}
        for case, interval in CASES.items():
            target, decoy = run_rotation_trial(interval, 881)
            margins[case] = target.correlation - decoy.correlation
        return margins

    margins = benchmark.pedantic(sweep, rounds=1)
    print("\n" + ", ".join(f"{k}={v:+.3f}" for k, v in margins.items()))
    assert margins["no-rotation"] > margins["rotate-2s"]
