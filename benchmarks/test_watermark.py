"""Experiment IV.B: the long-PN-code DSSS flow watermark.

Three results, matching the shape of the paper's analysis:

* detection rate rises with PN code length (longer spreading codes buy
  robustness) while false positives stay controlled;
* the watermark keeps identifying the right subscriber as the candidate
  population grows;
* the active watermark beats passive packet-count correlation when the
  server-side observer sees only the *aggregate* encrypted egress (the
  realistic anonymity-network vantage), and the run is lawful with a
  court order but suppressed without one.
"""

import pytest

from repro.anonymity import OnionNetwork
from repro.core import ProcessKind
from repro.court import SuppressionHearing
from repro.evidence import EvidenceItem
from repro.netsim import Simulator
from repro.techniques import (
    FlowWatermarker,
    PacketCountingCorrelator,
    PnCode,
    PoissonFlow,
    WatermarkConfig,
    WatermarkDetector,
)

CONFIG = WatermarkConfig(chip_duration=0.4, base_rate=25.0, amplitude=0.3)
START = 1.0


def run_trial(register_length: int, n_candidates: int, seed: int):
    """One embed/detect trial; returns per-candidate detection results."""
    code = PnCode.msequence(register_length)
    sim = Simulator()
    network = OnionNetwork(sim, n_relays=25, seed=seed)
    circuits = [
        network.build_circuit(f"cand-{i}", "server")
        for i in range(n_candidates)
    ]
    watermarker = FlowWatermarker(code, CONFIG, seed=seed + 1)
    watermarker.embed(circuits[0], start=START)
    for index, circuit in enumerate(circuits[1:], 1):
        PoissonFlow(rate=CONFIG.base_rate, seed=seed + 10 + index).schedule(
            circuit, start=START, duration=watermarker.duration
        )
    sim.run()
    detector = WatermarkDetector(code, CONFIG)
    return [
        detector.detect(c.client_arrival_times(), start=START, max_offset=0.8)
        for c in circuits
    ]


@pytest.mark.parametrize("register_length", [6, 7, 8])
def test_detection_vs_code_length(benchmark, register_length):
    """Longer PN codes: target detected, decoys not."""
    n_trials = 4
    results = benchmark.pedantic(
        lambda: [
            run_trial(register_length, n_candidates=6, seed=100 * t + 7)
            for t in range(n_trials)
        ],
        rounds=1,
    )
    hits = sum(trial[0].detected for trial in results)
    false_alarms = sum(
        any(r.detected for r in trial[1:]) for trial in results
    )
    code_length = 2**register_length - 1
    print(
        f"\nPN length {code_length}: detection {hits}/{n_trials}, "
        f"trials with false alarms {false_alarms}/{n_trials}, "
        f"target corr ~{results[0][0].correlation:.3f} vs "
        f"threshold {results[0][0].threshold:.3f}"
    )
    assert hits == n_trials, "watermarked flow must always be detected"
    assert false_alarms == 0, "no decoy flow may trip the detector"


@pytest.mark.parametrize("n_candidates", [4, 8, 16])
def test_detection_vs_population(benchmark, n_candidates):
    """The right subscriber is identified as the decoy pool grows."""
    results = benchmark.pedantic(
        run_trial, args=(7, n_candidates, 42), rounds=1
    )
    detected = [i for i, r in enumerate(results) if r.detected]
    best = max(range(len(results)), key=lambda i: results[i].correlation)
    print(
        f"\ncandidates={n_candidates}: detected={detected}, "
        f"argmax={best}, target corr={results[0].correlation:.3f}"
    )
    assert detected == [0]
    assert best == 0


def aggregate_reference_comparison(seed: int, n_candidates: int = 8):
    """Watermark vs passive correlation with an aggregate reference.

    The passive observer at the seized server sees one encrypted egress
    pipe: all flows mixed.  The watermarker, controlling the application,
    modulates just the target session.
    """
    code = PnCode.msequence(7)
    sim = Simulator()
    network = OnionNetwork(sim, n_relays=25, seed=seed)
    circuits = [
        network.build_circuit(f"cand-{i}", "server")
        for i in range(n_candidates)
    ]
    watermarker = FlowWatermarker(code, CONFIG, seed=seed + 1)
    watermarker.embed(circuits[0], start=START)
    for index, circuit in enumerate(circuits[1:], 1):
        PoissonFlow(rate=CONFIG.base_rate, seed=seed + 20 + index).schedule(
            circuit, start=START, duration=watermarker.duration
        )
    sim.run()

    detector = WatermarkDetector(code, CONFIG)
    wm_results = [
        detector.detect(c.client_arrival_times(), start=START, max_offset=0.8)
        for c in circuits
    ]
    wm_pick = max(
        range(n_candidates), key=lambda i: wm_results[i].correlation
    )
    wm_separation = wm_results[0].correlation - max(
        r.correlation for r in wm_results[1:]
    )

    aggregate = sorted(
        t for c in circuits for t in c.server_departure_times()
    )
    baseline = PacketCountingCorrelator(
        window=CONFIG.chip_duration, max_offset=0.8
    )
    base_results = [
        baseline.correlate(
            aggregate,
            c.client_arrival_times(),
            start=START,
            duration=watermarker.duration,
        )
        for c in circuits
    ]
    base_pick = max(
        range(n_candidates), key=lambda i: base_results[i].correlation
    )
    base_separation = base_results[0].correlation - max(
        r.correlation for r in base_results[1:]
    )
    return wm_pick, wm_separation, base_pick, base_separation


def test_watermark_beats_baseline(benchmark):
    n_trials = 5
    outcomes = benchmark.pedantic(
        lambda: [
            aggregate_reference_comparison(seed=300 + 17 * t)
            for t in range(n_trials)
        ],
        rounds=1,
    )
    wm_correct = sum(wm_pick == 0 for wm_pick, _, _, _ in outcomes)
    base_correct = sum(base_pick == 0 for _, _, base_pick, _ in outcomes)
    wm_sep = sum(s for _, s, _, _ in outcomes) / n_trials
    base_sep = sum(s for _, _, _, s in outcomes) / n_trials
    print(
        f"\nwatermark: {wm_correct}/{n_trials} correct, mean separation "
        f"{wm_sep:+.3f}; baseline (aggregate reference): "
        f"{base_correct}/{n_trials} correct, mean separation {base_sep:+.3f}"
    )
    assert wm_correct == n_trials
    assert wm_correct >= base_correct
    assert wm_sep > base_sep, (
        "the active watermark must separate the target from decoys more "
        "cleanly than passive correlation against the aggregate egress"
    )


def test_watermark_legal_gate(engine):
    """Court-ordered run admitted; warrantless run suppressed."""
    from repro.techniques import DsssWatermarkTechnique

    technique = DsssWatermarkTechnique()
    observe = technique.required_actions()[1]
    hearing = SuppressionHearing(engine)

    def offer(held: ProcessKind):
        item = EvidenceItem(
            description="watermark rate observations",
            content="cand-0 carries the watermark",
            acquired_by="le",
            acquired_at=0.0,
            action=observe,
            process_held=held,
        )
        return hearing.hear([item]).suppression_rate

    assert offer(ProcessKind.NONE) == 1.0
    assert offer(ProcessKind.COURT_ORDER) == 0.0
