"""Engine scale benchmark: throughput and stability on a random corpus.

The engine is designed to gate every acquisition in a live pipeline, so
its per-call cost and its stability across a large, varied corpus matter.
"""

from repro.core import ComplianceEngine, ProcessKind
from repro.workloads import (
    action_corpus,
    labeled_corpus,
    process_distribution,
)

CORPUS_SIZE = 5000


def test_bulk_evaluation_throughput(benchmark):
    engine = ComplianceEngine()
    corpus = action_corpus(CORPUS_SIZE, seed=99)

    def evaluate_all():
        return [engine.evaluate(action) for action in corpus]

    rulings = benchmark.pedantic(evaluate_all, rounds=1)
    assert len(rulings) == CORPUS_SIZE


def test_corpus_label_distribution(benchmark):
    """The corpus exercises every process level, and labels are stable."""
    labeled = benchmark.pedantic(
        labeled_corpus, args=(CORPUS_SIZE, 99), rounds=1
    )
    distribution = process_distribution(labeled)
    print("\nrequired-process distribution over the random corpus:")
    for kind in ProcessKind:
        share = distribution[kind] / CORPUS_SIZE
        print(f"  {kind.display_name:28s} {distribution[kind]:5d} ({share:5.1%})")
    # Every rung of the ladder must appear: the corpus is a real workout.
    assert all(distribution[kind] > 0 for kind in ProcessKind)

    # Determinism at scale: a second pass produces identical labels.
    second = labeled_corpus(CORPUS_SIZE, 99)
    assert [x.required_process for x in labeled] == [
        x.required_process for x in second
    ]
