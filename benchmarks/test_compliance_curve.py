"""Experiment "thesis curve": prosecution success vs. officer compliance.

The paper's core argument aggregated into one curve: across randomized
Table 1 cases, the probability a prosecution retains admissible evidence
rises monotonically with the probability the officer obtains the required
process first, from ~50% (only the no-process scenes survive) to 100%.
"""

from repro.investigation.campaign import compliance_curve

PROBABILITIES = [0.0, 0.25, 0.5, 0.75, 1.0]


def test_compliance_curve(benchmark):
    curve = benchmark.pedantic(
        compliance_curve,
        kwargs={"probabilities": PROBABILITIES, "n_cases": 200, "seed": 9},
        rounds=1,
    )
    print("\nprosecution success rate vs compliance probability:")
    for p in PROBABILITIES:
        bar = "#" * int(curve[p] * 40)
        print(f"  p={p:4.2f}: {curve[p]:6.1%} {bar}")

    rates = [curve[p] for p in PROBABILITIES]
    assert rates == sorted(rates), "curve must be monotone"
    assert curve[1.0] == 1.0, "full compliance never loses evidence"
    assert 0.35 <= curve[0.0] <= 0.65, (
        "zero compliance should succeed only on the ~half of Table 1 "
        "that needs no process"
    )
