"""Ablation A4: watermark robustness against batching mixes.

Anonymity networks can deploy batching mixes as a timing defence.  This
ablation passes the watermarked flow's arrivals through each strategy and
measures the surviving detection margin.  Expected shape: the watermark
survives no-mix and fine-grained batching easily, degrades under coarse
timed mixes as the tick approaches the chip duration, and suffers most
under the pool mix's randomized holding.
"""

import pytest

from repro.anonymity import (
    NoMix,
    OnionNetwork,
    PoolMix,
    ThresholdMix,
    TimedMix,
)
from repro.netsim import Simulator
from repro.techniques import (
    FlowWatermarker,
    PnCode,
    PoissonFlow,
    WatermarkConfig,
    WatermarkDetector,
)

START = 1.0
CONFIG = WatermarkConfig(chip_duration=0.5, base_rate=25.0, amplitude=0.3)


def run_through_mix(mix, seed: int):
    """One trial: watermark + decoy through the onion net, then the mix."""
    code = PnCode.msequence(7)
    sim = Simulator()
    network = OnionNetwork(sim, n_relays=20, seed=seed)
    target = network.build_circuit("suspect", "server")
    decoy = network.build_circuit("bystander", "server")
    watermarker = FlowWatermarker(code, CONFIG, seed=seed + 1)
    watermarker.embed(target, start=START)
    PoissonFlow(rate=CONFIG.base_rate, seed=seed + 2).schedule(
        decoy, start=START, duration=watermarker.duration
    )
    sim.run()

    detector = WatermarkDetector(code, CONFIG)
    target_result = detector.detect(
        mix.apply(target.client_arrival_times()),
        start=START,
        max_offset=2.0,
        offset_step=0.05,
    )
    decoy_result = detector.detect(
        mix.apply(decoy.client_arrival_times()),
        start=START,
        max_offset=2.0,
        offset_step=0.05,
    )
    return target_result, decoy_result


MIXES = {
    "no-mix": lambda: NoMix(),
    "threshold-8": lambda: ThresholdMix(k=8),
    "timed-0.2s": lambda: TimedMix(interval=0.2),
    "timed-2.0s": lambda: TimedMix(interval=2.0),
    "pool-0.5s": lambda: PoolMix(round_interval=0.5, seed=11),
}


@pytest.mark.parametrize("mix_name", sorted(MIXES))
def test_watermark_vs_mix(benchmark, mix_name):
    target, decoy = benchmark.pedantic(
        run_through_mix, args=(MIXES[mix_name](), 550), rounds=1
    )
    margin = target.correlation - decoy.correlation
    print(
        f"\n{mix_name}: target corr={target.correlation:+.3f} "
        f"decoy corr={decoy.correlation:+.3f} margin={margin:+.3f} "
        f"detected={target.detected}"
    )
    if mix_name in ("no-mix", "threshold-8", "timed-0.2s"):
        # Fine-grained batching leaves the chip-level counts intact.
        assert target.detected
        assert not decoy.detected
    # Coarse mixes may or may not defeat this configuration; the
    # cross-strategy ordering is asserted in test_mix_ordering below.


def test_mix_ordering(benchmark):
    """No-mix margin must dominate the coarse timed mix's margin."""

    def compare():
        clean_t, clean_d = run_through_mix(NoMix(), 700)
        coarse_t, coarse_d = run_through_mix(TimedMix(interval=2.0), 700)
        return (
            clean_t.correlation - clean_d.correlation,
            coarse_t.correlation - coarse_d.correlation,
        )

    clean_margin, coarse_margin = benchmark.pedantic(compare, rounds=1)
    print(
        f"\nclean margin {clean_margin:+.3f} vs coarse-timed margin "
        f"{coarse_margin:+.3f}"
    )
    assert clean_margin > coarse_margin
