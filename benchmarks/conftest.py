"""Shared fixtures and collection config for the benchmark suite.

The benchmark suite lives outside ``testpaths`` (``tests/`` only), so the
tier-1 run ``pytest -x -q`` never collects it; it is exercised standalone
via ``pytest benchmarks -q --benchmark-disable`` (CI's bench-smoke job)
or ``pytest benchmarks --benchmark-only`` for real timings.  Every test
collected here is tagged with the ``benchmark`` marker so the two worlds
stay separable even when someone runs ``pytest tests benchmarks``
explicitly (``-m "not benchmark"`` then restores the tier-1 set).

When the ``pytest-benchmark`` plugin is not installed the ``benchmark``
fixture below degrades to a pass-through stub, so the suite still runs
as plain assertions instead of erroring on a missing fixture.
"""

import pytest

from repro.core import ComplianceEngine


def pytest_collection_modifyitems(items):
    """Tag every benchmark test with the ``benchmark`` marker."""
    for item in items:
        item.add_marker(pytest.mark.benchmark)


@pytest.fixture(scope="session")
def engine() -> ComplianceEngine:
    """One compliance engine shared across benchmarks."""
    return ComplianceEngine()


try:
    import pytest_benchmark  # noqa: F401
except ImportError:  # pragma: no cover - exercised only without the plugin

    class _PassthroughBenchmark:
        """Minimal stand-in for the pytest-benchmark fixture API."""

        def __call__(self, fn, *args, **kwargs):
            return fn(*args, **kwargs)

        def pedantic(
            self, fn, args=(), kwargs=None, rounds=1, iterations=1, **_
        ):
            return fn(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        """Pass-through replacement when pytest-benchmark is absent."""
        return _PassthroughBenchmark()
