"""Shared fixtures for the benchmark suite."""

import pytest

from repro.core import ComplianceEngine


@pytest.fixture(scope="session")
def engine() -> ComplianceEngine:
    """One compliance engine shared across benchmarks."""
    return ComplianceEngine()
