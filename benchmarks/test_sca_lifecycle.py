"""Experiment "SCA": the Alice/Bob e-mail lifecycle of section III.A.3.

Walks a message through every lifecycle stage at a public and a non-public
provider and prints, per stage, the provider's SCA role and the process
required to compel the content — including the "drops out of the SCA"
transition the paper walks through in prose.
"""

from repro.core import LegalSource, ProcessKind, ProviderRole
from repro.storage import MailProvider, Message


def lifecycle_rows():
    """Run the full lifecycle; returns printable stage rows."""
    gmail = MailProvider("gmail", serves_public=True)
    university = MailProvider("cs.charlie.edu", serves_public=False)
    gmail.create_account("bob")
    university.create_account("alice")

    rows = []

    email = Message(
        sender="alice@cs.charlie.edu",
        recipient="bob",
        subject="notes",
        body="...",
        sent_at=0.0,
    )
    gmail.deliver(email, time=1.0)
    rows.append(("gmail", "unretrieved", gmail.role_for(email),
                 *gmail.required_process_for(email)))
    gmail.retrieve("bob", email.message_id)
    rows.append(("gmail", "opened+stored", gmail.role_for(email),
                 *gmail.required_process_for(email)))

    reply = Message(
        sender="bob@gmail.com",
        recipient="alice",
        subject="re: notes",
        body="...",
        sent_at=2.0,
    )
    university.deliver(reply, time=3.0)
    rows.append(("university", "unretrieved", university.role_for(reply),
                 *university.required_process_for(reply)))
    university.retrieve("alice", reply.message_id)
    rows.append(("university", "opened+stored", university.role_for(reply),
                 *university.required_process_for(reply)))
    return rows


def test_sca_lifecycle(benchmark):
    rows = benchmark(lifecycle_rows)
    print()
    print(f"{'provider':<12} {'stage':<14} {'SCA role':<36} "
          f"{'process':<18} source")
    for provider, stage, role, process, source in rows:
        print(f"{provider:<12} {stage:<14} {role.value:<36} "
              f"{process.display_name:<18} {source.value}")

    expectations = [
        (ProviderRole.ECS, ProcessKind.SEARCH_WARRANT, LegalSource.SCA),
        (ProviderRole.RCS, ProcessKind.SEARCH_WARRANT, LegalSource.SCA),
        (ProviderRole.ECS, ProcessKind.SEARCH_WARRANT, LegalSource.SCA),
        (
            ProviderRole.NEITHER,
            ProcessKind.SEARCH_WARRANT,
            LegalSource.FOURTH_AMENDMENT,
        ),
    ]
    observed = [(role, process, source) for _, _, role, process, source in rows]
    assert observed == expectations
